"""Scenario: cardinality estimation for a digital-library query optimizer.

A DBLP-like bibliography is the paper's motivating "shallow and wide"
workload: records under one huge root, heavy sibling repetition (authors),
and order-sensitive questions such as "first author" patterns expressed
with sibling axes.

The script builds the estimation system over a generated bibliography,
then walks through the decisions a cost-based optimizer would make:
which of two join orders to prefer, based on estimated cardinalities —
and compares every estimate against exact evaluation.

Run with::

    python examples/digital_library.py
"""

from repro import EstimationSystem, parse_query
from repro.datasets import generate_dblp
from repro.xmltree.stats import document_stats
from repro.xpath import Evaluator

OPTIMIZER_QUERIES = [
    # Plain cardinalities a scan planner needs.
    ("//article", "articles in the library"),
    ("//inproceedings/$author", "conference paper authorships"),
    ("//article[/month]/$author", "authorships on articles with a month"),
    # Order-based: authors that open a record (no author before them).
    ("//article[/$author/folls::author]", "non-last authors of articles"),
    ("//article[/$author/pres::author]", "non-first authors of articles"),
    # Order between fields: records whose editor list precedes the title.
    ("//proceedings[/$editor/folls::title]", "editors listed before the title"),
    # Scoped following: a cite appearing after the year field's sibling.
    ("//inproceedings[/year/folls::$cite]", "cites after the year"),
]


def main() -> None:
    document = generate_dblp(scale=0.4, seed=42)
    stats = document_stats(document)
    print("Bibliography: %d elements, %d tags, %.2f MB serialized" % (
        stats.total_elements, stats.distinct_tags, stats.size_mb))

    system = EstimationSystem.build(document, p_variance=0, o_variance=2)
    evaluator = Evaluator(document)

    print("\n%-44s %10s %8s  %s" % ("query", "estimate", "actual", "meaning"))
    for text, meaning in OPTIMIZER_QUERIES:
        query = parse_query(text)
        estimate = system.estimate(query)
        actual = evaluator.selectivity(query)
        print("%-44s %10.1f %8d  %s" % (text, estimate, actual, meaning))

    # A planner decision: evaluate the more selective predicate first.
    left = parse_query("//article[/$author/pres::author]")
    right = parse_query("//inproceedings/$author")
    left_cardinality = system.estimate(left)
    right_cardinality = system.estimate(right)
    first = "non-first article authors" if left_cardinality < right_cardinality else "inproceedings authors"
    print("\nPlanner: probe %s first (%.0f vs %.0f estimated rows)" % (
        first, min(left_cardinality, right_cardinality),
        max(left_cardinality, right_cardinality)))

    sizes = system.summary_sizes()
    budget = sum(sizes.values())
    print("Total summary footprint: %.1f KB for a %.2f MB corpus (%.2f%%)" % (
        budget / 1024.0, stats.size_mb, budget / stats.size_bytes * 100))


if __name__ == "__main__":
    main()
