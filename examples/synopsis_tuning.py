"""Scenario: tuning the memory/accuracy trade-off of the synopses.

An operator deploying the estimator must pick the two variance thresholds.
This script sweeps both knobs over an XMark-like auction site (the paper's
hardest dataset: 74 tags, recursive descriptions) and prints the resulting
memory/error frontier, then compares the chosen configuration against the
XSketch and path-tree baselines at equal memory.

Run with::

    python examples/synopsis_tuning.py
"""

from repro.baselines import PathTree, XSketch
from repro.datasets import generate_xmark
from repro.harness import SystemFactory
from repro.harness.metrics import relative_error
from repro.workload import WorkloadGenerator


def mean_error(estimate, items):
    errors = [relative_error(estimate(i.query), i.actual) for i in items]
    return sum(errors) / len(errors) if errors else 0.0


def main() -> None:
    document = generate_xmark(scale=0.4, seed=19)
    print("Auction site: %d elements" % len(document))

    generator = WorkloadGenerator(document, seed=3)
    workload = generator.full_workload(raw_simple=250, raw_branch=250, raw_order=250)
    no_order = workload.no_order()
    order_items = workload.order_branch
    print("Workload: %d no-order, %d order queries" % (len(no_order), len(order_items)))

    factory = SystemFactory(document)
    print("\n p.var  o.var   p-KB    o-KB   no-order err   order err")
    frontier = []
    for p_variance in (0, 1, 5):
        for o_variance in (0, 2, 8):
            system = factory.system(p_variance, o_variance)
            sizes = system.summary_sizes()
            row = (
                p_variance,
                o_variance,
                sizes["p_histogram"] / 1024.0,
                sizes["o_histogram"] / 1024.0,
                mean_error(system.estimate, no_order),
                mean_error(system.estimate, order_items),
            )
            frontier.append(row)
            print(" %4g  %4g  %6.1f  %6.1f   %10.4f   %10.4f" % row)

    # Operating point: the paper recommends p-variance 0-2, o-variance 0-4.
    chosen = factory.system(0, 2)
    sizes = chosen.summary_sizes()
    budget = int(sizes["encoding_table"] + sizes["binary_tree"] + sizes["p_histogram"])
    sketch = XSketch.build(document, budget_bytes=budget)
    tree = PathTree.build(document)
    print("\nAt the chosen configuration (p=0, o=2), no-order workload:")
    print("  this system : %.4f mean relative error" % mean_error(chosen.estimate, no_order))
    print("  xsketch     : %.4f (at %.1f KB budget)" % (
        mean_error(sketch.estimate, no_order), budget / 1024.0))
    print("  path tree   : %.4f (at %.1f KB)" % (
        mean_error(tree.estimate, no_order), tree.size_bytes() / 1024.0))
    print("  (only this system can estimate the %d order queries at all)" % len(order_items))


if __name__ == "__main__":
    main()
