"""Scenario: order-aware queries over theatrical scripts.

The paper's introduction motivates order axes with intrinsically ordered
documents — "a query can ask for the second chapter of the book".  Plays
are the canonical example: prologues precede acts, epilogues follow them,
stage directions interleave with lines.  This script builds the estimation
system over an SSPlays-like corpus and answers order-sensitive editorial
questions, showing where the order statistics (o-histogram) earn their
keep compared to pretending order does not exist.

Run with::

    python examples/play_scripts.py
"""

from repro import EstimationSystem, parse_query
from repro.core.noorder import estimate_no_order
from repro.core.transform import clone_query
from repro.datasets import generate_ssplays
from repro.xpath import Evaluator

EDITORIAL_QUERIES = [
    ("//PLAY[/$PROLOGUE/folls::ACT]", "prologues placed before an act"),
    ("//PLAY[/ACT/folls::$EPILOGUE]", "epilogues placed after an act"),
    ("//SCENE[/$SPEECH/pres::STAGEDIR]", "speeches after a stage direction"),
    ("//SPEECH[/$LINE/folls::STAGEDIR]", "lines followed by a stage direction"),
    ("//ACT[/TITLE/folls::$SCENE/SPEECH/SPEAKER]", "scenes after the act title"),
]


def order_blind_estimate(system, query):
    """What the estimator would say if it ignored the order axis."""
    counterpart, mapping = clone_query(query, order_to_structural=True)
    return estimate_no_order(
        counterpart,
        system.path_provider,
        system.encoding_table,
        target=mapping[query.target.node_id],
    )


def main() -> None:
    document = generate_ssplays(scale=1.0, seed=11)
    print("Corpus: %d elements across %d plays" % (
        len(document), document.tag_count("PLAY")))

    system = EstimationSystem.build(document, p_variance=0, o_variance=0)
    evaluator = Evaluator(document)

    header = "%-44s %9s %9s %8s" % ("query", "ordered", "no-order", "actual")
    print("\n" + header)
    print("-" * len(header))
    for text, meaning in EDITORIAL_QUERIES:
        query = parse_query(text)
        with_order = system.estimate(query)
        without_order = order_blind_estimate(system, query)
        actual = evaluator.selectivity(query)
        print("%-44s %9.1f %9.1f %8d   (%s)" % (
            text, with_order, without_order, actual, meaning))

    print(
        "\nThe 'no-order' column treats folls/pres as plain sibling"
        "\nexistence — the over-estimation the o-histogram corrects."
    )


if __name__ == "__main__":
    main()
