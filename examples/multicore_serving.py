"""Scenario: multi-core serving with the pre-fork worker pool.

The estimation service's data path is CPU-bound and tiny (sub-millisecond
joins over in-memory synopses), so one Python process caps out one core.
The ``repro.shm`` subsystem scales it the classic pre-fork way: a
supervisor stages mmap-able **kernelpack** snapshots once, forks N
workers that share the listening port via ``SO_REUSEPORT`` and map the
packs zero-copy, and aggregates per-worker shared-memory metrics slabs
into one pool-wide document.

The script exercises the whole story through the *real* CLI — the same
entry points an operator uses — and doubles as the CI multi-worker
smoke test:

1. build two snapshots and stage their kernelpacks;
2. launch ``repro serve --workers 2`` as a subprocess;
3. drive single estimates, a batch, and the metrics endpoints over HTTP;
4. hot-reload through the control plane and wait for both workers to
   remap (no worker recompiles anything);
5. assert the aggregated metrics equal the sum of the worker slabs.

Run with::

    python examples/multicore_serving.py
"""

import json
import http.client
import re
import subprocess
import sys
import tempfile
import time

from repro import persist
from repro.core.system import EstimationSystem
from repro.datasets import generate_dblp, generate_ssplays
from repro.service import EndpointClient
from repro.shm import describe_pack, pool_supported, stage_packs

BANNER = re.compile(
    r"http://(?P<host>[\d.]+):(?P<port>\d+).*"
    r"control on http://[\d.]+:(?P<control>\d+)"
)


def main() -> int:
    if not pool_supported():
        print("platform lacks fork/SO_REUSEPORT; nothing to demonstrate")
        return 0

    snapshot_dir = tempfile.mkdtemp(prefix="repro-pool-")
    for name, document in (
        ("SSPlays", generate_ssplays(scale=0.2, seed=3)),
        ("DBLP", generate_dblp(scale=0.05, seed=3)),
    ):
        system = EstimationSystem.build(document, p_variance=0, o_variance=0)
        persist.save(system, "%s/%s.json" % (snapshot_dir, name))

    # 1. Stage the zero-copy kernel snapshots (serve does this too; doing
    # it here shows the pack lifecycle explicitly).
    for name, status in sorted(stage_packs(snapshot_dir).items()):
        info = describe_pack("%s/%s.kernelpack" % (snapshot_dir, name))
        print("pack %-8s %-7s %5d bytes, %2d tags, %3d pairs"
              % (name, status, info["size_bytes"], info["tags"], info["pairs"]))

    # 2. The real CLI, two workers sharing one port.
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--snapshot-dir",
         snapshot_dir, "--workers", "2", "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        banner = process.stdout.readline().strip()
        print(banner)
        match = BANNER.search(banner)
        assert match, "unrecognized serve banner: %r" % banner
        port = int(match.group("port"))
        control_port = int(match.group("control"))

        # 3. Estimates land on whichever worker the kernel balances the
        # connection to; answers are identical by construction.
        client = EndpointClient(port=port)
        single = client.estimate("SSPlays", "//PLAY/ACT")
        batch = client.estimate_batch("DBLP", ["//article", "//inproceedings"])
        print("single estimate //PLAY/ACT -> %g" % single)
        print("batch DBLP -> %s" % (batch,))
        for _ in range(30):
            client.estimate("SSPlays", "//PLAY")
        health = client.healthz()
        assert health["status"] == "ok", health
        assert health["kernels"] == {"DBLP": "ready", "SSPlays": "ready"}
        assert len(health["workers"]) == 2

        control = http.client.HTTPConnection("127.0.0.1", control_port,
                                             timeout=10)

        # 4. Hot reload: stage + signal; workers remap the packs without
        # recompiling a single kernel table.
        control.request("POST", "/reload", body=b"")
        reload_reply = json.loads(control.getresponse().read())
        print("reload -> generation %d, packs %s"
              % (reload_reply["generation"], reload_reply["packs"]))
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            control.request("GET", "/healthz")
            health = json.loads(control.getresponse().read())
            if health["converged"] and health["alive"] == 2:
                break
            time.sleep(0.1)
        assert health["converged"], health
        generations = [w["generation"] for w in health["per_worker"]]
        print("workers remapped: generations %s" % generations)
        assert generations == [reload_reply["generation"]] * 2
        assert client.estimate("SSPlays", "//PLAY/ACT") == single

        # 5. The aggregated document is exactly the sum of the slabs.
        control.request("GET", "/metrics")
        workers = json.loads(control.getresponse().read())["workers"]
        totals, per_worker = workers["totals"], workers["per_worker"]
        for field in ("requests", "queries", "errors", "shed",
                      "latency_count", "pack_hits", "pack_misses", "remaps"):
            summed = sum(worker[field] for worker in per_worker)
            assert totals[field] == summed, (field, totals[field], summed)
        assert totals["requests"] >= 33
        assert totals["pack_misses"] == 0, "a worker recompiled a table"
        print("aggregated == sum of %d worker slabs (requests=%d, "
              "pack_hits=%d, pack_misses=0)"
              % (len(per_worker), totals["requests"], totals["pack_hits"]))

        client.close()
        control.close()
    finally:
        process.terminate()
        process.wait(timeout=30)
    print("multi-core serving smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
