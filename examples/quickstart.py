"""Quickstart: build an estimation system and estimate a few queries.

Run with::

    python examples/quickstart.py

Walks the paper's running example (Figure 1) end to end: parse a document,
inspect path ids, run the path join, and estimate simple / branch / order
queries against exact ground truth.
"""

from repro import EstimationSystem, parse_query
from repro.xmltree import parse_xml
from repro.xpath import Evaluator

DOCUMENT = """
<Root>
  <A> <B><D/><E/></B> </A>
  <A> <B><D/></B> <C><E/><F/></C> <B><D/></B> </A>
  <A> <C><E/></C> <B><D/></B> </A>
</Root>
"""

QUERIES = [
    "//A//$C",                    # simple query (Example 4.2)
    "//C[/$E]/F",                 # branch query (Examples 4.3/4.5)
    "//A[/C/F]/B/$D",             # branch query, deep target
    "//A[/C[/F]/folls::$B/D]",    # order axis, sibling target (Example 5.1)
    "//A[/C[/F]/folls::B/$D]",    # order axis, deep target (Example 5.2)
    "//$A[/C[/F]/folls::B/D]",    # order axis, trunk target (Equation 5)
    "//A[/C/foll::$D]",           # scoped following axis (Example 5.3)
]


def main() -> None:
    document = parse_xml(DOCUMENT, name="figure1")
    print("Parsed %d elements, %d distinct tags" % (
        len(document), len(document.distinct_tags)))

    # Build the full pipeline: path encoding, statistics, histograms.
    system = EstimationSystem.build(document, p_variance=0, o_variance=0)
    labeled = system.labeled
    print("\nEncoding table (%d root-to-leaf paths):" % labeled.width)
    for encoding in range(1, labeled.width + 1):
        print("  %d -> %s" % (encoding, labeled.encoding_table.path_of(encoding)))
    print("\nDistinct path ids:")
    for pathid in labeled.distinct_pathids():
        print("  %s = %s" % (labeled.name_of(pathid), labeled.format_pathid(pathid)))

    # Estimate queries and compare with exact evaluation.
    evaluator = Evaluator(document)
    print("\n%-34s %9s %8s" % ("query ($ marks the target)", "estimate", "actual"))
    for text in QUERIES:
        query = parse_query(text)
        estimate = system.estimate(query)
        actual = evaluator.selectivity(query)
        print("%-34s %9.2f %8d" % (text, estimate, actual))

    sizes = system.summary_sizes()
    print("\nSummary sizes (bytes): %s" % {k: int(v) for k, v in sizes.items()})


if __name__ == "__main__":
    main()
