"""Scenario: a growing corpus with a persisted synopsis.

Production pattern: the bibliography grows all day (appended records), the
statistics are maintained incrementally, and a compact synopsis snapshot
is shipped to the query optimizer — which estimates without ever touching
the documents.

The script demonstrates the full loop:

1. build statistics over an initial DBLP-like corpus;
2. append new records with incremental maintenance (no rebuild);
3. snapshot the synopsis to JSON and reload it "on the optimizer side";
4. verify the reloaded estimator tracks the grown corpus.

Run with::

    python examples/growing_corpus.py
"""

import random

from repro.core.system import EstimationSystem
from repro.datasets import generate_dblp
from repro.persist import dumps, loads
from repro.stats.maintenance import MaintainedStatistics, RequiresRebuild
from repro.xmltree.node import XmlNode
from repro.xpath import Evaluator, parse_query


def clone_subtree(node: XmlNode) -> XmlNode:
    copy = XmlNode(node.tag, dict(node.attributes), node.text)
    for child in node.children:
        copy.append(clone_subtree(child))
    return copy


QUERIES = ["//dblp/article/$author", "//inproceedings/$title", "//article[/month]/$author"]


def main() -> None:
    document = generate_dblp(scale=0.05, seed=8)
    maintained = MaintainedStatistics(document)
    print("Initial corpus: %d elements" % len(document))

    # --- the corpus grows: clone-and-append existing record shapes -------
    rng = random.Random(1)
    templates = [node for node in list(document) if node.parent is document.root]
    appended = 0
    for _ in range(40):
        template = rng.choice(templates)
        try:
            maintained.append_subtree(document.root, clone_subtree(template))
            appended += 1
        except RequiresRebuild:
            pass  # a shape outside the known path types would need a rebuild
    print("Appended %d records incrementally -> %d elements" % (appended, len(document)))

    # --- snapshot the synopsis and ship it to the optimizer ----------------
    system = EstimationSystem.from_tables(
        maintained.labeled,
        maintained.pathid_table,
        maintained.order_table,
        p_variance=0,
        o_variance=2,
    )
    snapshot = dumps(system)
    print("Synopsis snapshot: %.1f KB of JSON" % (len(snapshot) / 1024.0))

    optimizer_side = loads(snapshot)  # no document over here
    evaluator = Evaluator(document)
    print("\n%-34s %10s %8s" % ("query", "estimate", "actual"))
    for text in QUERIES:
        query = parse_query(text)
        print(
            "%-34s %10.1f %8d"
            % (text, optimizer_side.estimate(query), evaluator.selectivity(query))
        )

    print(
        "\nThe reloaded estimator reflects every appended record without a"
        "\nstatistics rebuild or access to the documents."
    )


if __name__ == "__main__":
    main()
