"""Scenario: one synopsis, two jobs — estimating *and* executing queries.

The path encoding scheme was born (reference [8] of the paper) as an
accelerator for structural joins; the estimation system reuses the same
labels for cardinalities.  This script runs both sides on one corpus:

1. the optimizer asks the estimator for cardinalities and picks the more
   selective branch to evaluate first;
2. the executor answers the query exactly with interval structural joins,
   using the surviving path ids to prune its candidate lists;
3. the pruning effect is reported per query.

Run with::

    python examples/query_processing.py
"""

from repro import EstimationSystem, parse_query
from repro.datasets import generate_xmark
from repro.harness import SystemFactory
from repro.queryproc import StructuralJoinProcessor

QUERIES = [
    "//item[/mailbox]/description//$keyword",
    "//open_auction[/privacy]/annotation/$description",
    "//person[/homepage]/profile/$interest",
    "//closed_auction/annotation/description/parlist/$listitem",
    "//categories/category[/name]/$description",
]


def main() -> None:
    document = generate_xmark(scale=0.5, seed=4)
    factory = SystemFactory(document)
    system = factory.system(p_variance=0, o_variance=0)
    processor = StructuralJoinProcessor(document, labeled=factory.labeled)
    print("Corpus: %d elements, %d distinct path ids" % (
        len(document), len(factory.labeled.distinct_pathids())))

    header = "%-52s %9s %7s %16s" % ("query", "estimate", "exact", "join inputs")
    print("\n" + header)
    print("-" * len(header))
    for text in QUERIES:
        query = parse_query(text)
        estimate = system.estimate(query)
        exact = processor.count(query, use_path_ids=True)
        pruned = processor.last_candidate_count
        processor.count(query, use_path_ids=False)
        unpruned = processor.last_candidate_count
        print("%-52s %9.1f %7d %7d <- %7d" % (text, estimate, exact, pruned, unpruned))

    print(
        "\nThe estimator prices each query from the synopsis alone; the"
        "\nexecutor then reuses the surviving path ids to skip most of the"
        "\nstructural-join inputs (right column: pruned <- unpruned)."
    )


if __name__ == "__main__":
    main()
