"""Blocking JSON client for one estimation-service endpoint.

:class:`EndpointClient` talks to a single ``host:port`` — it is the
transport brick that :func:`repro.connect` (the cluster-aware
:class:`repro.cluster.Client`) and the scatter-gather router build on.
:class:`ServiceClient` is its deprecated pre-cluster name, kept as a
warning shim.

By default the client keeps one HTTP/1.1 connection alive and reuses it
(reconnecting transparently if the server dropped it), which is what a
query optimizer embedding the client would do — connection setup
otherwise dominates the sub-millisecond estimate latency.  The kept
connection makes an instance **not** thread-safe; give each thread its
own client, or pass ``keep_alive=False`` for a stateless
connection-per-call client that can be shared freely.

    client = EndpointClient(port=8750)
    client.estimate("SSPlays", "//PLAY/ACT/$SCENE")     # -> float
    client.estimate_batch("SSPlays", ["//PLAY", "//ACT"])
    client.metrics()["latency_ms"]["p95_ms"]

Failure handling
----------------

Every failure surfaces as :class:`ServiceError` with a stable ``kind``:
the server's ``error.kind`` slug for non-2xx replies, or a client-side
transport slug — ``"connection"`` (refused/reset/broken pipe),
``"timeout"`` (socket timeout) or ``"bad_response"`` (a 2xx body that is
not valid JSON, e.g. an intermediary's HTML error page).  No raw
``socket``/``http.client``/``json`` exception escapes.

Optionally the client retries: pass ``retry=RetryPolicy(...)`` and
transient failures (transport errors and 502/503/504, honouring the
server's ``Retry-After`` hint) are retried with exponential backoff,
bounded by ``retry_budget_s``.  Pass ``breaker=CircuitBreaker(...)`` to
stop hammering a down server: after the threshold of consecutive
failures, calls fail fast with
:class:`~repro.reliability.breaker.CircuitOpenError` until the recovery
window elapses.  Estimates are pure reads, so every request is safe to
retry.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
import warnings
from typing import Any, Dict, List, Optional

from repro._compat import positional_shim
from repro.core.result import EstimateResult
from repro.reliability.breaker import CircuitBreaker
from repro.reliability.policy import Deadline, RetryPolicy
from repro.service.config import DEFAULT_PORT, ClientConfig

#: Statuses worth retrying: the server (or an intermediary) said "not
#: right now", not "never".
RETRYABLE_STATUSES = frozenset({502, 503, 504})

#: Client-side transport kinds (always retryable; no reply was received).
TRANSPORT_KINDS = frozenset({"connection", "timeout"})


class ServiceError(RuntimeError):
    """A failed service call.

    ``kind`` is the stable error slug: the service's ``error.kind`` from
    the response body (e.g. ``"unknown_synopsis"``, ``"query_syntax"``,
    ``"overloaded"``), ``"internal"`` when a non-2xx body carried none,
    or a client-side transport slug (``"connection"``, ``"timeout"``,
    ``"bad_response"``).  ``status`` is the HTTP status, or ``0`` when no
    reply was received.  ``retry_after_s`` carries the server's
    ``Retry-After`` hint when one was sent.
    """

    def __init__(
        self,
        status: int,
        message: str,
        kind: str = "internal",
        retry_after_s: Optional[float] = None,
    ):
        super().__init__("HTTP %d [%s]: %s" % (status, kind, message))
        self.status = status
        self.message = message
        self.kind = kind
        self.retry_after_s = retry_after_s

    @property
    def retryable(self) -> bool:
        return self.kind in TRANSPORT_KINDS or self.status in RETRYABLE_STATUSES


class EndpointClient:
    """Minimal synchronous client for one estimation-service endpoint."""

    def __init__(
        self,
        host: Optional[str] = None,
        *args,
        port: Optional[int] = None,
        timeout: Optional[float] = None,
        keep_alive: Optional[bool] = None,
        retry: Optional[RetryPolicy] = None,
        retry_budget_s: Optional[float] = None,
        breaker: Optional[CircuitBreaker] = None,
        sleep=time.sleep,
        config: Optional[ClientConfig] = None,
    ):
        if args:
            # Pre-redesign positional call sites (host, port, timeout, ...).
            port, timeout, keep_alive, retry, retry_budget_s, breaker, sleep = (
                positional_shim(
                    type(self).__name__,
                    args,
                    ("port", "timeout", "keep_alive", "retry",
                     "retry_budget_s", "breaker", "sleep"),
                    (port, timeout, keep_alive, retry,
                     retry_budget_s, breaker, sleep),
                )
            )
        base = config if config is not None else ClientConfig()
        self.host = host if host is not None else base.host
        self.port = port if port is not None else base.port
        self.timeout = timeout if timeout is not None else base.timeout
        self.keep_alive = keep_alive if keep_alive is not None else base.keep_alive
        self.retry = retry
        self.retry_budget_s = (
            retry_budget_s if retry_budget_s is not None else base.retry_budget_s
        )
        self.breaker = breaker
        self._sleep = sleep
        self._connection: Optional[http.client.HTTPConnection] = None
        #: TCP connections actually opened.  With keep-alive (the
        #: default) this stays at 1 across any number of requests unless
        #: the server drops the connection; the throughput benches report
        #: it to prove client-side connection churn is not the
        #: bottleneck being measured.
        self.connects_total = 0

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "EndpointClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        if self.keep_alive and self._connection is not None:
            return self._connection
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        # Nagle + delayed ACK stalls tiny request/response exchanges on a
        # reused connection by ~40ms; estimates are sub-millisecond.
        connection.connect()
        self.connects_total += 1
        connection.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        if self.keep_alive:
            self._connection = connection
        return connection

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """One logical request: retries (when configured) around
        :meth:`_request_once`, behind the circuit breaker."""
        deadline = Deadline.after(self.retry_budget_s)
        backoffs = self.retry.backoffs() if self.retry is not None else iter(())
        while True:
            if self.breaker is not None:
                self.breaker.check("estimation service %s:%d" % (self.host, self.port))
            try:
                document = self._request_once(method, path, payload)
            except ServiceError as error:
                dependency_failed = error.retryable or error.status >= 500
                if self.breaker is not None:
                    if dependency_failed:
                        self.breaker.record_failure()
                    else:
                        # 4xx means the service answered: it is healthy,
                        # the request was bad.
                        self.breaker.record_success()
                if not error.retryable:
                    raise
                pause = next(backoffs, None)
                if pause is None:
                    raise
                if error.retry_after_s is not None:
                    pause = max(pause, error.retry_after_s)
                if deadline.remaining() < pause:
                    raise
                self._sleep(pause)
                continue
            if self.breaker is not None:
                self.breaker.record_success()
            return document

    def _request_once(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        body = None
        headers: Dict[str, str] = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        response = None
        try:
            for attempt in (1, 2):
                connection = self._connect()
                try:
                    connection.request(method, path, body=body, headers=headers)
                    response = connection.getresponse()
                    break
                except (http.client.HTTPException, ConnectionError, BrokenPipeError):
                    # A kept-alive connection the server has since
                    # closed; reconnect once, then give up.
                    self.close()
                    if not self.keep_alive or attempt == 2:
                        raise
            raw = response.read()
        except socket.timeout:
            self.close()
            raise ServiceError(
                0, "no reply within %.3gs" % self.timeout, "timeout"
            )
        except (http.client.HTTPException, ConnectionError, OSError) as error:
            self.close()
            raise ServiceError(
                0,
                "cannot reach %s:%d: %s" % (self.host, self.port, error),
                "connection",
            )
        try:
            try:
                document = json.loads(raw.decode("utf-8")) if raw else {}
                decoded = True
            except (UnicodeDecodeError, json.JSONDecodeError):
                document = {}
                decoded = False
            if response.status >= 400:
                retry_after = _parse_retry_after(
                    response.getheader("Retry-After")
                )
                error = document.get("error") if decoded else None
                if isinstance(error, dict):  # structured {"kind", "message"}
                    raise ServiceError(
                        response.status,
                        str(error.get("message", "")),
                        str(error.get("kind", "internal")),
                        retry_after_s=retry_after,
                    )
                raise ServiceError(
                    response.status,
                    str(error if error is not None else raw[:200]),
                    retry_after_s=retry_after,
                )
            if not decoded:
                # A 2xx that is not JSON (a proxy's splash page, a torn
                # reply): stable kind instead of a downstream KeyError.
                raise ServiceError(
                    response.status,
                    "response body is not JSON: %r..." % raw[:80],
                    "bad_response",
                )
            return document
        finally:
            if not self.keep_alive:
                connection.close()

    # ------------------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def synopses(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/synopses")["synopses"]

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/metrics")

    def slowlog(self, limit: Optional[int] = None) -> Dict[str, Any]:
        path = "/debug/slowlog"
        if limit is not None:
            path += "?limit=%d" % limit
        return self._request("GET", path)

    def estimate_detail(
        self,
        synopsis: str,
        query: str,
        trace: bool = False,
        actual: Optional[float] = None,
        tier: Optional[str] = None,
    ) -> Dict[str, Any]:
        """The full single-estimate reply (estimate, route, cached,
        result, ...).  ``actual`` ships ground truth for the server's
        slow-query error ranking; ``tier`` requests a QoS lane
        (``"interactive"`` / ``"standard"`` / ``"bulk"``) on a
        tier-aware server."""
        payload: Dict[str, Any] = {"synopsis": synopsis, "query": query}
        if trace:
            payload["trace"] = True
        if actual is not None:
            payload["actual"] = actual
        if tier is not None:
            payload["tier"] = tier
        return self._request("POST", "/estimate", payload)

    def estimate(
        self, synopsis: str, query: str, tier: Optional[str] = None
    ) -> float:
        return float(self.estimate_detail(synopsis, query, tier=tier)["estimate"])

    def estimate_traced(self, synopsis: str, query: str) -> EstimateResult:
        """One traced estimate as a structured
        :class:`~repro.core.result.EstimateResult` whose ``.trace`` is
        the server-side span tree."""
        reply = self.estimate_detail(synopsis, query, trace=True)
        return EstimateResult.from_dict(reply["result"])

    def explain(self, synopsis: str, query: str) -> Dict[str, Any]:
        """The server-side cost-based plan for ``query`` (the plan IR as
        a dict: ordered semijoin steps with expected cardinalities).  No
        execution happens; works against statistics-only synopses."""
        payload = {"synopsis": synopsis, "query": query, "explain": True}
        return self._request("POST", "/estimate", payload)["plan"]

    def execute(
        self, synopsis: str, query: str, tier: Optional[str] = None
    ) -> Dict[str, Any]:
        """Plan and run ``query`` on the server.

        Returns the full reply: ``matches`` (pre-orders, capped),
        ``match_count``, the executed ``plan`` (observed cardinalities,
        replans) and the structured ``result``.  Raises
        :class:`ServiceError` kind ``execute_unsupported`` (409) when the
        synopsis is statistics-only.
        """
        payload: Dict[str, Any] = {
            "synopsis": synopsis, "query": query, "execute": True,
        }
        if tier is not None:
            payload["tier"] = tier
        return self._request("POST", "/estimate", payload)

    def estimate_batch(
        self, synopsis: str, queries: List[str], tier: Optional[str] = None
    ) -> List[float]:
        payload: Dict[str, Any] = {"synopsis": synopsis, "queries": list(queries)}
        if tier is not None:
            payload["tier"] = tier
        reply = self._request("POST", "/estimate", payload)
        return [float(result["estimate"]) for result in reply["results"]]

    def apply_delta(
        self, synopsis: str, partial, *, force_refresh: bool = False
    ) -> Dict[str, Any]:
        """Upload a delta partial (``POST /delta``) and return the apply
        outcome (``refreshed``, ``generation``, ``drift``, ...).

        ``partial`` is a :class:`~repro.build.stream.PartialSynopsis` or
        an already-serialized :func:`repro.persist.partial_to_dict` dict.
        """
        if not isinstance(partial, dict):
            from repro.persist import partial_to_dict

            partial = partial_to_dict(partial)
        payload: Dict[str, Any] = {"synopsis": synopsis, "partial": partial}
        if force_refresh:
            payload["force_refresh"] = True
        return self._request("POST", "/delta", payload)


class ServiceClient(EndpointClient):
    """Deprecated name for :class:`EndpointClient`.

    Kept so pre-cluster call sites run unchanged (same constructor, same
    methods); new code should use :func:`repro.connect` — which also
    speaks to routers and seed lists — or :class:`EndpointClient` when a
    single fixed endpoint is really what is meant.
    """

    def __init__(self, *args, **kwargs):
        warnings.warn(
            "ServiceClient is deprecated; use repro.connect() (or "
            "repro.service.EndpointClient for one fixed endpoint)",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    """Numeric ``Retry-After`` seconds (HTTP-date form is ignored)."""
    if value is None:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        return None
