"""Blocking JSON client for the estimation service (stdlib http.client).

By default the client keeps one HTTP/1.1 connection alive and reuses it
(reconnecting transparently if the server dropped it), which is what a
query optimizer embedding the client would do — connection setup
otherwise dominates the sub-millisecond estimate latency.  The kept
connection makes an instance **not** thread-safe; give each thread its
own client, or pass ``keep_alive=False`` for a stateless
connection-per-call client that can be shared freely.

    client = ServiceClient(port=8750)
    client.estimate("SSPlays", "//PLAY/ACT/$SCENE")     # -> float
    client.estimate_batch("SSPlays", ["//PLAY", "//ACT"])
    client.metrics()["latency_ms"]["p95_ms"]
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Any, Dict, List, Optional

from repro.service.server import DEFAULT_PORT


class ServiceError(RuntimeError):
    """Non-2xx reply from the service.

    ``kind`` is the service's stable error slug (``error.kind`` in the
    response body — e.g. ``"unknown_synopsis"``, ``"query_syntax"``),
    or ``"internal"`` when the body carried none.
    """

    def __init__(self, status: int, message: str, kind: str = "internal"):
        super().__init__("HTTP %d [%s]: %s" % (status, kind, message))
        self.status = status
        self.message = message
        self.kind = kind


class ServiceClient:
    """Minimal synchronous client for the estimation service."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 30.0,
        keep_alive: bool = True,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.keep_alive = keep_alive
        self._connection: Optional[http.client.HTTPConnection] = None

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        if self.keep_alive and self._connection is not None:
            return self._connection
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        # Nagle + delayed ACK stalls tiny request/response exchanges on a
        # reused connection by ~40ms; estimates are sub-millisecond.
        connection.connect()
        connection.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        if self.keep_alive:
            self._connection = connection
        return connection

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        body = None
        headers: Dict[str, str] = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        response = None
        for attempt in (1, 2):
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                break
            except (http.client.HTTPException, ConnectionError, BrokenPipeError):
                # A kept-alive connection the server has since closed;
                # reconnect once, then give up.
                self.close()
                if not self.keep_alive or attempt == 2:
                    raise
        try:
            raw = response.read()
            try:
                document = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError):
                document = {}
            if response.status >= 400:
                error = document.get("error", raw[:200])
                if isinstance(error, dict):  # structured {"kind", "message"}
                    raise ServiceError(
                        response.status,
                        str(error.get("message", "")),
                        str(error.get("kind", "internal")),
                    )
                raise ServiceError(response.status, str(error))
            return document
        finally:
            if not self.keep_alive:
                connection.close()

    # ------------------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def synopses(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/synopses")["synopses"]

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/metrics")

    def estimate_detail(self, synopsis: str, query: str) -> Dict[str, Any]:
        """The full single-estimate reply (estimate, route, cached, ...)."""
        return self._request(
            "POST", "/estimate", {"synopsis": synopsis, "query": query}
        )

    def estimate(self, synopsis: str, query: str) -> float:
        return float(self.estimate_detail(synopsis, query)["estimate"])

    def estimate_batch(self, synopsis: str, queries: List[str]) -> List[float]:
        reply = self._request(
            "POST", "/estimate", {"synopsis": synopsis, "queries": list(queries)}
        )
        return [float(result["estimate"]) for result in reply["results"]]
