"""Service metrics: counters, latency percentiles, per-synopsis QPS.

Follows the conventions of :mod:`repro.harness.metrics` (a frozen
dataclass summary built from a sample sequence, percentile index
``min(n-1, int(q*n))`` over the sorted samples) but observes *request
latencies* instead of relative errors, and keeps only a bounded ring of
recent samples so a long-lived server stays O(1) in memory.

The counters behind :class:`ServiceMetrics` live in a typed
:class:`repro.obs.registry.MetricsRegistry` (counter / gauge / histogram
families) instead of ad-hoc dicts; the same registry renders both the
legacy JSON document (``GET /metrics``, shape unchanged) and Prometheus
text exposition (``GET /metrics?format=prom``).  The latency *ring*
stays alongside the registry's fixed-bucket histogram because precise
p50/p95/p99 need raw recent samples, not bucket bounds.

Everything is thread-safe; the HTTP handler threads call ``observe`` and
``GET /metrics`` renders ``snapshot()``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from repro.obs.registry import DEFAULT_LATENCY_BUCKETS, MetricsRegistry

DEFAULT_RING_CAPACITY = 4096
DEFAULT_QPS_WINDOW = 30.0


def _percentile(ordered: Sequence[float], fraction: float) -> float:
    """Same index convention as harness.metrics.ErrorSummary.p90."""
    if not ordered:
        return 0.0
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


@dataclass(frozen=True)
class LatencySummary:
    """Distribution summary of request latencies, in milliseconds."""

    count: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    @classmethod
    def from_samples(cls, seconds: Sequence[float]) -> "LatencySummary":
        if not seconds:
            return cls(0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(value * 1000.0 for value in seconds)
        return cls(
            count=len(ordered),
            p50_ms=_percentile(ordered, 0.50),
            p95_ms=_percentile(ordered, 0.95),
            p99_ms=_percentile(ordered, 0.99),
            max_ms=ordered[-1],
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "max_ms": self.max_ms,
        }

    def __str__(self) -> str:
        return "n=%d p50=%.3fms p95=%.3fms p99=%.3fms max=%.3fms" % (
            self.count,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.max_ms,
        )


class LatencyRing:
    """Bounded ring of the most recent latency samples (seconds)."""

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY):
        self._samples: "deque[float]" = deque(maxlen=max(1, capacity))
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(seconds)

    def summary(self) -> LatencySummary:
        with self._lock:
            samples = list(self._samples)
        return LatencySummary.from_samples(samples)

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)


class ServiceMetrics:
    """Aggregated serving metrics, rendered by ``GET /metrics``.

    One ``observe`` per HTTP estimate request; ``queries`` counts the
    individual estimates inside it (a batch of 10 is one request, ten
    queries).  QPS is requests over a sliding ``qps_window`` seconds.

    All counters live as typed families in ``self.registry`` (a
    :class:`~repro.obs.registry.MetricsRegistry`, created per instance
    unless one is shared in), so the same numbers back the JSON document
    and the Prometheus exposition.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
        qps_window: float = DEFAULT_QPS_WINDOW,
        registry: Optional[MetricsRegistry] = None,
    ):
        self._clock = clock
        self._started = clock()
        self._qps_window = qps_window
        self._lock = threading.Lock()  # guards the QPS stamp windows
        self._ring = LatencyRing(ring_capacity)
        self.registry = registry if registry is not None else MetricsRegistry()
        make = self.registry
        self._requests = make.counter(
            "repro_requests_total", "Estimate requests handled."
        )
        self._queries = make.counter(
            "repro_queries_total", "Individual query estimates served."
        )
        self._errors = make.counter(
            "repro_errors_total", "Failed estimate requests."
        )
        self._events = make.counter(
            "repro_events_total",
            "Named service events (shed, deadline exceeded, reload, ...).",
            labels=("event",),
        )
        self._latency = make.histogram(
            "repro_request_latency_seconds",
            "Estimate request latency.",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self._syn_requests = make.counter(
            "repro_synopsis_requests_total",
            "Estimate requests per synopsis.",
            labels=("synopsis",),
        )
        self._syn_queries = make.counter(
            "repro_synopsis_queries_total",
            "Query estimates per synopsis.",
            labels=("synopsis",),
        )
        self._syn_errors = make.counter(
            "repro_synopsis_errors_total",
            "Failed requests per synopsis.",
            labels=("synopsis",),
        )
        self._uptime = make.gauge(
            "repro_uptime_seconds", "Seconds since service start."
        )
        self._tier_requests = make.counter(
            "repro_tier_requests_total",
            "Estimate requests admitted per QoS tier.",
            labels=("tier",),
        )
        self._tier_shed = make.counter(
            "repro_tier_shed_total",
            "Estimate requests shed per QoS tier.",
            labels=("tier",),
        )
        self._tier_rings: Dict[str, LatencyRing] = {}
        self._ring_capacity = ring_capacity
        self._stamps: Dict[str, "deque[float]"] = {}

    # ------------------------------------------------------------------

    def observe(
        self,
        synopsis: Optional[str],
        latency_s: float,
        queries: int = 1,
        error: bool = False,
    ) -> None:
        """Record one estimate request against ``synopsis`` (None when the
        request failed before a synopsis was resolved)."""
        now = self._clock()
        self._ring.observe(latency_s)
        self._latency.observe(latency_s)
        self._requests.inc()
        self._queries.inc(queries)
        if error:
            self._errors.inc()
        if synopsis is not None:
            self._syn_requests.labels(synopsis=synopsis).inc()
            self._syn_queries.labels(synopsis=synopsis).inc(queries)
            if error:
                self._syn_errors.labels(synopsis=synopsis).inc()
            with self._lock:
                stamps = self._stamps.setdefault(synopsis, deque())
                stamps.append(now)
                self._trim_window(stamps, now)

    def observe_tier(
        self,
        tier: str,
        latency_s: Optional[float] = None,
        shed: bool = False,
    ) -> None:
        """Record one admission outcome for a QoS ``tier``: a shed
        (``shed=True``), or a served request with its latency."""
        if shed:
            self._tier_shed.labels(tier=tier).inc()
            return
        self._tier_requests.labels(tier=tier).inc()
        if latency_s is not None:
            with self._lock:
                ring = self._tier_rings.get(tier)
                if ring is None:
                    ring = self._tier_rings[tier] = LatencyRing(self._ring_capacity)
            ring.observe(latency_s)

    def incr(self, name: str, delta: int = 1) -> None:
        """Bump a named reliability counter (``shed_total``,
        ``deadline_exceeded_total``, ``reload_failures``, ...); rendered
        under ``counters`` in the metrics document and as
        ``repro_events_total{event=...}`` in the Prometheus exposition."""
        self._events.labels(event=name).inc(delta)

    def counter(self, name: str) -> int:
        return int(self._events.labels(event=name).value)

    def _trim_window(self, stamps: "deque[float]", now: float) -> None:
        horizon = now - self._qps_window
        while stamps and stamps[0] < horizon:
            stamps.popleft()

    # ------------------------------------------------------------------

    def latency(self) -> LatencySummary:
        return self._ring.summary()

    def snapshot(self, plan_cache_stats: Optional[object] = None) -> Dict[str, object]:
        """A JSON-ready metrics document (shape pinned by the tests)."""
        now = self._clock()
        counters = {
            labels["event"]: int(child.value)
            for labels, child in self._events.children()
        }
        per_request = {
            labels["synopsis"]: int(child.value)
            for labels, child in self._syn_requests.children()
        }
        per_queries = {
            labels["synopsis"]: int(child.value)
            for labels, child in self._syn_queries.children()
        }
        per_errors = {
            labels["synopsis"]: int(child.value)
            for labels, child in self._syn_errors.children()
        }
        with self._lock:
            per_synopsis: Dict[str, object] = {}
            window = min(self._qps_window, max(now - self._started, 1e-9))
            for name in sorted(per_request):
                stamps = self._stamps.get(name, deque())
                self._trim_window(stamps, now)
                per_synopsis[name] = {
                    "requests": per_request.get(name, 0),
                    "queries": per_queries.get(name, 0),
                    "errors": per_errors.get(name, 0),
                    "qps": len(stamps) / window,
                }
        payload: Dict[str, object] = {
            "uptime_s": now - self._started,
            "requests_total": int(self._requests.value),
            "queries_total": int(self._queries.value),
            "errors_total": int(self._errors.value),
            "counters": counters,
            "latency_ms": self.latency().as_dict(),
            "synopses": per_synopsis,
        }
        tiers = self._tier_snapshot()
        if tiers:
            payload["tiers"] = tiers
        if plan_cache_stats is not None:
            payload["plan_cache"] = (
                plan_cache_stats.as_dict()
                if hasattr(plan_cache_stats, "as_dict")
                else plan_cache_stats
            )
        return payload

    def _tier_snapshot(self) -> Dict[str, object]:
        """Per-tier admitted/shed counts and latency summaries (empty
        when no tiered traffic has been observed)."""
        admitted = {
            labels["tier"]: int(child.value)
            for labels, child in self._tier_requests.children()
        }
        shed = {
            labels["tier"]: int(child.value)
            for labels, child in self._tier_shed.children()
        }
        with self._lock:
            rings = dict(self._tier_rings)
        tiers: Dict[str, object] = {}
        for name in sorted(set(admitted) | set(shed)):
            ring = rings.get(name)
            tiers[name] = {
                "requests": admitted.get(name, 0),
                "shed": shed.get(name, 0),
                "latency_ms": (
                    ring.summary().as_dict()
                    if ring is not None
                    else LatencySummary.from_samples(()).as_dict()
                ),
            }
        return tiers

    def render_prom(self, extra_values: Optional[Dict[str, float]] = None) -> str:
        """Prometheus text exposition (format 0.0.4) of the registry.

        ``extra_values`` publishes point-in-time numbers (plan-cache
        stats, in-flight gauge) as ``repro_<key>`` gauges before
        rendering.
        """
        self._uptime.set(self._clock() - self._started)
        for key, value in (extra_values or {}).items():
            gauge = self.registry.gauge(
                "repro_%s" % key, "Point-in-time service value."
            )
            gauge.set(float(value))
        return self.registry.render_prom()
