"""Service metrics: counters, latency percentiles, per-synopsis QPS.

Follows the conventions of :mod:`repro.harness.metrics` (a frozen
dataclass summary built from a sample sequence, percentile index
``min(n-1, int(q*n))`` over the sorted samples) but observes *request
latencies* instead of relative errors, and keeps only a bounded ring of
recent samples so a long-lived server stays O(1) in memory.

Everything is thread-safe; the HTTP handler threads call ``observe`` and
``GET /metrics`` renders ``snapshot()``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

DEFAULT_RING_CAPACITY = 4096
DEFAULT_QPS_WINDOW = 30.0


def _percentile(ordered: Sequence[float], fraction: float) -> float:
    """Same index convention as harness.metrics.ErrorSummary.p90."""
    if not ordered:
        return 0.0
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


@dataclass(frozen=True)
class LatencySummary:
    """Distribution summary of request latencies, in milliseconds."""

    count: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    @classmethod
    def from_samples(cls, seconds: Sequence[float]) -> "LatencySummary":
        if not seconds:
            return cls(0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(value * 1000.0 for value in seconds)
        return cls(
            count=len(ordered),
            p50_ms=_percentile(ordered, 0.50),
            p95_ms=_percentile(ordered, 0.95),
            p99_ms=_percentile(ordered, 0.99),
            max_ms=ordered[-1],
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "max_ms": self.max_ms,
        }

    def __str__(self) -> str:
        return "n=%d p50=%.3fms p95=%.3fms p99=%.3fms max=%.3fms" % (
            self.count,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.max_ms,
        )


class LatencyRing:
    """Bounded ring of the most recent latency samples (seconds)."""

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY):
        self._samples: "deque[float]" = deque(maxlen=max(1, capacity))
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(seconds)

    def summary(self) -> LatencySummary:
        with self._lock:
            samples = list(self._samples)
        return LatencySummary.from_samples(samples)

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)


class _SynopsisCounters:
    """Per-synopsis request accounting and a QPS timestamp window."""

    __slots__ = ("requests", "queries", "errors", "stamps")

    def __init__(self) -> None:
        self.requests = 0
        self.queries = 0
        self.errors = 0
        self.stamps: "deque[float]" = deque()


class ServiceMetrics:
    """Aggregated serving metrics, rendered by ``GET /metrics``.

    One ``observe`` per HTTP estimate request; ``queries`` counts the
    individual estimates inside it (a batch of 10 is one request, ten
    queries).  QPS is requests over a sliding ``qps_window`` seconds.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
        qps_window: float = DEFAULT_QPS_WINDOW,
    ):
        self._clock = clock
        self._started = clock()
        self._qps_window = qps_window
        self._lock = threading.Lock()
        self._ring = LatencyRing(ring_capacity)
        self._requests = 0
        self._queries = 0
        self._errors = 0
        self._counters: Dict[str, int] = {}
        self._per_synopsis: Dict[str, _SynopsisCounters] = {}

    # ------------------------------------------------------------------

    def observe(
        self,
        synopsis: Optional[str],
        latency_s: float,
        queries: int = 1,
        error: bool = False,
    ) -> None:
        """Record one estimate request against ``synopsis`` (None when the
        request failed before a synopsis was resolved)."""
        now = self._clock()
        self._ring.observe(latency_s)
        with self._lock:
            self._requests += 1
            self._queries += queries
            if error:
                self._errors += 1
            if synopsis is not None:
                counters = self._per_synopsis.setdefault(synopsis, _SynopsisCounters())
                counters.requests += 1
                counters.queries += queries
                if error:
                    counters.errors += 1
                counters.stamps.append(now)
                self._trim(counters, now)

    def incr(self, name: str, delta: int = 1) -> None:
        """Bump a named reliability counter (``shed_total``,
        ``deadline_exceeded_total``, ``reload_failures``, ...); rendered
        under ``counters`` in the metrics document."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + delta

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def _trim(self, counters: _SynopsisCounters, now: float) -> None:
        horizon = now - self._qps_window
        while counters.stamps and counters.stamps[0] < horizon:
            counters.stamps.popleft()

    # ------------------------------------------------------------------

    def latency(self) -> LatencySummary:
        return self._ring.summary()

    def snapshot(self, plan_cache_stats: Optional[object] = None) -> Dict[str, object]:
        """A JSON-ready metrics document."""
        now = self._clock()
        with self._lock:
            per_synopsis: Dict[str, object] = {}
            for name in sorted(self._per_synopsis):
                counters = self._per_synopsis[name]
                self._trim(counters, now)
                window = min(self._qps_window, max(now - self._started, 1e-9))
                per_synopsis[name] = {
                    "requests": counters.requests,
                    "queries": counters.queries,
                    "errors": counters.errors,
                    "qps": len(counters.stamps) / window,
                }
            payload: Dict[str, object] = {
                "uptime_s": now - self._started,
                "requests_total": self._requests,
                "queries_total": self._queries,
                "errors_total": self._errors,
                "counters": dict(self._counters),
                "latency_ms": self.latency().as_dict(),
                "synopses": per_synopsis,
            }
        if plan_cache_stats is not None:
            payload["plan_cache"] = (
                plan_cache_stats.as_dict()
                if hasattr(plan_cache_stats, "as_dict")
                else plan_cache_stats
            )
        return payload
