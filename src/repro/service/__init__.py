"""Estimation service: a long-lived synopsis-serving daemon.

The paper's deployment story is that a compact synopsis replaces the
document at optimization time — summaries are built once and shipped to
query optimizers.  This package is that shipping lane, stdlib only:

* :mod:`repro.service.registry` — loads persisted synopses from a
  snapshot directory, hot-reloads them when the files change, and hosts
  *live* synopses maintained in place under appends
  (:mod:`repro.stats.maintenance`);
* :mod:`repro.service.plancache` — an LRU of compiled plans (parsed AST,
  chosen estimation route, scoped-axis rewrite variants, memoized
  estimate) so hot queries skip parsing and routing entirely;
* :mod:`repro.service.metrics` — registry-backed request/error counters,
  a latency ring buffer with p50/p95/p99, per-synopsis QPS and both JSON
  and Prometheus exposition;
* :mod:`repro.service.config` — frozen :class:`ServerConfig` /
  :class:`ClientConfig` dataclasses grouping the tuning knobs;
* :mod:`repro.service.server` — a threaded JSON-over-HTTP front end
  (``POST /estimate`` with per-request tracing, ``GET /synopses``,
  ``GET /healthz``, ``GET /metrics[?format=prom]``,
  ``GET /debug/slowlog``);
* :mod:`repro.service.client` — a small blocking client for one such
  endpoint (:class:`EndpointClient`; the cluster-aware front door is
  :func:`repro.connect`).

Run one with ``python -m repro serve --snapshot-dir <dir>`` after writing
snapshots with ``python -m repro snapshot``, or in-process::

    from repro.service import ServerConfig, serve
    server = serve(snapshot_dir, config=ServerConfig(port=0))

For multi-core serving, ``repro serve --workers N`` (or
:func:`serve_pool`) runs the :mod:`repro.shm` pre-fork pool instead: the
supervisor stages mmap-able kernelpacks once and N ``SO_REUSEPORT``
worker processes serve them zero-copy.
"""

from typing import Optional

from repro.obs.slowlog import SlowQueryLog
from repro.reliability.brownout import BrownoutController
from repro.reliability.shedding import (
    AdmissionGate,
    TieredAdmissionGate,
    default_tiers,
)
from repro.service.client import EndpointClient, ServiceClient, ServiceError
from repro.service.config import DEFAULT_PORT, ClientConfig, ServerConfig
from repro.service.metrics import LatencySummary, ServiceMetrics
from repro.service.plancache import CompiledPlan, PlanCache, compile_plan
from repro.service.registry import (
    LiveSynopsis,
    SynopsisEntry,
    SynopsisRegistry,
    UnknownSynopsisError,
)
from repro.service.server import EstimationService, ServiceServer


def serve(
    snapshot_dir: str,
    *,
    config: Optional[ServerConfig] = None,
    registry: Optional[SynopsisRegistry] = None,
) -> ServiceServer:
    """Assemble a fully wired, **not yet started** service server.

    One :class:`ServerConfig` drives registry, plan cache, admission
    gate, slow-query log and trace sampling; call ``.start()`` (tests)
    or ``.serve_forever()`` (daemons) on the returned server.
    """
    cfg = config if config is not None else ServerConfig()
    if registry is None:
        registry = SynopsisRegistry(
            snapshot_dir, check_interval=cfg.reload_interval_s
        )
    if cfg.qos:
        gate = TieredAdmissionGate(
            tiers=default_tiers(
                cfg.max_inflight,
                bulk_max_inflight=cfg.bulk_max_inflight,
                standard_queue=cfg.standard_queue,
                request_deadline_s=cfg.request_deadline_s,
            ),
            max_total=cfg.max_inflight,
        )
        brownout = (
            BrownoutController(
                window_s=cfg.brownout_window_s,
                enter_threshold=cfg.brownout_enter_threshold,
                escalate_threshold=cfg.brownout_escalate_threshold,
                exit_threshold=cfg.brownout_exit_threshold,
                dwell_s=cfg.brownout_dwell_s,
                cooloff_s=cfg.brownout_cooloff_s,
            )
            if cfg.brownout
            else None
        )
    else:
        gate = AdmissionGate(max_inflight=cfg.max_inflight)
        brownout = None
    service = EstimationService(
        registry,
        plan_cache=PlanCache(cfg.plan_cache_capacity),
        gate=gate,
        semcache_capacity=cfg.semcache_capacity,
        semcache_ttl_s=cfg.semcache_ttl_s,
        request_deadline_s=cfg.request_deadline_s,
        slow_log=SlowQueryLog(
            capacity=cfg.slowlog_capacity,
            threshold_ms=cfg.slowlog_threshold_ms,
            top_k=cfg.slowlog_top_k,
        ),
        trace_sample_rate=cfg.trace_sample_rate,
        compat_fields=cfg.compat_fields,
        brownout=brownout,
    )
    return ServiceServer(
        service,
        host=cfg.host,
        port=cfg.port,
        read_deadline_s=cfg.read_deadline_s,
    )


def serve_pool(
    snapshot_dir: str,
    *,
    config: Optional[ServerConfig] = None,
):
    """Assemble a **not yet started** pre-fork worker pool (+ control
    server when ``config.control_port`` is set).

    Returns ``(pool, control)`` — call ``pool.start()`` then
    ``control.start()``; ``control`` is ``None`` when disabled.  Requires
    ``config.workers > 1`` support on the platform
    (:func:`repro.shm.pool_supported`).
    """
    from repro.shm import ControlServer, WorkerPool

    cfg = config if config is not None else ServerConfig()
    pool = WorkerPool(snapshot_dir, workers=cfg.workers, config=cfg)
    control = None
    if cfg.control_port is not None:
        control = ControlServer(pool, host=cfg.host, port=cfg.control_port)
    return pool, control


__all__ = [
    "ClientConfig",
    "CompiledPlan",
    "DEFAULT_PORT",
    "EndpointClient",
    "EstimationService",
    "LatencySummary",
    "LiveSynopsis",
    "PlanCache",
    "ServerConfig",
    "ServiceClient",
    "ServiceError",
    "ServiceMetrics",
    "ServiceServer",
    "SlowQueryLog",
    "SynopsisEntry",
    "SynopsisRegistry",
    "UnknownSynopsisError",
    "compile_plan",
    "serve",
    "serve_pool",
]
