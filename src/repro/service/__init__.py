"""Estimation service: a long-lived synopsis-serving daemon.

The paper's deployment story is that a compact synopsis replaces the
document at optimization time — summaries are built once and shipped to
query optimizers.  This package is that shipping lane, stdlib only:

* :mod:`repro.service.registry` — loads persisted synopses from a
  snapshot directory, hot-reloads them when the files change, and hosts
  *live* synopses maintained in place under appends
  (:mod:`repro.stats.maintenance`);
* :mod:`repro.service.plancache` — an LRU of compiled plans (parsed AST,
  chosen estimation route, scoped-axis rewrite variants, memoized
  estimate) so hot queries skip parsing and routing entirely;
* :mod:`repro.service.metrics` — request/error counters, a latency ring
  buffer with p50/p95/p99, per-synopsis QPS and the cache hit rate;
* :mod:`repro.service.server` — a threaded JSON-over-HTTP front end
  (``POST /estimate``, ``GET /synopses``, ``GET /healthz``,
  ``GET /metrics``);
* :mod:`repro.service.client` — a small blocking client for the above.

Run one with ``python -m repro serve --snapshot-dir <dir>`` after writing
snapshots with ``python -m repro snapshot``.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.metrics import LatencySummary, ServiceMetrics
from repro.service.plancache import CompiledPlan, PlanCache, compile_plan
from repro.service.registry import (
    LiveSynopsis,
    SynopsisEntry,
    SynopsisRegistry,
    UnknownSynopsisError,
)
from repro.service.server import EstimationService, ServiceServer

__all__ = [
    "CompiledPlan",
    "EstimationService",
    "LatencySummary",
    "LiveSynopsis",
    "PlanCache",
    "ServiceClient",
    "ServiceError",
    "ServiceMetrics",
    "ServiceServer",
    "SynopsisEntry",
    "SynopsisRegistry",
    "UnknownSynopsisError",
    "compile_plan",
]
