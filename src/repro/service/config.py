"""Typed configuration for the estimation service and its client.

The server/client tuning knobs used to travel as long positional
parameter lists; they are now grouped into frozen dataclasses so a
config can be built once (by the CLI, a test harness, or an embedding
application) and handed to :func:`repro.service.serve` or
:class:`repro.service.ServiceClient` as a single value.  Every field has
the historical default, so ``ServerConfig()`` reproduces the pre-config
behaviour exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Optional

DEFAULT_PORT = 8750


@dataclass(frozen=True)
class ServerConfig:
    """Tuning for :func:`repro.service.serve` / the ``repro serve`` CLI."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    plan_cache_capacity: int = 512
    #: Semantic result cache (repro.semcache) ring size per served
    #: synopsis; 0 disables result caching (plans still cache).
    semcache_capacity: int = 4096
    #: Optional TTL for semantic-cache entries, seconds (None = entries
    #: live until the next generation bump or LRU eviction).
    semcache_ttl_s: Optional[float] = None
    reload_interval_s: float = 2.0
    max_inflight: int = 64
    request_deadline_s: Optional[float] = None
    drain_timeout_s: float = 5.0
    # QoS tiers -------------------------------------------------------
    #: Tiered admission (``interactive`` / ``standard`` / ``bulk``
    #: priority lanes over the ``max_inflight`` pool).  Off = the flat
    #: single-lane :class:`~repro.reliability.shedding.AdmissionGate`.
    qos: bool = True
    #: Bulk lane in-flight cap (None = ``max_inflight // 4``).
    bulk_max_inflight: Optional[int] = None
    #: Bounded-wait queue depth for the standard lane (mid-tier work
    #: queues briefly instead of getting an instant 503).
    standard_queue: int = 32
    # Brownout --------------------------------------------------------
    #: Staged degradation under sustained overload: shed tracing and
    #: slow-query logging first, then bulk admission.  Only meaningful
    #: with ``qos`` on.
    brownout: bool = True
    brownout_window_s: float = 5.0
    brownout_enter_threshold: float = 0.10
    brownout_escalate_threshold: float = 0.30
    brownout_exit_threshold: float = 0.02
    brownout_dwell_s: float = 1.0
    brownout_cooloff_s: float = 3.0
    # Connection hygiene ----------------------------------------------
    #: Socket read deadline per connection, seconds: a client that trickles
    #: its request (slow-loris) or idles past this is disconnected instead
    #: of pinning a handler thread.  ``None`` disables.
    read_deadline_s: Optional[float] = 30.0
    # Wire compatibility ---------------------------------------------
    #: Mirror the legacy top-level estimate fields (``estimate``,
    #: ``route``, ``cached``, ``kernel``) beside the versioned
    #: ``result`` object in every estimate response.  The ``result``
    #: object is the primary shape since RESULT_FORMAT_VERSION 2; turn
    #: this off once no pre-v2 clients remain to halve response size.
    #: A request may override per-call with ``"compat": true/false``.
    compat_fields: bool = True
    # Worker pool ----------------------------------------------------
    #: Pre-forked ``SO_REUSEPORT`` worker processes (1 = classic
    #: single-process serving; N > 1 needs fork + SO_REUSEPORT).
    workers: int = 1
    #: Supervisor control-plane port for ``workers > 1`` (aggregated
    #: /metrics, /healthz, POST /reload); 0 binds an ephemeral port,
    #: None disables the control server.
    control_port: Optional[int] = 0
    # Observability --------------------------------------------------
    trace_sample_rate: float = 0.0
    slowlog_capacity: int = 256
    slowlog_threshold_ms: float = 0.0
    slowlog_top_k: int = 32

    def __post_init__(self) -> None:
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ValueError("trace_sample_rate must be in [0, 1]")
        if self.plan_cache_capacity < 0:
            raise ValueError("plan_cache_capacity must be >= 0")
        if self.semcache_capacity < 0:
            raise ValueError("semcache_capacity must be >= 0")
        if self.semcache_ttl_s is not None and self.semcache_ttl_s <= 0:
            raise ValueError("semcache_ttl_s must be > 0 (or None)")
        if self.slowlog_capacity <= 0:
            raise ValueError("slowlog_capacity must be > 0")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.standard_queue < 0:
            raise ValueError("standard_queue must be >= 0")
        if self.bulk_max_inflight is not None and self.bulk_max_inflight < 1:
            raise ValueError("bulk_max_inflight must be >= 1")
        if self.read_deadline_s is not None and self.read_deadline_s <= 0:
            raise ValueError("read_deadline_s must be > 0 (or None)")

    def as_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class ClientConfig:
    """Tuning for :class:`repro.service.ServiceClient`."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    timeout: float = 30.0
    keep_alive: bool = True
    retry_budget_s: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}
