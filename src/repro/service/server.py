"""Threaded JSON-over-HTTP front end for the synopsis registry.

Endpoints
---------

``POST /estimate``
    Body ``{"synopsis": name, "query": text}`` for a single estimate or
    ``{"synopsis": name, "queries": [text, ...]}`` for a batch.  Replies
    with the estimate(s), the route taken and whether the compiled plan
    came from the cache.  A single-query body may instead set
    ``"explain": true`` — returns the cost-based plan IR (ordered
    semijoin steps with expected cardinalities) without executing — or
    ``"execute": true`` — runs the plan against the synopsis's source
    document and returns ``matches``/``match_count`` plus the executed
    plan with observed cardinalities and any mid-plan replans (``409``
    kind ``execute_unsupported`` for statistics-only synopses).
``POST /delta``
    Body ``{"synopsis": name, "partial": <repro.persist.partial_to_dict>}``:
    merges an uploaded delta partial into a delta-capable synopsis in
    place (no rebuild, no restart) and replies with the apply outcome
    (refreshed/deferred, new generation, drift).  ``409`` with kind
    ``delta_unsupported`` when the synopsis cannot absorb deltas.
``GET /synopses``
    The registry inventory (name, generation, source, sizes).
``GET /healthz``
    Liveness *and* degradation: ``{"status": "ok" | "degraded",
    "synopses": N, "reload_failures": N}`` plus, when degraded, the
    name → reason map of entries serving last-good state.
``GET /metrics``
    Counters, latency percentiles, per-synopsis QPS, cache hit rate and
    the reliability block (in-flight, shed, deadline counters).  With
    ``?format=prom`` the same registry renders Prometheus text
    exposition (format 0.0.4) instead of JSON.
``GET /debug/slowlog``
    The slow-query log: recent entries over the latency threshold plus
    the top-K by latency and (when the client supplied ground truth) by
    relative error.  ``?limit=N`` bounds the ``recent`` list.

Tracing: a request body carrying ``"trace": true`` — or one picked by
the server's deterministic sample rate — re-executes the estimate under
a :class:`~repro.obs.trace.Tracer` and returns the span tree inside the
versioned ``result`` object (``result.trace``).  Every response now
carries that structured ``result`` alongside the legacy flat fields.

The server is :class:`http.server.ThreadingHTTPServer` — one thread per
connection, stdlib only.  Estimation runs outside the registry lock; the
plan cache and metrics are thread-safe, so concurrent clients see exactly
the numbers a direct :meth:`EstimationSystem.estimate` would produce.

Reliability: every ``POST /estimate`` passes the service's admission
gate — beyond the in-flight budget the request is shed with ``503``
and a ``Retry-After`` header instead of queueing unboundedly — and runs
under an optional per-request deadline (``504`` with kind
``deadline_exceeded`` when the budget runs out mid-batch).  Read-only
endpoints bypass the gate so health and metrics stay observable during
overload.  :meth:`ServiceServer.close` drains in-flight requests before
tearing the socket down.

QoS tiers: with a :class:`~repro.reliability.shedding.TieredAdmissionGate`
each request is routed to a named priority lane — the ``X-Repro-Tier``
header (admission happens *before* the body is read, so a shed costs no
parsing), else the body's ``"tier"`` field, else by shape (batches →
``bulk``, singles → ``interactive``).  Sheds carry the lane's own
``Retry-After`` and the tier/reason inside the error object; bulk
batches yield their slot to waiting interactive work between queries
(:meth:`TieredAdmissionGate.checkpoint`).  A
:class:`~repro.reliability.brownout.BrownoutController`, when attached,
watches capacity sheds and degrades in stages: tracing and slow-query
logging stop first, then brownout-sheddable tiers are refused outright;
``/healthz``, ``/metrics`` and wire-v2 responses all advertise the
state.

Connection hygiene: ``read_deadline_s`` puts a socket timeout on every
connection, so a slow-loris client trickling its request bytes is cut
off (``408`` with kind ``read_timeout`` mid-body, silent close on the
request line) instead of pinning a handler thread.
"""

from __future__ import annotations

import dataclasses
import json
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.core.options import EstimateOptions
from repro.core.result import EstimateResult
from repro.core.transform import UnsupportedQueryError
from repro.errors import ExecutionUnsupportedError, ReproError, error_kind
from repro.obs.slowlog import SlowQueryLog
from repro.reliability import faults
from repro.reliability.brownout import BrownoutController
from repro.reliability.policy import Deadline, DeadlineExceededError
from repro.reliability.shedding import (
    BULK_TIER,
    INTERACTIVE_TIER,
    AdmissionGate,
    OverloadedError,
    TieredAdmissionGate,
)
from repro.service.config import DEFAULT_PORT
from repro.service.metrics import ServiceMetrics
from repro.service.plancache import PlanCache
from repro.service.registry import SynopsisRegistry, UnknownSynopsisError
from repro.xpath.parser import XPathSyntaxError

PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Largest match list returned on the wire by an ``"execute": true``
#: request; ``match_count`` is always the full count and
#: ``matches_truncated`` flags a capped list.
MAX_WIRE_MATCHES = 1000


class RequestError(ValueError):
    """A client-side request problem, mapped to an HTTP status.

    ``kind`` is the stable machine-readable slug carried in the response's
    ``error.kind`` field (the human-readable message may change between
    releases; the kind will not).

    ``retry_after_s``, when set, is emitted as a ``Retry-After`` header
    (503/429-style responses that the client should back off from).
    """

    def __init__(
        self,
        status: int,
        message: str,
        kind: str = "bad_request",
        retry_after_s: Optional[float] = None,
    ):
        super().__init__(message)
        self.status = status
        self.kind = kind
        self.retry_after_s = retry_after_s


def error_body(kind: str, message: str, **extra: Any) -> Dict[str, Any]:
    """The wire shape of every error response: ``{"error": {kind, message}}``.

    ``extra`` keys (``tier``, ``reason``, ...) are additive fields inside
    the error object; ``None`` values are dropped.
    """
    error: Dict[str, Any] = {"kind": kind, "message": message}
    for key, value in extra.items():
        if value is not None:
            error[key] = value
    return {"error": error}


def _trace_used_kernel(trace: Optional[Dict[str, Any]]) -> bool:
    """True when the span tree contains a ``bitset_join`` span.

    Traced requests bypass the compiled plan's memo, so the only honest
    answer to "did the kernel serve this?" is whether the re-execution
    actually went down the bitset path.
    """
    if not isinstance(trace, dict):
        return False
    stack = [trace.get("root")]
    while stack:
        span = stack.pop()
        if not isinstance(span, dict):
            continue
        if span.get("name") == "bitset_join":
            return True
        stack.extend(span.get("children", ()))
    return False


class EstimationService:
    """Registry + plan cache + metrics behind one estimate() entry point.

    This is the transport-free core: the HTTP handler, the benchmark load
    generator and the tests all talk to the same object.
    """

    def __init__(
        self,
        registry: SynopsisRegistry,
        plan_cache: Optional[PlanCache] = None,
        metrics: Optional[ServiceMetrics] = None,
        gate: Optional[AdmissionGate] = None,
        request_deadline_s: Optional[float] = None,
        slow_log: Optional[SlowQueryLog] = None,
        trace_sample_rate: float = 0.0,
        compat_fields: bool = True,
        brownout: Optional[BrownoutController] = None,
        semcache_capacity: Optional[int] = None,
        semcache_ttl_s: Optional[float] = None,
    ):
        self.registry = registry
        self.compat_fields = compat_fields
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        #: Semantic result cache knobs applied to every served system
        #: (None = leave each system's own SemanticResultCache defaults).
        self.semcache_capacity = semcache_capacity
        self.semcache_ttl_s = (
            semcache_ttl_s if semcache_ttl_s and semcache_ttl_s > 0 else None
        )
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.gate = gate if gate is not None else AdmissionGate()
        #: QoS lanes are active when the gate is tiered; the handler then
        #: resolves a tier per request and admission is priority-ordered.
        self.tiered = isinstance(self.gate, TieredAdmissionGate)
        self.brownout = brownout
        self.request_deadline_s = request_deadline_s
        self.slow_log = slow_log if slow_log is not None else SlowQueryLog()
        self.trace_sample_rate = trace_sample_rate
        self._sample_lock = threading.Lock()
        self._sample_seq = 0
        # Worker-pool hooks (set by repro.shm.pool on forked workers):
        # callables returning the shared-memory arena's aggregated
        # metrics / per-worker liveness, so any worker can render the
        # pool-wide picture under "workers".
        self.workers_view: Optional[Any] = None
        self.workers_liveness: Optional[Any] = None

    def _configure_semcache(self, system) -> None:
        """Push the service's semcache knobs onto one served system.

        Cheap enough to run per request (two comparisons on the hot
        path); reconfiguration only happens when a knob actually
        differs, e.g. the first time a hot-reloaded system is served.
        """
        if self.semcache_capacity is None and self.semcache_ttl_s is None:
            return
        cache = getattr(system, "semcache", None)
        if cache is None:  # pragma: no cover - defensive
            return
        capacity = (
            self.semcache_capacity
            if self.semcache_capacity is not None
            else cache.capacity
        )
        if cache.capacity != capacity or cache.ttl_s != self.semcache_ttl_s:
            cache.configure(capacity, self.semcache_ttl_s)

    def _sample_trace(self) -> bool:
        """Deterministic systematic sampling: of every 1/rate requests,
        exactly one is traced (``int(n*rate)`` advances)."""
        rate = self.trace_sample_rate
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        with self._sample_lock:
            self._sample_seq += 1
            n = self._sample_seq
        return int(n * rate) > int((n - 1) * rate)

    # ------------------------------------------------------------------
    # QoS admission
    # ------------------------------------------------------------------

    def select_tier(
        self, payload: Any = None, header: Optional[str] = None
    ) -> Optional[str]:
        """Resolve the QoS lane for one estimate request.

        Precedence: the ``X-Repro-Tier`` header (lets the gate shed
        before the body is even read), then the body's ``"tier"`` field,
        then shape — batches default to ``bulk``, single estimates to
        ``interactive``.  ``None`` when the gate is untiered.  Raises
        :class:`RequestError` (400, kind ``unknown_tier``) for a tier
        the gate does not know.
        """
        if not self.tiered:
            return None
        names = self.gate.tier_names
        choice: Optional[str] = None
        if header:
            choice = header
        elif isinstance(payload, dict):
            field = payload.get("tier")
            if field is not None:
                if not isinstance(field, str):
                    raise RequestError(400, "'tier' must be a string", "unknown_tier")
                choice = field
            elif "queries" in payload:
                choice = BULK_TIER if BULK_TIER in names else self.gate.default_tier
            else:
                choice = (
                    INTERACTIVE_TIER
                    if INTERACTIVE_TIER in names
                    else self.gate.default_tier
                )
        if choice is None:
            choice = self.gate.default_tier
        if choice not in names:
            raise RequestError(
                400,
                "unknown tier %r (expected one of: %s)" % (choice, ", ".join(names)),
                "unknown_tier",
            )
        return choice

    def admit(self, tier: Optional[str] = None) -> None:
        """Enter the admission gate on ``tier``, feeding the brownout
        controller and per-tier shed metrics.  Raises
        :class:`~repro.reliability.shedding.OverloadedError` on shed;
        every successful ``admit`` must be paired with :meth:`release`.
        """
        try:
            if self.tiered:
                self.gate.enter(tier)
            else:
                self.gate.enter()
        except OverloadedError as error:
            # Only *capacity* sheds are overload pressure; brownout and
            # shutdown sheds are policy outcomes and feeding them back
            # would latch the brownout on forever.
            self._record_admission(shed=error.reason == "capacity")
            if error.tier is not None:
                self.metrics.observe_tier(error.tier, shed=True)
            raise
        self._record_admission(shed=False)

    def release(self, tier: Optional[str] = None) -> None:
        if self.tiered:
            self.gate.leave(tier)
        else:
            self.gate.leave()

    def _record_admission(self, shed: bool) -> None:
        """Feed one admission outcome to the brownout controller and
        apply any level change to the gate's shed-tier set."""
        controller = self.brownout
        if controller is None:
            return
        level = controller.record(shed)
        if not self.tiered:
            return
        want = frozenset(
            self.gate.brownout_sheddable_tiers() if level >= 2 else ()
        )
        if want != self.gate.shed_tiers:
            self.gate.set_shed_tiers(want)
            self.metrics.incr("brownout_transitions_total")

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------

    def estimate(
        self,
        synopsis: str,
        text: str,
        trace: bool = False,
        actual: Optional[float] = None,
        memo: Optional[Dict[str, Tuple[float, str, bool]]] = None,
        entry=None,
        compat: Optional[bool] = None,
        tier: Optional[str] = None,
        slowlog: bool = True,
        mode: str = "estimate",
    ) -> Dict[str, Any]:
        """One estimate as a JSON-ready dict (no request-metrics side
        effects; the slow-query log *is* fed here, per query).

        A traced call bypasses the memoized plan result and re-executes
        through :meth:`EstimationSystem.query` so the returned span tree
        (parse → plan → lookups → join) reflects a real execution; its
        ``kernel`` field reports whether that execution actually took the
        bitset path (a ``bitset_join`` span in the trace).

        ``memo`` is a batch-local ``key -> (value, route, kernel)`` map
        keyed by both exact text and the plan's canonical semantic key:
        within one batch request, repeated texts reuse the first
        computed value without re-entering the plan cache, equivalent-
        but-differently-written members (reordered branches, spelling
        variants) are deduplicated by canonical key (common-
        subexpression elimination), and every plan in the batch shares
        the same kernel (so its containment-row memos are warm across
        queries).

        ``entry`` pins the registry entry (system + generation) for the
        whole call: :meth:`handle_estimate` resolves it once per request
        so a hot reload landing mid-batch cannot hand later queries a
        different synopsis than earlier ones.  Without it, the entry is
        resolved here (single ad-hoc estimates).

        ``compat`` controls whether the legacy flat mirror fields
        (``estimate``/``route``/``cached``/``kernel``) accompany the
        versioned ``result`` object; ``None`` falls back to the
        service-wide :attr:`compat_fields` default.

        ``tier`` stamps the result object with the QoS lane that served
        it; ``slowlog=False`` skips the slow-query log (brownout level 1
        sheds observability before estimates).

        ``mode`` selects the verb: ``"estimate"`` (default),
        ``"explain"`` (return the cost-based plan, no execution) or
        ``"execute"`` (run the plan against the synopsis's document and
        return matches + the executed plan with observed cardinalities).
        """
        if entry is None:
            entry = self.registry.get(synopsis)
            if hasattr(entry, "pinned"):
                entry = entry.pinned()
        if compat is None:
            compat = self.compat_fields
        if mode != "estimate":
            return self._plan_verb(
                synopsis, text, entry, mode,
                compat=compat, tier=tier, slowlog=slowlog,
            )
        if trace:
            traced = entry.system.estimate(
                text, options=EstimateOptions(trace=True)
            )
            kernel_used = _trace_used_kernel(traced.trace)
            result = EstimateResult(
                value=traced.value,
                query=text,
                route=traced.route,
                elapsed_ms=traced.elapsed_ms,
                trace=traced.trace,
                cached=False,
                kernel=kernel_used,
                tier=tier,
                cache={"plan": False, "result": False},
            )
        elif memo is not None and text in memo:
            value, route, kernel_used = memo[text]
            self.metrics.incr("semcache_hits_total")
            result = EstimateResult(
                value=value,
                query=text,
                route=route,
                elapsed_ms=0.0,
                cached=True,
                kernel=kernel_used,
                tier=tier,
                cache={"plan": True, "result": True},
            )
        else:
            self._configure_semcache(entry.system)
            plan, hit = self.plan_cache.get_or_compile(
                entry.name, entry.generation, entry.system, text
            )
            if memo is not None and plan.canonical in memo:
                # Within-batch CSE: a differently-written equivalent of
                # this query already ran in this batch.
                value, route, kernel_used = memo[plan.canonical]
                self.metrics.incr("semcache_hits_total")
                result = EstimateResult(
                    value=value,
                    query=text,
                    route=route,
                    elapsed_ms=0.0,
                    cached=hit,
                    kernel=kernel_used,
                    tier=tier,
                    cache={"plan": hit, "result": True},
                )
            else:
                started = time.perf_counter()
                value, result_hit = plan.execute_cached(entry.system)
                kernel_used = bool(plan.kernel) and entry.system.kernel_active()
                self.metrics.incr(
                    "semcache_hits_total" if result_hit
                    else "semcache_misses_total"
                )
                result = EstimateResult(
                    value=value,
                    query=text,
                    route=plan.route,
                    elapsed_ms=(time.perf_counter() - started) * 1000.0,
                    cached=hit,
                    kernel=kernel_used,
                    tier=tier,
                    cache={"plan": hit, "result": result_hit},
                )
                if memo is not None:
                    memo[text] = memo[plan.canonical] = (
                        value, plan.route, kernel_used,
                    )
        self.metrics.incr(
            "kernel_hits_total" if kernel_used else "kernel_misses_total"
        )
        if slowlog:
            self.slow_log.observe(
                query=text,
                elapsed_ms=result.elapsed_ms,
                synopsis=synopsis,
                route=result.route,
                estimate=result.value,
                actual=actual,
                trace_id=result.trace_id,
                trace=result.trace,
            )
        # ``result`` is the primary wire object (RESULT_FORMAT_VERSION
        # >= 2); the flat fields are a compat mirror for pre-v2 readers.
        body: Dict[str, Any] = {"result": result.as_dict()}
        if compat:
            body.update(
                query=text,
                estimate=result.value,
                route=result.route,
                cached=bool(result.cached),
                kernel=kernel_used,
            )
        return body

    def _plan_verb(
        self,
        synopsis: str,
        text: str,
        entry,
        mode: str,
        compat: bool,
        tier: Optional[str] = None,
        slowlog: bool = True,
    ) -> Dict[str, Any]:
        """Serve one explain/execute request against a pinned entry.

        ``explain`` plans only (works on statistics-only synopses);
        ``execute`` needs the entry's system to hold its source document
        and raises :class:`~repro.errors.ExecutionUnsupportedError`
        (mapped to 409) otherwise.  Executed requests feed the slow-query
        log with the *exact* match count as ground truth — the one place
        the service learns its own estimation error for free.
        """
        if mode == "explain":
            plan = entry.system.explain(text)
            self.metrics.incr("explains_total")
            return {"plan": plan.as_dict()}
        execution = entry.system.execute(text)
        result = execution.estimate
        # Plan verbs always run for real (explain/execute are not
        # memoizable responses), so cache attribution is all-False.
        result = dataclasses.replace(
            result, tier=tier, cache={"plan": False, "result": False}
        )
        plan = execution.plan
        self.metrics.incr("executions_total")
        if plan.replans:
            self.metrics.incr("plan_replans_total", plan.replans)
        if slowlog:
            self.slow_log.observe(
                query=text,
                elapsed_ms=execution.elapsed_ms,
                synopsis=synopsis,
                route=result.route,
                estimate=result.value,
                actual=float(execution.match_count),
                trace_id=result.trace_id,
                trace=result.trace,
            )
        matches = list(execution.matches)
        truncated = len(matches) > MAX_WIRE_MATCHES
        body: Dict[str, Any] = {
            "result": result.as_dict(),
            "plan": plan.as_dict(),
            "match_count": len(matches),
            "matches": matches[:MAX_WIRE_MATCHES],
            "matches_truncated": truncated,
        }
        if compat:
            body.update(
                query=text,
                estimate=result.value,
                route=result.route,
                cached=False,
                kernel=entry.system.kernel_active(),
            )
        return body

    def handle_estimate(
        self, payload: Any, tier: Optional[str] = None
    ) -> Dict[str, Any]:
        """Validate and serve one ``POST /estimate`` body; observes
        metrics (including for failed requests) and raises
        :class:`RequestError` with the proper HTTP status on bad input.

        ``tier`` is the already-admitted QoS lane (None with a flat
        gate): it picks the lane's deadline budget, stamps results, and
        lets bulk batches yield their slot between queries whenever
        higher-priority work is waiting.
        """
        started = time.perf_counter()
        deadline_s = self.request_deadline_s
        if self.tiered and tier is not None:
            policy = self.gate.policy(tier)
            if policy.deadline_s is not None:
                deadline_s = policy.deadline_s
        deadline = Deadline.after(deadline_s)
        # Brownout level 1 sheds observability work (tracing + slowlog)
        # before it touches any estimate.
        observability = self.brownout is None or self.brownout.allows_tracing()
        synopsis: Optional[str] = None
        queries: List[str] = []
        results: List[Dict[str, Any]] = []
        try:
            faults.fire("server.handle", payload)
            (
                synopsis,
                queries,
                batched,
                trace,
                actuals,
                compat,
                mode,
            ) = self._parse_estimate_payload(payload)
            trace = (trace or self._sample_trace()) and observability
            if trace:
                self.metrics.incr("traced_requests_total")
            # Batch requests share one text -> result memo so duplicate
            # queries are estimated once (and all plans in the batch
            # reuse the same warm kernel).
            memo: Optional[Dict[str, Tuple[float, str, bool]]] = (
                {} if batched and not trace else None
            )
            # Pin one synopsis version for the whole request: every
            # query in a batch estimates against the same system and the
            # reported generation is the one that actually served — a
            # reload landing mid-batch waits for the next request rather
            # than splitting this one across two synopses.  The entry
            # object itself is hot-swapped in place by reloads, so the
            # pin must capture (generation, system), not the entry.
            entry = self.registry.get(synopsis)
            if hasattr(entry, "pinned"):
                entry = entry.pinned()
            for index, text in enumerate(queries):
                deadline.check("estimate request")
                if self.tiered and batched and index:
                    # Cooperative preemption: between queries a batch
                    # offers its slot to waiting higher-priority work,
                    # bounded by its own remaining deadline.
                    wait = min(5.0, deadline.remaining())
                    if self.gate.checkpoint(tier, max_wait_s=wait):
                        self.metrics.incr("preemption_yields_total")
                        deadline.check("estimate request")
                results.append(
                    self.estimate(
                        synopsis,
                        text,
                        trace=trace,
                        actual=actuals[index],
                        memo=memo,
                        entry=entry,
                        compat=compat,
                        tier=tier,
                        slowlog=observability,
                        mode=mode,
                    )
                )
        except DeadlineExceededError:
            self.metrics.incr("deadline_exceeded_total")
            self._observe_failure(synopsis, started, len(queries))
            raise RequestError(
                504,
                "request exceeded its %.3fs deadline after %d of %d queries"
                % (deadline_s or 0.0, len(results), len(queries)),
                "deadline_exceeded",
            )
        except UnknownSynopsisError as error:
            self._observe_failure(None, started, len(queries))
            raise RequestError(404, "unknown synopsis %s" % error, "unknown_synopsis")
        except XPathSyntaxError as error:
            self._observe_failure(synopsis, started, len(queries))
            raise RequestError(400, "bad query: %s" % error, error_kind(error))
        except UnsupportedQueryError as error:
            self._observe_failure(synopsis, started, len(queries))
            raise RequestError(400, "unsupported query: %s" % error, "unsupported_query")
        except ExecutionUnsupportedError as error:
            # 409: the synopsis exists but is statistics-only (no source
            # document to run the plan against) — re-sending won't help.
            self._observe_failure(synopsis, started, len(queries))
            raise RequestError(409, str(error), error_kind(error))
        except ReproError as error:
            # Build/persist failures surfaced through the registry keep
            # their hierarchy slug (error.kind = "build", "persist", ...).
            self._observe_failure(synopsis, started, len(queries))
            raise RequestError(500, str(error), error_kind(error))
        except RequestError:
            self._observe_failure(synopsis, started, len(queries))
            raise
        generation = entry.generation
        elapsed = time.perf_counter() - started
        self.metrics.observe(synopsis, elapsed, queries=len(results))
        if tier is not None:
            self.metrics.observe_tier(tier, latency_s=elapsed)
        body: Dict[str, Any] = {"synopsis": synopsis, "generation": generation}
        if tier is not None:
            body["tier"] = tier
        if self.brownout is not None and self.brownout.level > 0:
            body["brownout"] = self.brownout.state
        if batched:
            body["results"] = results
            body["count"] = len(results)
        else:
            body.update(results[0])
        return body

    @staticmethod
    def _parse_estimate_payload(
        payload: Any,
    ) -> Tuple[
        str, List[str], bool, bool, List[Optional[float]], Optional[bool], str
    ]:
        """Returns ``(synopsis, queries, batched, trace, actuals, compat,
        mode)`` where ``actuals`` is aligned with ``queries`` (``None``
        when the client supplied no ground truth for that query),
        ``compat`` is the per-request legacy-field override (``None`` =
        use the server default) and ``mode`` is the verb —
        ``"estimate"``, ``"explain"`` or ``"execute"`` (single-query
        requests only)."""
        if not isinstance(payload, dict):
            raise RequestError(400, "request body must be a JSON object")
        synopsis = payload.get("synopsis")
        if not isinstance(synopsis, str) or not synopsis:
            raise RequestError(400, "missing 'synopsis' field")
        trace = payload.get("trace", False)
        if not isinstance(trace, bool):
            raise RequestError(400, "'trace' must be a boolean")
        compat = payload.get("compat")
        if compat is not None and not isinstance(compat, bool):
            raise RequestError(400, "'compat' must be a boolean")
        explain = payload.get("explain", False)
        execute = payload.get("execute", False)
        if not isinstance(explain, bool) or not isinstance(execute, bool):
            raise RequestError(400, "'explain'/'execute' must be booleans")
        if explain and execute:
            raise RequestError(400, "'explain' and 'execute' are mutually exclusive")
        mode = "execute" if execute else ("explain" if explain else "estimate")
        if "queries" in payload:
            if mode != "estimate":
                raise RequestError(
                    400, "'%s' applies to single-query requests only" % mode
                )
            queries = payload["queries"]
            if not isinstance(queries, list) or not all(
                isinstance(text, str) for text in queries
            ):
                raise RequestError(400, "'queries' must be a list of strings")
            if not queries:
                raise RequestError(400, "'queries' must not be empty")
            actuals = payload.get("actuals")
            if actuals is None:
                actuals = [None] * len(queries)
            elif (
                not isinstance(actuals, list)
                or len(actuals) != len(queries)
                or not all(
                    value is None or isinstance(value, (int, float))
                    for value in actuals
                )
            ):
                raise RequestError(
                    400, "'actuals' must be a list of numbers aligned with 'queries'"
                )
            return synopsis, queries, True, trace, list(actuals), compat, mode
        text = payload.get("query")
        if not isinstance(text, str) or not text:
            raise RequestError(400, "missing 'query' field")
        actual = payload.get("actual")
        if actual is not None and not isinstance(actual, (int, float)):
            raise RequestError(400, "'actual' must be a number")
        return synopsis, [text], False, trace, [actual], compat, mode

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------

    def handle_delta(self, payload: Any) -> Dict[str, Any]:
        """Serve one ``POST /delta`` body: merge an uploaded delta partial
        into a registered synopsis without a rebuild.

        Body: ``{"synopsis": name, "partial": <partial_to_dict() dict>,
        "force_refresh": bool?}``.  Replies with the apply outcome —
        whether the served system refreshed (vs. the delta being absorbed
        under the drift threshold), the post-apply generation, and the
        current drift fraction.
        """
        from repro import persist
        from repro.cluster.delta import DeltaError, DeltaUnsupportedError

        if not isinstance(payload, dict):
            raise RequestError(400, "request body must be a JSON object")
        synopsis = payload.get("synopsis")
        if not isinstance(synopsis, str) or not synopsis:
            raise RequestError(400, "missing 'synopsis' field")
        partial_dict = payload.get("partial")
        if not isinstance(partial_dict, dict):
            raise RequestError(400, "missing 'partial' field (partial_to_dict object)")
        force_refresh = payload.get("force_refresh", False)
        if not isinstance(force_refresh, bool):
            raise RequestError(400, "'force_refresh' must be a boolean")
        try:
            partial = persist.partial_from_dict(partial_dict)
        except ReproError as error:
            raise RequestError(400, "malformed partial: %s" % error, error_kind(error))
        try:
            entry, outcome = self.registry.apply_delta(
                synopsis, partial, force_refresh=force_refresh
            )
        except UnknownSynopsisError as error:
            raise RequestError(404, "unknown synopsis %s" % error, "unknown_synopsis")
        except DeltaUnsupportedError as error:
            # 409: the synopsis exists but cannot absorb deltas (plain
            # snapshot, kernelpack, live tree) — re-sending won't help.
            raise RequestError(409, str(error), error_kind(error))
        except DeltaError as error:
            raise RequestError(400, str(error), error_kind(error))
        except ReproError as error:
            raise RequestError(500, str(error), error_kind(error))
        self.metrics.incr("deltas_total")
        self.metrics.incr(
            "delta_refreshes_total" if outcome.refreshed else "delta_deferred_total"
        )
        return {
            "synopsis": synopsis,
            "generation": entry.generation,
            "refreshed": outcome.refreshed,
            "drift": outcome.drift,
            "elements_added": outcome.elements_added,
            "new_paths": outcome.new_paths,
            "stale": not outcome.refreshed,
            "elapsed_ms": outcome.elapsed_ms,
        }

    def _observe_failure(
        self, synopsis: Optional[str], started: float, queries: int
    ) -> None:
        self.metrics.observe(
            synopsis,
            time.perf_counter() - started,
            queries=max(1, queries),
            error=True,
        )

    # ------------------------------------------------------------------
    # Read-only endpoints
    # ------------------------------------------------------------------

    def synopses(self) -> Dict[str, Any]:
        return {"synopses": self.registry.describe()}

    def healthz(self) -> Dict[str, Any]:
        """Liveness plus degradation: a registry entry stuck on last-good
        state (corrupt/unreadable replacement snapshot) flips the status
        to ``"degraded"`` without taking the endpoint to non-200 — the
        server *is* serving, just not the newest synopsis.

        ``kernels`` maps each synopsis to its compiled-kernel readiness
        (``ready`` / ``pending`` / ``stale`` / ``disabled`` /
        ``unsupported``) *without* triggering a compile, so a load
        balancer can tell a warmed-up instance from one that would pay
        the build cost on its next estimate.  Under a worker pool the
        reply also carries per-worker ``{pid, generation, alive}`` from
        the shared arena — the remap generation each worker serves.
        """
        degraded = {}
        reload_failures = 0
        if hasattr(self.registry, "degraded"):
            degraded = self.registry.degraded()
        reload_failures = getattr(self.registry, "reload_failures", 0)
        body: Dict[str, Any] = {
            "status": "degraded" if degraded else "ok",
            "synopses": len(self.registry),
            "reload_failures": reload_failures,
            "kernels": self.kernel_states(),
        }
        if degraded:
            body["degraded"] = degraded
        # Brownout is degradation too: a load balancer reading /healthz
        # sees "degraded" plus which tiers are currently refused.
        if self.brownout is not None:
            snap = self.brownout.snapshot()
            body["brownout"] = snap
            if snap["level"] > 0:
                body["status"] = "degraded"
        if self.tiered:
            body["shed_tiers"] = sorted(self.gate.shed_tiers)
        if self.workers_liveness is not None:
            try:
                body["workers"] = self.workers_liveness()
            except Exception:  # pragma: no cover - defensive
                pass
        return body

    def kernel_states(self) -> Dict[str, str]:
        """Per-synopsis kernel readiness; never compiles anything (reads
        ``kernel_state`` which only peeks at the attached kernel)."""
        states: Dict[str, str] = {}
        names = getattr(self.registry, "names", lambda: [])()
        for name in names:
            try:
                entry = self.registry.get(name)
                state = getattr(entry.system, "kernel_state", lambda: "unknown")()
            except Exception:  # pragma: no cover - defensive
                state = "unknown"
            states[name] = state
        return states

    def metrics_document(self) -> Dict[str, Any]:
        document = self.metrics.snapshot(self.plan_cache.stats())
        reliability = dict(self.gate.stats())
        reliability["reload_failures"] = getattr(self.registry, "reload_failures", 0)
        reliability["pack_failures"] = getattr(self.registry, "pack_failures", 0)
        if self.brownout is not None:
            reliability["brownout"] = self.brownout.snapshot()
        document["reliability"] = reliability
        document["kernel"] = self.kernel_document()
        document["planner"] = self.planner_document()
        document["semcache"] = self.semcache_document()
        if self.workers_view is not None:
            try:
                document["workers"] = self.workers_view()
            except Exception:  # pragma: no cover - defensive
                pass
        return document

    def kernel_document(self) -> Dict[str, Any]:
        """Aggregate compiled-kernel counters across the registry.

        Defensive by design: a synopsis that fails to load (or a system
        without a kernel) contributes nothing rather than failing the
        whole ``/metrics`` response.
        """
        totals: Dict[str, Any] = {
            "synopses": 0,
            "active": 0,
            "joins": 0,
            "fallbacks": 0,
            "tag_tables": 0,
            "pairs": 0,
            "plans": 0,
            "memo_entries": 0,
            "build_ms": 0.0,
            "hits": self.metrics.counter("kernel_hits_total"),
            "misses": self.metrics.counter("kernel_misses_total"),
            "packed": 0,
            "pack_hits": 0,
            "pack_misses": 0,
        }
        names = getattr(self.registry, "names", lambda: [])()
        for name in names:
            try:
                system = self.registry.get(name).system
                kernel_of = getattr(system, "kernel", None)
                if kernel_of is None:
                    continue
                totals["synopses"] += 1
                kernel = kernel_of()
                if kernel is None:
                    continue
                stats = kernel.stats()
                if system.kernel_active():
                    totals["active"] += 1
                for key in (
                    "joins", "fallbacks", "tag_tables", "pairs",
                    "plans", "memo_entries",
                ):
                    totals[key] += stats[key]
                totals["build_ms"] += stats["build_ms"]
                if stats.get("packed"):
                    totals["packed"] += 1
                totals["pack_hits"] += stats.get("pack_hits", 0)
                totals["pack_misses"] += stats.get("pack_misses", 0)
            except Exception:  # pragma: no cover - defensive
                continue
        totals["build_ms"] = round(totals["build_ms"], 3)
        return totals

    def semcache_document(self) -> Dict[str, Any]:
        """Aggregate semantic-result-cache counters across the registry.

        Sums each served system's :class:`~repro.semcache.SemCacheStats`
        (``generation`` takes the maximum — it is a per-cache invalidation
        stamp, not a fleet total); same defensive posture as
        :meth:`kernel_document`.  ``served_hits``/``served_misses`` are
        the service-level counters (they include within-batch CSE hits,
        which never reach the per-system caches).
        """
        totals: Dict[str, Any] = {
            "synopses": 0,
            "capacity": 0,
            "size": 0,
            "generation": 0,
            "hits": 0,
            "misses": 0,
            "admissions": 0,
            "rejections": 0,
            "evictions": 0,
            "expirations": 0,
            "served_hits": self.metrics.counter("semcache_hits_total"),
            "served_misses": self.metrics.counter("semcache_misses_total"),
        }
        names = getattr(self.registry, "names", lambda: [])()
        for name in names:
            try:
                cache = getattr(self.registry.get(name).system, "semcache", None)
                if cache is None:
                    continue
                stats = cache.stats()
                totals["synopses"] += 1
                for key in (
                    "capacity", "size", "hits", "misses", "admissions",
                    "rejections", "evictions", "expirations",
                ):
                    totals[key] += getattr(stats, key)
                if stats.generation > totals["generation"]:
                    totals["generation"] = stats.generation
            except Exception:  # pragma: no cover - defensive
                continue
        lookups = totals["hits"] + totals["misses"]
        totals["hit_rate"] = totals["hits"] / lookups if lookups else 0.0
        return totals

    def planner_document(self) -> Dict[str, Any]:
        """Aggregate cost-based planner counters across the registry.

        Sums each system's :class:`~repro.plan.ir.PlannerStats` snapshot
        (``max_drift`` takes the maximum); same defensive posture as
        :meth:`kernel_document` — a synopsis that fails to load
        contributes nothing.
        """
        totals: Dict[str, Any] = {
            "plans": 0,
            "executions": 0,
            "naive_plans": 0,
            "reordered_plans": 0,
            "replans": 0,
            "replanned_executions": 0,
            "max_drift": 0.0,
            "explains": self.metrics.counter("explains_total"),
            "served_executions": self.metrics.counter("executions_total"),
        }
        names = getattr(self.registry, "names", lambda: [])()
        for name in names:
            try:
                stats = getattr(
                    self.registry.get(name).system, "planner_stats", None
                )
                if stats is None:
                    continue
                snap = stats.snapshot()
                for key in (
                    "plans", "executions", "naive_plans", "reordered_plans",
                    "replans", "replanned_executions",
                ):
                    totals[key] += snap[key]
                if snap["max_drift"] > totals["max_drift"]:
                    totals["max_drift"] = snap["max_drift"]
            except Exception:  # pragma: no cover - defensive
                continue
        return totals

    def metrics_prom(self) -> str:
        """Prometheus text exposition of the same registry, enriched with
        point-in-time gauges (plan cache, admission gate, registry)."""
        cache = self.plan_cache.stats()
        gate = self.gate.stats()
        kernel = self.kernel_document()
        planner = self.planner_document()
        semcache = self.semcache_document()
        extra = {
            "semcache_hits": semcache["hits"],
            "semcache_misses": semcache["misses"],
            "semcache_admissions": semcache["admissions"],
            "semcache_evictions": semcache["evictions"],
            "semcache_size": semcache["size"],
            "semcache_generation": semcache["generation"],
            "planner_plans_total": planner["plans"],
            "planner_executions_total": planner["executions"],
            "planner_replans_total": planner["replans"],
            "planner_reordered_plans_total": planner["reordered_plans"],
            "planner_max_drift": planner["max_drift"],
            "plan_cache_hits": cache.hits,
            "plan_cache_misses": cache.misses,
            "plan_cache_size": cache.size,
            "plan_cache_evictions": cache.evictions,
            "inflight_requests": gate["inflight"],
            "shed_requests_total": gate["shed_total"],
            "reload_failures_total": getattr(self.registry, "reload_failures", 0),
            "kernel_joins_total": kernel["joins"],
            "kernel_fallbacks_total": kernel["fallbacks"],
            "kernel_active_synopses": kernel["active"],
            "kernel_build_ms_total": kernel["build_ms"],
        }
        if self.brownout is not None:
            extra["brownout_level"] = self.brownout.level
        return self.metrics.render_prom(extra)

    def slowlog_document(self, limit: Optional[int] = None) -> Dict[str, Any]:
        return self.slow_log.snapshot(limit)


def _make_handler(
    service: EstimationService, read_deadline_s: Optional[float] = None
) -> type:
    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-estimation-service"
        protocol_version = "HTTP/1.1"
        # Sub-millisecond replies must not sit behind Nagle waiting for
        # the client's delayed ACK.
        disable_nagle_algorithm = True
        # Per-connection socket deadline (socketserver applies it via
        # settimeout): a slow-loris client stalling on the request line
        # is silently disconnected by handle_one_request's own
        # socket.timeout handling; stalls inside the body are mapped to
        # 408 in _read_json below.
        timeout = read_deadline_s

        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            pass  # request logging would swamp pytest output

        # -- plumbing --------------------------------------------------

        def _reply(
            self,
            status: int,
            body: Dict[str, Any],
            headers: Optional[Dict[str, str]] = None,
        ) -> None:
            data = json.dumps(body).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(data)

        def _reply_text(self, status: int, text: str, content_type: str) -> None:
            data = text.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def _read_json(self) -> Any:
            length = int(self.headers.get("Content-Length", 0) or 0)
            try:
                raw = self.rfile.read(length) if length else b""
            except socket.timeout:
                # The client trickled its body past the read deadline:
                # reply 408 and drop the connection (the unread bytes
                # make it unusable for keep-alive anyway).
                self.close_connection = True
                raise RequestError(
                    408,
                    "timed out reading request body (read deadline %gs)"
                    % (read_deadline_s or 0.0),
                    "read_timeout",
                )
            if not raw:
                raise RequestError(400, "empty request body")
            try:
                return json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise RequestError(400, "invalid JSON body: %s" % error)

        def _drain_body(self) -> None:
            """Consume the unread request body so a keep-alive client can
            reuse the connection (leftover bytes would be misparsed as
            the next request line)."""
            length = int(self.headers.get("Content-Length", 0) or 0)
            if not length:
                return
            try:
                self.rfile.read(length)
            except socket.timeout:
                self.close_connection = True

        # -- endpoints -------------------------------------------------

        def do_GET(self) -> None:
            try:
                parts = urlsplit(self.path)
                params = parse_qs(parts.query)
                if parts.path == "/healthz":
                    self._reply(200, service.healthz())
                elif parts.path == "/synopses":
                    self._reply(200, service.synopses())
                elif parts.path == "/metrics":
                    if params.get("format", [""])[0] == "prom":
                        self._reply_text(200, service.metrics_prom(), PROM_CONTENT_TYPE)
                    else:
                        self._reply(200, service.metrics_document())
                elif parts.path == "/debug/slowlog":
                    limit: Optional[int] = None
                    if "limit" in params:
                        try:
                            limit = int(params["limit"][0])
                        except ValueError:
                            raise RequestError(400, "'limit' must be an integer")
                    self._reply(200, service.slowlog_document(limit))
                else:
                    self._reply(
                        404, error_body("not_found", "no such endpoint %r" % self.path)
                    )
            except RequestError as error:
                self._reply(error.status, error_body(error.kind, str(error)))
            except Exception as error:  # pragma: no cover - defensive
                self._reply(500, error_body("internal", "internal error: %s" % error))

        def do_POST(self) -> None:
            try:
                if self.path == "/delta":
                    # Delta uploads mutate the registry, not the estimate
                    # path: they bypass the admission gate (registry's own
                    # lock serialises them) so an overloaded estimator can
                    # still be caught up.
                    self._reply(200, service.handle_delta(self._read_json()))
                    return
                if self.path != "/estimate":
                    self._reply(
                        404, error_body("not_found", "no such endpoint %r" % self.path)
                    )
                    return
                # Admission first: an overloaded (or draining) server
                # sheds with 503 + Retry-After instead of queueing the
                # request behind work it cannot finish in time.  With a
                # tiered gate, an X-Repro-Tier header selects the lane
                # before the body is read (a shed costs no parsing);
                # without one the body's "tier" field / request shape
                # decides, so the body is read first.
                payload: Any = None
                tier: Optional[str] = None
                header_tier = self.headers.get("X-Repro-Tier")
                if service.tiered and not header_tier:
                    payload = self._read_json()
                try:
                    tier = service.select_tier(payload, header=header_tier)
                except RequestError:
                    if payload is None:
                        self._drain_body()
                    raise
                try:
                    service.admit(tier)
                except OverloadedError as error:
                    if payload is None:
                        self._drain_body()
                    service.metrics.incr("shed_total")
                    if error.reason == "brownout":
                        service.metrics.incr("brownout_shed_total")
                    self._reply(
                        503,
                        error_body(
                            error.kind,
                            str(error),
                            tier=error.tier,
                            reason=error.reason,
                        ),
                        headers={"Retry-After": "%g" % error.retry_after_s},
                    )
                    return
                try:
                    if payload is None:
                        payload = self._read_json()
                    self._reply(200, service.handle_estimate(payload, tier=tier))
                finally:
                    service.release(tier)
            except RequestError as error:
                headers = (
                    {"Retry-After": "%g" % error.retry_after_s}
                    if error.retry_after_s is not None
                    else None
                )
                self._reply(
                    error.status, error_body(error.kind, str(error)), headers=headers
                )
            except Exception as error:  # pragma: no cover - defensive
                self._reply(500, error_body("internal", "internal error: %s" % error))

    return Handler


class ServiceServer:
    """A running (threaded) HTTP server around an :class:`EstimationService`.

    ``port=0`` binds an ephemeral port; read it back from ``.port``.
    Usable as a context manager::

        with ServiceServer(service, port=0) as server:
            client = EndpointClient(port=server.port)
            ...
    """

    def __init__(
        self,
        service: EstimationService,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        reuse_port: bool = False,
        read_deadline_s: Optional[float] = None,
    ):
        self.service = service
        # Bind deferred so SO_REUSEPORT can be set first: the pre-fork
        # worker pool binds N processes to the same (host, port) and the
        # kernel load-balances accepted connections across them.
        self.httpd = ThreadingHTTPServer(
            (host, port),
            _make_handler(service, read_deadline_s=read_deadline_s),
            bind_and_activate=False,
        )
        self.httpd.daemon_threads = True
        try:
            if reuse_port:
                self.httpd.socket.setsockopt(
                    socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
                )
            self.httpd.server_bind()
            self.httpd.server_activate()
        except BaseException:
            self.httpd.server_close()
            raise
        self.host, self.port = self.httpd.server_address[0], self.httpd.server_address[1]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        return "http://%s:%d" % (self.host, self.port)

    def start(self) -> "ServiceServer":
        """Serve in a background daemon thread (tests, benchmarks)."""
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-service", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI entry point)."""
        self.httpd.serve_forever()

    def close(self, drain_timeout_s: float = 5.0) -> None:
        """Graceful shutdown: stop admitting, drain in-flight estimates,
        then tear the listener down.

        New ``POST /estimate`` requests are shed (503) the moment the
        gate closes; requests already executing get up to
        ``drain_timeout_s`` to finish and write their responses.
        """
        self.service.gate.close()
        self.httpd.shutdown()
        self.service.gate.drain(drain_timeout_s)
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
