"""Compiled-plan LRU cache for the estimation service.

Estimating a query string from scratch means tokenizing + parsing it,
scanning its edges to pick a route, and — for scoped ``foll``/``pre``
axes — running the Example 5.3 rewrite (itself a full path join) before
any estimation happens.  All of that is a pure function of
``(synopsis generation, query text)``, as is the estimate itself, so a
hot query can skip straight to the memoized answer.

A :class:`CompiledPlan` therefore carries the parsed AST, the chosen
route (:data:`~repro.core.system.ROUTE_NO_ORDER` /
:data:`~repro.core.system.ROUTE_ORDER` /
:data:`~repro.core.system.ROUTE_SCOPED`), the precomputed rewrite
variants for scoped queries, and the lazily memoized estimate.
:class:`PlanCache` is a thread-safe LRU keyed by
``(synopsis name, generation, query text)`` — hot reloads and live
appends bump the generation, so stale plans simply age out.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.axis_rewrite import rewrite_scoped_order_query
from repro.core.system import ROUTE_NO_ORDER, ROUTE_SCOPED, EstimationSystem
from repro.semcache import canonical_key, options_fingerprint
from repro.xpath.ast import Query
from repro.xpath.parser import parse_query_cached

DEFAULT_CAPACITY = 512

# Service plans always run with default estimate options.
_DEFAULT_FINGERPRINT = options_fingerprint(True, True)


class CompiledPlan:
    """A query compiled against one synopsis generation."""

    __slots__ = ("text", "query", "route", "variants", "kernel", "result", "canonical")

    def __init__(
        self,
        text: str,
        query: Query,
        route: str,
        variants: Optional[List[Tuple[Query, str]]] = None,
        kernel: bool = False,
    ):
        self.text = text
        self.query = query
        self.route = route
        self.variants = variants
        # True when the plan was compiled against a live synopsis kernel
        # (its no-order joins were pre-planned on the bitset path).
        self.kernel = kernel
        # Lazily memoized estimate; estimation is deterministic for a
        # fixed synopsis generation, and the cache key pins the
        # generation, so the first computed value is the value.
        self.result: Optional[float] = None
        # Semantic-cache key, computed once at compile time (off the
        # hot path) so equivalent-but-differently-written texts share
        # one entry in the system's SemanticResultCache.
        self.canonical = canonical_key(query)

    def execute(self, system: EstimationSystem) -> float:
        value = self.result
        if value is None:
            if self.variants is not None:
                value = sum(
                    system._estimate_routed(query, route)
                    for query, route in self.variants
                )
            else:
                value = system._estimate_routed(self.query, self.route)
            self.result = value
        return value

    def execute_cached(self, system: EstimationSystem) -> Tuple[float, bool]:
        """Execute through every result memo; ``(value, result_hit)``.

        ``result_hit`` is True when the value came from a memo instead
        of a fresh execution: the plan's own per-generation float, or
        the system's semantic result cache (where equivalent texts —
        reordered branches, spelling variants — share one entry).  A
        miss executes and populates both layers.
        """
        value = self.result
        if value is not None:
            return value, True
        cache = system.semcache
        read_through = cache.enabled and system.kernel_enabled
        if read_through:
            hit, value = cache.get(self.canonical, _DEFAULT_FINGERPRINT)
            if hit:
                self.result = value
                return value, True
        value = self.execute(system)
        if read_through:
            cache.put(self.canonical, _DEFAULT_FINGERPRINT, value)
        return value, False

    def execute_traced(self, system: EstimationSystem, tracer) -> float:
        """Re-run the estimation under ``tracer``.

        The memoized ``result`` is deliberately bypassed: a traced
        request must observe the spans and counters of a *real*
        execution, and a cached float has none.  The fresh value (equal
        to the memoized one — estimation is deterministic per
        generation) re-primes ``result`` for untraced followers.
        """
        if self.variants is not None:
            value = sum(
                system._estimate_routed(query, route, tracer=tracer)
                for query, route in self.variants
            )
        else:
            value = system._estimate_routed(self.query, self.route, tracer=tracer)
        self.result = value
        return value


def compile_plan(system: EstimationSystem, text: str) -> CompiledPlan:
    """Parse, route and (for scoped axes) pre-rewrite one query text.

    When the synopsis carries a compiled kernel, the plan's no-order
    targets are pre-planned on the kernel (tag tables, containment pairs
    and the per-query bitset plan are built now, off the hot path), and
    the plan records that it was compiled against the kernel.
    """
    query = parse_query_cached(text)
    route = system.select_route(query)
    kernel = system.kernel()
    variants: Optional[List[Tuple[Query, str]]] = None
    if route == ROUTE_SCOPED:
        variants = [
            (variant, system.select_route(variant))
            for variant in rewrite_scoped_order_query(
                query, system.path_provider, system.encoding_table, kernel=kernel
            )
        ]
    kernel_ready = kernel is not None and kernel.supports(
        system.path_provider, system.encoding_table
    )
    if kernel_ready:
        targets = variants if variants is not None else [(query, route)]
        for target, target_route in targets:
            if target_route == ROUTE_NO_ORDER:
                kernel.query_plan(target)
    return CompiledPlan(text, query, route, variants, kernel=kernel_ready)


@dataclass(frozen=True)
class PlanCacheStats:
    """Point-in-time cache counters (monotonic except size)."""

    capacity: int
    size: int
    hits: int
    misses: int
    evictions: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "capacity": self.capacity,
            "size": self.size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class PlanCache:
    """Thread-safe LRU of compiled plans.

    ``capacity=0`` disables caching: every lookup compiles afresh (and
    counts as a miss), which is the control arm of the throughput
    benchmark.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = max(0, capacity)
        self._plans: "OrderedDict[Tuple[str, int, str], CompiledPlan]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def get_or_compile(
        self,
        name: str,
        generation: int,
        system: EstimationSystem,
        text: str,
    ) -> Tuple[CompiledPlan, bool]:
        """The cached plan for ``(name, generation, text)``; ``(plan,
        was_hit)``.  Compilation runs outside the lock — two racing
        threads may compile the same plan once each, the second insert
        wins and both results are identical."""
        key = (name, generation, text)
        if self.enabled:
            with self._lock:
                plan = self._plans.get(key)
                if plan is not None:
                    self._plans.move_to_end(key)
                    self._hits += 1
                    return plan, True
                self._misses += 1
        else:
            with self._lock:
                self._misses += 1
        plan = compile_plan(system, text)
        if self.enabled:
            with self._lock:
                self._plans[key] = plan
                self._plans.move_to_end(key)
                while len(self._plans) > self.capacity:
                    self._plans.popitem(last=False)
                    self._evictions += 1
        return plan, False

    def invalidate(self, name: Optional[str] = None) -> int:
        """Drop every plan (or every plan of one synopsis); returns the
        number removed."""
        with self._lock:
            if name is None:
                removed = len(self._plans)
                self._plans.clear()
                return removed
            stale = [key for key in self._plans if key[0] == name]
            for key in stale:
                del self._plans[key]
            return len(stale)

    def stats(self) -> PlanCacheStats:
        with self._lock:
            return PlanCacheStats(
                capacity=self.capacity,
                size=len(self._plans),
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)
