"""Synopsis registry: named estimation systems with hot reload.

A registry serves :class:`~repro.core.system.EstimationSystem` instances
under stable names.  Three kinds of entry coexist:

* **file-backed** — loaded from ``<snapshot_dir>/<name>.json`` via
  :func:`repro.persist.loads`; ``get`` re-reads the file and reloads it
  when its ``(mtime_ns, size, crc32)`` stamp changes — the content
  checksum catches same-mtime overwrites that a stat-only stamp misses —
  so a snapshot can be rewritten underneath a running server without a
  restart.  A truncated, corrupt (embedded-checksum mismatch) or
  malformed replacement never takes down the entry: the previous
  **last-good** system keeps serving, the entry reports itself degraded
  (``describe()``, ``/healthz``) and ``reload_failures`` counts the
  rejected swaps;
* **in-memory** — registered programmatically (tests, benchmarks);
* **live** — a :class:`LiveSynopsis` wrapping
  :class:`~repro.stats.maintenance.MaintainedStatistics`: appends patch
  the statistics in place and the served system is rebuilt from the
  maintained tables, again without a restart.

Every successful reload or append bumps the entry's ``generation``; the
plan cache keys on it, so stale compiled plans die with the generation.
"""

from __future__ import annotations

import os
import threading
import time
import zlib
from typing import Callable, Dict, List, Optional, Tuple

from repro import persist
from repro.core.system import EstimationSystem
from repro.errors import ReproError
from repro.persist import PersistError
from repro.reliability import faults
from repro.stats.maintenance import MaintainedStatistics
from repro.xmltree.document import XmlDocument
from repro.xmltree.node import XmlNode

SNAPSHOT_SUFFIX = ".json"


class UnknownSynopsisError(ReproError, KeyError):
    """Requested synopsis name is not registered (and no snapshot exists).

    Part of the :class:`~repro.errors.ReproError` hierarchy with the
    stable wire kind ``"unknown_synopsis"`` (still a ``KeyError`` for
    the pre-hierarchy call sites).
    """

    kind = "unknown_synopsis"


class LiveSynopsis:
    """A synopsis maintained in place under appends (no restart needed).

    Wraps :class:`MaintainedStatistics`; ``append_subtree`` patches the
    statistics tables incrementally and rebuilds the histogram-backed
    estimation system from them at the configured variance thresholds.
    """

    def __init__(
        self,
        document: XmlDocument,
        p_variance: float = 0.0,
        o_variance: float = 0.0,
    ):
        self.maintained = MaintainedStatistics(document)
        self.p_variance = p_variance
        self.o_variance = o_variance
        self.system = self._rebuild()

    def _rebuild(self) -> EstimationSystem:
        previous = getattr(self, "system", None)
        self.system = EstimationSystem.from_tables(
            self.maintained.labeled,
            self.maintained.pathid_table,
            self.maintained.order_table,
            p_variance=self.p_variance,
            o_variance=self.o_variance,
        )
        if previous is not None:
            # The replaced system's compiled kernel describes statistics
            # that no longer serve; captured references must fall back.
            previous.invalidate_kernel()
        return self.system

    def append_subtree(self, parent: XmlNode, subtree: XmlNode) -> EstimationSystem:
        """Append and refresh the served system (RequiresRebuild passes
        through untouched — the caller decides whether to rebuild)."""
        self.maintained.append_subtree(parent, subtree)
        return self._rebuild()


class SynopsisEntry:
    """One registered synopsis and its serving state."""

    __slots__ = (
        "name",
        "system",
        "generation",
        "path",
        "stamp",
        "live",
        "load_error",
        "last_check",
    )

    def __init__(
        self,
        name: str,
        system: EstimationSystem,
        path: Optional[str] = None,
        stamp: Optional[tuple] = None,
        live: Optional[LiveSynopsis] = None,
    ):
        self.name = name
        self.system = system
        self.generation = 1
        self.path = path
        # (mtime_ns, size, crc32) of the loaded snapshot file's content.
        self.stamp = stamp
        self.live = live
        self.load_error: Optional[str] = None
        self.last_check = float("-inf")

    @property
    def source(self) -> str:
        if self.live is not None:
            return "live"
        return self.path if self.path is not None else "memory"

    @property
    def degraded(self) -> bool:
        """Serving last-good state because the newest snapshot is bad."""
        return self.load_error is not None

    def describe(self) -> Dict[str, object]:
        table = self.system.encoding_table
        info: Dict[str, object] = {
            "name": self.name,
            "generation": self.generation,
            "source": self.source,
            "paths": len(table.all_paths()),
            "pathid_bits": table.width,
            "tags": len(self.system.path_provider.tags()),
        }
        if self.load_error is not None:
            info["load_error"] = self.load_error
            info["degraded"] = True
        return info


def _read_snapshot(path: str) -> Tuple[str, tuple]:
    """One read of the snapshot file: its text and its content stamp.

    The stamp is ``(mtime_ns, size, crc32)``; including the content
    checksum catches editors and build pipelines that rewrite a file
    without advancing its mtime (coarse filesystem clocks, ``mtime``
    restoring copies), which a stat-only stamp would miss.
    """
    faults.fire("registry.load", path)
    status = os.stat(path)
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return text, (status.st_mtime_ns, status.st_size, zlib.crc32(text.encode("utf-8")))


class SynopsisRegistry:
    """Thread-safe name → synopsis map with mtime-based hot reload.

    ``check_interval`` throttles the per-``get`` ``os.stat`` (0 = stat on
    every request; a busy server may prefer ~1s).  All mutation happens
    under one reentrant lock; estimation itself runs outside it.
    """

    def __init__(
        self,
        snapshot_dir: Optional[str] = None,
        check_interval: float = 0.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.snapshot_dir = snapshot_dir
        self.check_interval = check_interval
        self._clock = clock
        self._entries: Dict[str, SynopsisEntry] = {}
        self._lock = threading.RLock()
        self.scan_errors: Dict[str, str] = {}
        #: Rejected hot-reload swaps (bad replacement kept out, last-good
        #: still serving).  Exposed via the service's /healthz + /metrics.
        self.reload_failures = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(self, name: str, system: EstimationSystem) -> SynopsisEntry:
        """Register an in-memory system (tests, benchmarks, embedding)."""
        with self._lock:
            entry = SynopsisEntry(name, system)
            self._entries[name] = entry
            return entry

    def register_source(
        self,
        name: str,
        source,
        p_variance: float = 0.0,
        o_variance: float = 0.0,
        workers: int = 1,
    ) -> SynopsisEntry:
        """Build a synopsis from raw XML (text, path, or document) and
        register it — the streaming builder, so the tree is never held.

        ``workers > 1`` shards the scan across a process pool; the served
        system is bit-identical regardless of worker count.
        """
        from repro.build.builder import build_synopsis

        system = build_synopsis(
            source,
            p_variance=p_variance,
            o_variance=o_variance,
            workers=workers,
            name=name,
        )
        return self.register(name, system)

    def register_live(
        self,
        name: str,
        document: XmlDocument,
        p_variance: float = 0.0,
        o_variance: float = 0.0,
    ) -> SynopsisEntry:
        """Register a live synopsis maintained under appends."""
        live = LiveSynopsis(document, p_variance, o_variance)
        with self._lock:
            entry = SynopsisEntry(name, live.system, live=live)
            self._entries[name] = entry
            return entry

    def append(self, name: str, parent: XmlNode, subtree: XmlNode) -> SynopsisEntry:
        """Append to a live synopsis; the next ``get`` serves the update."""
        with self._lock:
            entry = self._require(name)
            if entry.live is None:
                raise ValueError(
                    "synopsis %r is not live (register_live to maintain appends)" % name
                )
            entry.system = entry.live.append_subtree(parent, subtree)
            entry.generation += 1
            return entry

    def scan(self) -> List[str]:
        """Load (or refresh) every ``*.json`` snapshot in the directory.

        An unloadable file must not take down the daemon (nor block the
        other synopses): it is skipped and recorded in ``scan_errors``.
        """
        if self.snapshot_dir is None:
            return []
        names = []
        with self._lock:
            self.scan_errors = {}
            for filename in sorted(os.listdir(self.snapshot_dir)):
                if not filename.endswith(SNAPSHOT_SUFFIX):
                    continue
                name = filename[: -len(SNAPSHOT_SUFFIX)]
                try:
                    self._load_or_refresh(
                        name, os.path.join(self.snapshot_dir, filename)
                    )
                except (PersistError, OSError) as error:
                    self.scan_errors[name] = str(error)
                    continue
                names.append(name)
        return names

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, name: str) -> SynopsisEntry:
        """The entry for ``name``, hot-reloaded if its snapshot changed."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                entry = self._load_unregistered(name)
            elif entry.path is not None:
                self._maybe_reload(entry)
            return entry

    def system(self, name: str) -> EstimationSystem:
        return self.get(name).system

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def describe(self) -> List[Dict[str, object]]:
        with self._lock:
            return [self._entries[name].describe() for name in sorted(self._entries)]

    def degraded(self) -> Dict[str, str]:
        """Entries serving last-good state, with the reason (name → error)."""
        with self._lock:
            return {
                name: entry.load_error
                for name, entry in sorted(self._entries.items())
                if entry.load_error is not None
            }

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _require(self, name: str) -> SynopsisEntry:
        entry = self._entries.get(name)
        if entry is None:
            raise UnknownSynopsisError(name)
        return entry

    def _snapshot_path(self, name: str) -> Optional[str]:
        if self.snapshot_dir is None:
            return None
        return os.path.join(self.snapshot_dir, name + SNAPSHOT_SUFFIX)

    def _load_unregistered(self, name: str) -> SynopsisEntry:
        """A name we have not seen: pick up a snapshot that appeared after
        the initial scan, otherwise fail."""
        path = self._snapshot_path(name)
        if path is None or not os.path.exists(path):
            raise UnknownSynopsisError(name)
        try:
            return self._load_or_refresh(name, path)
        except (PersistError, OSError) as error:
            # A file with the right name but an unreadable payload is not
            # a servable synopsis; 404 rather than an internal error.
            raise UnknownSynopsisError("%s (unloadable: %s)" % (name, error))

    def _load_or_refresh(self, name: str, path: str) -> SynopsisEntry:
        entry = self._entries.get(name)
        if entry is None:
            text, stamp = _read_snapshot(path)
            system = persist.loads(text)
            entry = SynopsisEntry(name, system, path=path, stamp=stamp)
            entry.last_check = self._clock()
            self._entries[name] = entry
            return entry
        self._maybe_reload(entry, force=True)
        return entry

    def _maybe_reload(self, entry: SynopsisEntry, force: bool = False) -> None:
        now = self._clock()
        if not force and now - entry.last_check < self.check_interval:
            return
        entry.last_check = now
        try:
            text, stamp = _read_snapshot(entry.path)  # type: ignore[arg-type]
        except OSError as error:
            # Snapshot deleted or unreadable mid-flight: keep serving the
            # last-good system, degraded.
            if entry.load_error is None:
                self.reload_failures += 1
            entry.load_error = "snapshot unreadable: %s" % error
            return
        if stamp == entry.stamp:
            # Disk matches what we serve; a transient read failure (if
            # any) is over, so the entry is healthy again.
            entry.load_error = None
            return
        try:
            system = persist.loads(text)
        except PersistError as error:
            # Truncated, corrupt (checksum mismatch) or malformed
            # replacement: keep the last-good system and surface the
            # failure instead of flapping.  The stamp is *not* advanced,
            # so a fixed snapshot is picked up on the next check.
            if entry.load_error is None:
                self.reload_failures += 1
            entry.load_error = "reload failed: %s" % error
            return
        previous = entry.system
        entry.system = system
        entry.stamp = stamp
        entry.generation += 1
        entry.load_error = None
        # Stale-kernel guard: the swapped-out system's compiled kernel
        # must not serve the old synopsis to captured references.  The
        # last-good fallback paths above never reach here, so a degraded
        # entry keeps both its system and its warm kernel.
        previous.invalidate_kernel()
