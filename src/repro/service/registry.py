"""Synopsis registry: named estimation systems with hot reload.

A registry serves :class:`~repro.core.system.EstimationSystem` instances
under stable names.  Three kinds of entry coexist:

* **file-backed** — loaded from ``<snapshot_dir>/<name>.json`` via
  :func:`repro.persist.loads`; ``get`` re-reads the file and reloads it
  when its ``(mtime_ns, size, crc32)`` stamp changes — the content
  checksum catches same-mtime overwrites that a stat-only stamp misses —
  so a snapshot can be rewritten underneath a running server without a
  restart.  A truncated, corrupt (embedded-checksum mismatch) or
  malformed replacement never takes down the entry: the previous
  **last-good** system keeps serving, the entry reports itself degraded
  (``describe()``, ``/healthz``) and ``reload_failures`` counts the
  rejected swaps.  When a staged ``<name>.kernelpack`` sits beside the
  JSON at least as new as it, the entry loads *that* instead: the system
  comes from the pack's embedded synopsis and the compiled kernel is
  reconstructed zero-copy from the mapping — no in-process compile, and
  N worker processes mapping the same pack share one physical copy.  A
  corrupt or truncated pack (checksum) falls back to the JSON snapshot
  and lazy compilation (``pack_failures`` counts those).  A
  ``<name>.kernelpack`` with no JSON beside it serves alone, since the
  pack embeds the full synopsis;
* **in-memory** — registered programmatically (tests, benchmarks);
* **live** — a :class:`LiveSynopsis` wrapping
  :class:`~repro.stats.maintenance.MaintainedStatistics`: appends patch
  the statistics in place and the served system is rebuilt from the
  maintained tables, again without a restart.

Every successful reload or append bumps the entry's ``generation``; the
plan cache keys on it, so stale compiled plans die with the generation.
"""

from __future__ import annotations

import os
import threading
import time
import zlib
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from repro import persist
from repro.core.system import EstimationSystem
# The *base* PersistError: it covers both repro.persist load failures
# and repro.shm.kernelpack.KernelPackError, so every degraded path here
# catches rejected packs too.
from repro.errors import PersistError, ReproError
from repro.reliability import faults
from repro.stats.maintenance import MaintainedStatistics
from repro.shm.kernelpack import PACK_SUFFIX, load_pack, pack_stamp
from repro.xmltree.document import XmlDocument
from repro.xmltree.node import XmlNode

SNAPSHOT_SUFFIX = ".json"


class UnknownSynopsisError(ReproError, KeyError):
    """Requested synopsis name is not registered (and no snapshot exists).

    Part of the :class:`~repro.errors.ReproError` hierarchy with the
    stable wire kind ``"unknown_synopsis"`` (still a ``KeyError`` for
    the pre-hierarchy call sites).
    """

    kind = "unknown_synopsis"


class LiveSynopsis:
    """A synopsis maintained in place under appends (no restart needed).

    Wraps :class:`MaintainedStatistics`; ``append_subtree`` patches the
    statistics tables incrementally and rebuilds the histogram-backed
    estimation system from them at the configured variance thresholds.
    """

    def __init__(
        self,
        document: XmlDocument,
        p_variance: float = 0.0,
        o_variance: float = 0.0,
    ):
        self.maintained = MaintainedStatistics(document)
        self.p_variance = p_variance
        self.o_variance = o_variance
        self.system = self._rebuild()

    def _rebuild(self) -> EstimationSystem:
        previous = getattr(self, "system", None)
        self.system = EstimationSystem.from_tables(
            self.maintained.labeled,
            self.maintained.pathid_table,
            self.maintained.order_table,
            p_variance=self.p_variance,
            o_variance=self.o_variance,
        )
        if previous is not None:
            # The replaced system's compiled kernel describes statistics
            # that no longer serve; captured references must fall back.
            previous.invalidate_kernel()
        return self.system

    def append_subtree(self, parent: XmlNode, subtree: XmlNode) -> EstimationSystem:
        """Append and refresh the served system (RequiresRebuild passes
        through untouched — the caller decides whether to rebuild)."""
        self.maintained.append_subtree(parent, subtree)
        return self._rebuild()


class SynopsisEntry:
    """One registered synopsis and its serving state."""

    __slots__ = (
        "name",
        "system",
        "generation",
        "path",
        "stamp",
        "live",
        "load_error",
        "last_check",
        "pack_stamp",
        "packed",
    )

    def __init__(
        self,
        name: str,
        system: EstimationSystem,
        path: Optional[str] = None,
        stamp: Optional[tuple] = None,
        live: Optional[LiveSynopsis] = None,
    ):
        self.name = name
        self.system = system
        self.generation = 1
        self.path = path
        # (mtime_ns, size, crc32) of the loaded snapshot file's content.
        self.stamp = stamp
        self.live = live
        self.load_error: Optional[str] = None
        self.last_check = float("-inf")
        # Kernelpack serving state: the stamp of the usable pack beside
        # the snapshot at load time (None when there was none), and
        # whether the served system actually came from it.  The stamp is
        # recorded even when the pack was rejected, so a corrupt pack is
        # retried once, not on every freshness check.
        self.pack_stamp: Optional[tuple] = None
        self.packed = False

    @property
    def source(self) -> str:
        if self.live is not None:
            return "live"
        return self.path if self.path is not None else "memory"

    @property
    def degraded(self) -> bool:
        """Serving last-good state because the newest snapshot is bad."""
        return self.load_error is not None

    def pinned(self) -> "PinnedEntry":
        """An immutable ``(name, generation, system)`` snapshot.

        The registry hot-swaps ``system``/``generation`` **in place** on
        this shared entry object when a reload or delta lands, so a
        request that must serve one consistent synopsis version end to
        end (a batch, most importantly) pins this value instead of the
        entry itself.  The retry loop re-pairs generation with system if
        a swap raced the two attribute reads; capturing ``system`` once
        is what guarantees every query in the request computes against
        the same version.
        """
        for _ in range(3):
            generation = self.generation
            system = self.system
            if self.generation == generation:
                break
        return PinnedEntry(self.name, generation, system)

    def describe(self) -> Dict[str, object]:
        table = self.system.encoding_table
        info: Dict[str, object] = {
            "name": self.name,
            "generation": self.generation,
            "source": self.source,
            "paths": len(table.all_paths()),
            "pathid_bits": table.width,
            "tags": len(self.system.path_provider.tags()),
            "packed": self.packed,
            "kernel": getattr(self.system, "kernel_state", lambda: "unknown")(),
        }
        if self.load_error is not None:
            info["load_error"] = self.load_error
            info["degraded"] = True
        return info


class PinnedEntry(NamedTuple):
    """One consistent synopsis version, pinned for a request's lifetime.

    Quacks like :class:`SynopsisEntry` for the read side (``name`` /
    ``generation`` / ``system``) but cannot change underneath the
    request: a hot reload landing mid-batch waits for the next request
    rather than splitting this one across two synopsis versions.
    """

    name: str
    generation: int
    system: EstimationSystem

    def pinned(self) -> "PinnedEntry":
        return self


def _read_snapshot(path: str) -> Tuple[str, tuple]:
    """One read of the snapshot file: its text and its content stamp.

    The stamp is ``(mtime_ns, size, crc32)``; including the content
    checksum catches editors and build pipelines that rewrite a file
    without advancing its mtime (coarse filesystem clocks, ``mtime``
    restoring copies), which a stat-only stamp would miss.
    """
    faults.fire("registry.load", path)
    status = os.stat(path)
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return text, (status.st_mtime_ns, status.st_size, zlib.crc32(text.encode("utf-8")))


class SynopsisRegistry:
    """Thread-safe name → synopsis map with mtime-based hot reload.

    ``check_interval`` throttles the per-``get`` ``os.stat`` (0 = stat on
    every request; a busy server may prefer ~1s).  All mutation happens
    under one reentrant lock; estimation itself runs outside it.
    """

    def __init__(
        self,
        snapshot_dir: Optional[str] = None,
        check_interval: float = 0.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.snapshot_dir = snapshot_dir
        self.check_interval = check_interval
        self._clock = clock
        self._entries: Dict[str, SynopsisEntry] = {}
        self._lock = threading.RLock()
        self.scan_errors: Dict[str, str] = {}
        #: Rejected hot-reload swaps (bad replacement kept out, last-good
        #: still serving).  Exposed via the service's /healthz + /metrics.
        self.reload_failures = 0
        #: Corrupt/truncated kernelpacks that were rejected (checksum,
        #: bad header) with the entry falling back to its JSON snapshot
        #: and in-process compilation.
        self.pack_failures = 0
        #: Called (name, entry) after every successful hot-reload swap —
        #: worker processes hook this to publish their remap progress.
        self.on_reload: Optional[Callable[[str, SynopsisEntry], None]] = None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(self, name: str, system: EstimationSystem) -> SynopsisEntry:
        """Register an in-memory system (tests, benchmarks, embedding).

        Re-registering an existing name continues its generation counter
        (never resets it): compiled plans are cached per (name,
        generation), so a reset would let plans compiled against the
        *previous* registration — pre-append rewrite variants, a stale
        kernel priming flag — serve the new system.
        """
        with self._lock:
            entry = SynopsisEntry(name, system)
            previous = self._entries.get(name)
            if previous is not None:
                entry.generation = previous.generation + 1
                previous.system.invalidate_kernel()
            self._entries[name] = entry
            return entry

    def register_source(
        self,
        name: str,
        source,
        p_variance: float = 0.0,
        o_variance: float = 0.0,
        workers: int = 1,
    ) -> SynopsisEntry:
        """Build a synopsis from raw XML (text, path, or document) and
        register it — the streaming builder, so the tree is never held.

        ``workers > 1`` shards the scan across a process pool; the served
        system is bit-identical regardless of worker count.
        """
        from repro.build.builder import build_synopsis

        system = build_synopsis(
            source,
            p_variance=p_variance,
            o_variance=o_variance,
            workers=workers,
            name=name,
        )
        return self.register(name, system)

    def register_incremental(
        self,
        name: str,
        source,
        p_variance: float = 0.0,
        o_variance: float = 0.0,
        workers: int = 1,
        drift_threshold: float = 0.0,
    ) -> SynopsisEntry:
        """Build a *delta-capable* synopsis from raw XML and register it.

        The served system carries its :class:`IncrementalSynopsis`
        maintainer, so :meth:`apply_delta` merges appended-subtree deltas
        without a rebuild; persisting the entry (``persist.save``) embeds
        the maintainer state, keeping the capability across restarts.
        """
        from repro.cluster.delta import IncrementalSynopsis

        maintainer = IncrementalSynopsis.build(
            source,
            p_variance=p_variance,
            o_variance=o_variance,
            workers=workers,
            drift_threshold=drift_threshold,
            name=name,
        )
        return self.register(name, maintainer.system)

    def apply_delta(
        self,
        name: str,
        partial,
        *,
        force_refresh: bool = False,
        write_back: bool = True,
    ):
        """Merge a delta partial into a registered synopsis.

        Returns ``(entry, outcome)``.  When the maintainer refreshed, the
        entry swaps to the new system under the registry lock: the
        generation bumps (compiled plans for the old system die with it),
        the replaced system's kernel is invalidated, any staged
        kernelpack stops being preferred (``packed`` drops; the JSON
        write-back below outdates the pack on disk), and the
        ``on_reload`` hook fires so pre-fork workers republish.

        ``write_back`` (file-backed entries only) persists the merged
        state to the entry's snapshot path atomically and re-stamps the
        entry, so the delta survives a restart — and, under the pre-fork
        pool, the *other* workers pick the post-delta snapshot up through
        their ordinary hot-reload check instead of needing the delta
        re-sent.  Raises
        :class:`~repro.cluster.delta.DeltaUnsupportedError` for entries
        without incremental state (plain snapshots, packs, live trees).
        """
        from repro.cluster.delta import DeltaUnsupportedError

        with self._lock:
            entry = self._require(name)
            maintainer = getattr(entry.system, "incremental", None)
            if maintainer is None:
                raise DeltaUnsupportedError(
                    "synopsis %r was not loaded with incremental state; "
                    "rebuild its snapshot with --incremental (or register "
                    "via register_incremental) to apply deltas" % name
                )
            outcome = maintainer.apply(partial, force_refresh=force_refresh)
            if outcome.refreshed:
                previous = entry.system
                entry.system = outcome.system
                entry.generation += 1
                entry.packed = False
                entry.load_error = None
                previous.invalidate_kernel()
                if (
                    write_back
                    and entry.path is not None
                    and entry.path.endswith(SNAPSHOT_SUFFIX)
                ):
                    persist.save(outcome.system, entry.path)
                    _, entry.stamp = _read_snapshot(entry.path)
                    # The freshly written JSON is now newer than any
                    # staged pack, so the pack probe will (correctly)
                    # decline it until a new pack is staged.
                    _, entry.pack_stamp = self._probe_pack(entry.path)
                if self.on_reload is not None:
                    try:
                        self.on_reload(entry.name, entry)
                    except Exception:  # pragma: no cover - observer must not break serving
                        pass
            return entry, outcome

    def register_live(
        self,
        name: str,
        document: XmlDocument,
        p_variance: float = 0.0,
        o_variance: float = 0.0,
    ) -> SynopsisEntry:
        """Register a live synopsis maintained under appends."""
        live = LiveSynopsis(document, p_variance, o_variance)
        with self._lock:
            entry = SynopsisEntry(name, live.system, live=live)
            self._entries[name] = entry
            return entry

    def append(self, name: str, parent: XmlNode, subtree: XmlNode) -> SynopsisEntry:
        """Append to a live synopsis; the next ``get`` serves the update."""
        with self._lock:
            entry = self._require(name)
            if entry.live is None:
                raise ValueError(
                    "synopsis %r is not live (register_live to maintain appends)" % name
                )
            entry.system = entry.live.append_subtree(parent, subtree)
            entry.generation += 1
            return entry

    def scan(self) -> List[str]:
        """Load (or refresh) every ``*.json`` snapshot in the directory.

        An unloadable file must not take down the daemon (nor block the
        other synopses): it is skipped and recorded in ``scan_errors``.
        """
        if self.snapshot_dir is None:
            return []
        names = []
        with self._lock:
            self.scan_errors = {}
            listing = sorted(os.listdir(self.snapshot_dir))
            json_names = {
                filename[: -len(SNAPSHOT_SUFFIX)]
                for filename in listing
                if filename.endswith(SNAPSHOT_SUFFIX)
            }
            for filename in listing:
                if filename.endswith(SNAPSHOT_SUFFIX):
                    name = filename[: -len(SNAPSHOT_SUFFIX)]
                elif filename.endswith(PACK_SUFFIX):
                    # A pack with a JSON twin loads through the twin's
                    # entry; a pack alone serves from its embedded
                    # synopsis.
                    name = filename[: -len(PACK_SUFFIX)]
                    if name in json_names:
                        continue
                else:
                    continue
                try:
                    self._load_or_refresh(
                        name, os.path.join(self.snapshot_dir, filename)
                    )
                except (PersistError, OSError) as error:
                    self.scan_errors[name] = str(error)
                    continue
                names.append(name)
        return names

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, name: str) -> SynopsisEntry:
        """The entry for ``name``, hot-reloaded if its snapshot changed."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                entry = self._load_unregistered(name)
            elif entry.path is not None:
                self._maybe_reload(entry)
            return entry

    def system(self, name: str) -> EstimationSystem:
        return self.get(name).system

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def describe(self) -> List[Dict[str, object]]:
        with self._lock:
            return [self._entries[name].describe() for name in sorted(self._entries)]

    def degraded(self) -> Dict[str, str]:
        """Entries serving last-good state, with the reason (name → error)."""
        with self._lock:
            return {
                name: entry.load_error
                for name, entry in sorted(self._entries.items())
                if entry.load_error is not None
            }

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _require(self, name: str) -> SynopsisEntry:
        entry = self._entries.get(name)
        if entry is None:
            raise UnknownSynopsisError(name)
        return entry

    def _snapshot_path(self, name: str) -> Optional[str]:
        if self.snapshot_dir is None:
            return None
        json_path = os.path.join(self.snapshot_dir, name + SNAPSHOT_SUFFIX)
        if os.path.exists(json_path):
            return json_path
        pack_path = os.path.join(self.snapshot_dir, name + PACK_SUFFIX)
        if os.path.exists(pack_path):
            return pack_path
        return json_path

    def _load_unregistered(self, name: str) -> SynopsisEntry:
        """A name we have not seen: pick up a snapshot that appeared after
        the initial scan, otherwise fail."""
        path = self._snapshot_path(name)
        if path is None or not os.path.exists(path):
            raise UnknownSynopsisError(name)
        try:
            return self._load_or_refresh(name, path)
        except (PersistError, OSError) as error:
            # A file with the right name but an unreadable payload is not
            # a servable synopsis; 404 rather than an internal error.
            raise UnknownSynopsisError("%s (unloadable: %s)" % (name, error))

    def _load_or_refresh(self, name: str, path: str) -> SynopsisEntry:
        entry = self._entries.get(name)
        if entry is not None and entry.path is None:
            # Staleness-race guard: an in-memory or live registration
            # (register / register_source / register_live, possibly
            # already appended to) is authoritative over a same-named
            # snapshot or kernelpack sitting in the directory.  Without
            # this, a scan() racing a live append would clobber the
            # appended system with the older file — resurrecting a
            # pre-append kernel — and a pack-only twin would crash the
            # scan outright (stat(None)).  The check runs under the
            # registry lock, atomically with the pack-preference probe
            # below, so the decision cannot interleave with a swap.
            return entry
        if entry is None:
            if path.endswith(PACK_SUFFIX):
                # Pack-only entry: the embedded synopsis serves alone.
                faults.fire("registry.load", path)
                stamp = pack_stamp(path)
                loaded = load_pack(path)
                entry = SynopsisEntry(name, loaded.system, path=path, stamp=stamp)
                entry.pack_stamp = stamp
                entry.packed = True
            else:
                text, stamp = _read_snapshot(path)
                system, pstamp, packed = self._load_preferring_pack(path, text)
                entry = SynopsisEntry(name, system, path=path, stamp=stamp)
                entry.pack_stamp = pstamp
                entry.packed = packed
            entry.last_check = self._clock()
            self._entries[name] = entry
            return entry
        self._maybe_reload(entry, force=True)
        return entry

    def _probe_pack(self, json_path: str) -> Tuple[str, Optional[tuple]]:
        """The pack sitting beside a JSON snapshot, if it should be used.

        Returns ``(pack_path, stamp)`` with ``stamp`` None when there is
        no usable pack (absent, or older than the JSON — a stale pack
        must not shadow a newer snapshot).  A pack whose header cannot
        even be read yields a surrogate stamp from its stat, so the same
        corrupt bytes are rejected once rather than re-tried on every
        freshness check.
        """
        pack_path = json_path[: -len(SNAPSHOT_SUFFIX)] + PACK_SUFFIX
        try:
            pack_stat = os.stat(pack_path)
        except OSError:
            return pack_path, None
        try:
            if pack_stat.st_mtime_ns < os.stat(json_path).st_mtime_ns:
                return pack_path, None
        except OSError:
            pass  # JSON vanished; the pack is all there is
        try:
            return pack_path, pack_stamp(pack_path)
        except (PersistError, OSError):
            return pack_path, (
                "unreadable", pack_stat.st_mtime_ns, pack_stat.st_size,
            )

    def _load_preferring_pack(
        self, json_path: str, text: str
    ) -> Tuple[EstimationSystem, Optional[tuple], bool]:
        """Load a system for a JSON-backed entry, preferring its staged
        pack; returns ``(system, pack_stamp, packed)``.

        A rejected pack (corrupt, truncated, version mismatch) falls back
        to the JSON text and lazy in-process kernel compilation — the
        pack is an accelerator, never a point of failure.
        """
        pack_path, probe = self._probe_pack(json_path)
        if probe is not None:
            try:
                loaded = load_pack(pack_path)
                return loaded.system, probe, True
            except (PersistError, OSError):
                self.pack_failures += 1
        return persist.loads(text), probe, False

    def _maybe_reload(self, entry: SynopsisEntry, force: bool = False) -> None:
        now = self._clock()
        if not force and now - entry.last_check < self.check_interval:
            return
        entry.last_check = now
        if entry.path is not None and entry.path.endswith(PACK_SUFFIX):
            self._maybe_reload_pack_only(entry)
            return
        try:
            text, stamp = _read_snapshot(entry.path)  # type: ignore[arg-type]
        except OSError as error:
            # Snapshot deleted or unreadable mid-flight: keep serving the
            # last-good system, degraded.
            if entry.load_error is None:
                self.reload_failures += 1
            entry.load_error = "snapshot unreadable: %s" % error
            return
        _, probe = self._probe_pack(entry.path)  # type: ignore[arg-type]
        if stamp == entry.stamp and probe == entry.pack_stamp:
            # Disk matches what we serve; a transient read failure (if
            # any) is over, so the entry is healthy again.
            entry.load_error = None
            return
        try:
            system, pstamp, packed = self._load_preferring_pack(entry.path, text)
        except PersistError as error:
            # Truncated, corrupt (checksum mismatch) or malformed
            # replacement: keep the last-good system and surface the
            # failure instead of flapping.  The JSON stamp is *not*
            # advanced, so a fixed snapshot is picked up on the next
            # check; the pack stamp *is*, so the same corrupt pack bytes
            # are not re-parsed every check (a fixed pack stamps anew).
            if entry.load_error is None:
                self.reload_failures += 1
            entry.load_error = "reload failed: %s" % error
            entry.pack_stamp = probe
            return
        self._swap(entry, system, stamp, pstamp, packed)

    def _maybe_reload_pack_only(self, entry: SynopsisEntry) -> None:
        """Freshness check for an entry served from a pack with no JSON
        twin: the stamp is the pack's own (read from its 24-byte header,
        no full-file hash)."""
        try:
            faults.fire("registry.load", entry.path)
            stamp = pack_stamp(entry.path)  # type: ignore[arg-type]
        except (PersistError, OSError) as error:
            if entry.load_error is None:
                self.reload_failures += 1
            entry.load_error = "snapshot unreadable: %s" % error
            return
        if stamp == entry.stamp:
            entry.load_error = None
            return
        try:
            loaded = load_pack(entry.path)  # type: ignore[arg-type]
        except (PersistError, OSError) as error:
            self.pack_failures += 1
            if entry.load_error is None:
                self.reload_failures += 1
            entry.load_error = "reload failed: %s" % error
            return
        self._swap(entry, loaded.system, stamp, stamp, True)

    def _swap(
        self,
        entry: SynopsisEntry,
        system: EstimationSystem,
        stamp: tuple,
        pstamp: Optional[tuple],
        packed: bool,
    ) -> None:
        previous = entry.system
        entry.system = system
        entry.stamp = stamp
        entry.pack_stamp = pstamp
        entry.packed = packed
        entry.generation += 1
        entry.load_error = None
        # Stale-kernel guard: the swapped-out system's compiled kernel
        # must not serve the old synopsis to captured references.  The
        # last-good fallback paths above never reach here, so a degraded
        # entry keeps both its system and its warm kernel.
        previous.invalidate_kernel()
        if self.on_reload is not None:
            try:
                self.on_reload(entry.name, entry)
            except Exception:  # pragma: no cover - observer must not break serving
                pass
