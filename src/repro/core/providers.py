"""Statistics provider protocol and exact (lossless) providers.

The estimator consumes statistics through two small protocols so the same
code runs on exact tables and on histograms:

* **path statistics provider**: ``frequency_pairs(tag) ->
  List[(pathid, freq)]`` and ``frequency_map(tag) -> Dict[pathid, freq]``
  — implemented by :class:`ExactPathStats` and
  :class:`~repro.histograms.phistogram.PHistogramSet`.
* **order statistics provider**: ``order_count(tag, pid, other_tag,
  before) -> float`` — implemented by :class:`ExactOrderStats` and
  :class:`~repro.histograms.ohistogram.OHistogramSet`.
"""

from __future__ import annotations

from typing import Dict, List, Protocol, Tuple

from repro.stats.path_order import PathOrderTable
from repro.stats.pathid_freq import PathIdFrequencyTable


class PathStatsProvider(Protocol):
    """Protocol for path-frequency statistics."""

    def frequency_pairs(self, tag: str) -> List[Tuple[int, float]]:
        """(path id, frequency) pairs for a tag; empty when unknown."""
        ...

    def frequency_map(self, tag: str) -> Dict[int, float]:
        ...


class OrderStatsProvider(Protocol):
    """Protocol for sibling-order statistics."""

    def order_count(self, tag: str, pid: int, other_tag: str, before: bool) -> float:
        """g(pid, other_tag) in the before (+ele) or after (ele+) region."""
        ...


class ExactPathStats:
    """Lossless provider backed by the PathId-Frequency table."""

    def __init__(self, table: PathIdFrequencyTable):
        self._table = table

    def frequency_pairs(self, tag: str) -> List[Tuple[int, float]]:
        return [(pid, float(freq)) for pid, freq in self._table.pairs(tag)]

    def frequency_map(self, tag: str) -> Dict[int, float]:
        return {pid: float(freq) for pid, freq in self._table.pairs(tag)}


class ExactOrderStats:
    """Lossless provider backed by the Path-Order table."""

    def __init__(self, table: PathOrderTable):
        self._table = table

    def order_count(self, tag: str, pid: int, other_tag: str, before: bool) -> float:
        grid = self._table.grid(tag)
        if before:
            return float(grid.g_before(pid, other_tag))
        return float(grid.g_after(pid, other_tag))
