"""Estimation of queries without order axes (Section 4).

* **Simple queries** (a single chain): Theorem 4.1 — after the path join,
  the summed frequency ``f_Q(n)`` *is* the selectivity (exact when the path
  statistics are exact).
* **Branch queries**: when the target node sits on a branch, ``f_Q(n)``
  over-estimates, because path ids capture vertical containment but not
  the co-occurrence constraints imposed by sibling branches.  Equation 2
  compensates under the Node Independence Assumption::

      S_Q(n) ≈ f_Q'(n) * f_Q(ni) / f_Q'(ni)

  where ``ni`` is the branching node on the target's spine and ``Q'`` drops
  the branches hanging off the target's strict spine ancestors.

The paper standardizes queries to one branching node (``q1[/q2]/q3``).  We
generalize recursively: if ``ni`` itself sits below further branching
nodes, its selectivity is estimated by the same rule (each application uses
Node Independence once); the recursion ends at the query root
(DESIGN.md §5, "trunk" resolution).
"""

from __future__ import annotations

from typing import Optional, Set

from repro.core.pathjoin import JoinResult, path_join
from repro.core.providers import PathStatsProvider
from repro.obs.trace import NULL_TRACER
from repro.pathenc.encoding import EncodingTable
from repro.xpath.ast import Query, QueryNode


def is_trunk_target(query: Query, target: QueryNode) -> bool:
    """True when no strict spine ancestor of ``target`` has extra branches.

    For the standardized ``q1[/q2]/q3`` this is exactly "target occurs in
    the trunk part q1".
    """
    return branching_ancestor(query, target) is None


def branching_ancestor(query: Query, target: QueryNode) -> Optional[QueryNode]:
    """Deepest strict spine ancestor of ``target`` with more than one edge.

    Returns ``None`` when the spine is branch-free (trunk target).
    """
    spine = query.spine_to(target)
    for node in reversed(spine[:-1]):
        if len(node.edges) > 1:
            return node
    return None


def prune_to_spine(query: Query, target: QueryNode) -> Query:
    """Build ``Q'``: drop every edge hanging off strict spine ancestors of
    ``target`` except the spine edges themselves.

    Edges at or below ``target`` are kept (they are downward constraints
    the path ids handle directly).
    """
    spine = query.spine_to(target)
    spine_ids: Set[int] = {node.node_id for node in spine}
    clones = {}

    def clone(node: QueryNode, keep_all: bool) -> QueryNode:
        copy = QueryNode(node.tag)
        clones[node.node_id] = copy
        for edge in node.edges:
            if keep_all or edge.node.node_id in spine_ids:
                child = clone(edge.node, keep_all or edge.node is target)
                copy.edges.append(edge._replace(node=child))
        return copy

    new_root = clone(query.root, query.root is target)
    return Query(new_root, query.root_axis, target=clones[target.node_id])


def _pruned_to_spine(query: Query, target: QueryNode) -> Query:
    """``prune_to_spine`` with the clone cached on the query.

    Queries are immutable once finalized, so the pruned counterpart for a
    given target never changes; caching it keeps the clone's identity
    stable across estimates, which the kernel's weak per-query plan cache
    (and the legacy support cache) rely on for repeat hits.
    """
    cache = getattr(query, "_spine_prune_cache", None)
    if cache is None:
        cache = {}
        query._spine_prune_cache = cache
    pruned = cache.get(target.node_id)
    if pruned is None:
        pruned = prune_to_spine(query, target)
        cache[target.node_id] = pruned
    return pruned


def estimate_no_order(
    query: Query,
    provider: PathStatsProvider,
    table: EncodingTable,
    target: Optional[QueryNode] = None,
    fixpoint: bool = True,
    depth_consistent: bool = True,
    tracer=NULL_TRACER,
    kernel=None,
) -> float:
    """Estimate ``S_Q(target)`` for a query without order axes."""
    node = target if target is not None else query.target
    join = path_join(
        query,
        provider,
        table,
        fixpoint=fixpoint,
        depth_consistent=depth_consistent,
        tracer=tracer,
        kernel=kernel,
    )
    return _estimate(
        query, node, join, provider, table, fixpoint, depth_consistent, tracer, kernel
    )


def _estimate(
    query: Query,
    node: QueryNode,
    join: JoinResult,
    provider: PathStatsProvider,
    table: EncodingTable,
    fixpoint: bool,
    depth_consistent: bool,
    tracer=NULL_TRACER,
    kernel=None,
) -> float:
    if join.empty:
        return 0.0
    branching = branching_ancestor(query, node)
    if branching is None:
        return join.frequency(node)  # Theorem 4.1
    pruned = _pruned_to_spine(query, node)
    pruned_join = path_join(
        pruned,
        provider,
        table,
        fixpoint=fixpoint,
        depth_consistent=depth_consistent,
        tracer=tracer,
        kernel=kernel,
    )
    if pruned_join.empty:
        return 0.0
    f_prime_n = pruned_join.frequency(pruned.target)
    # f_Q'(ni): the branching node's clone sits on the pruned spine.
    ni_clone = _spine_counterpart(query, pruned, branching, node)
    f_prime_ni = pruned_join.frequency(ni_clone)
    if f_prime_ni <= 0.0:
        return 0.0
    # S_Q(ni), recursively (equals f_Q(ni) when ni is trunk).
    s_ni = _estimate(
        query, branching, join, provider, table, fixpoint, depth_consistent,
        tracer, kernel,
    )
    return f_prime_n * s_ni / f_prime_ni


def _spine_counterpart(
    query: Query, pruned: Query, ancestor: QueryNode, target: QueryNode
) -> QueryNode:
    """Locate ``ancestor``'s clone inside the pruned query.

    The pruned spine mirrors the original spine node-for-node, so the clone
    sits at the same depth along the spine to the pruned target.
    """
    original_spine = query.spine_to(target)
    pruned_spine = pruned.spine_to(pruned.target)
    index = original_spine.index(ancestor)
    return pruned_spine[index]
