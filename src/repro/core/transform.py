"""Query-pattern transformations used by the estimators.

All transformations clone the pattern (queries are treated as immutable)
and return both the new :class:`~repro.xpath.ast.Query` and a node map from
original ``node_id`` to the cloned node, so callers can keep referring to
"the same" pattern node across variants.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.errors import ReproError
from repro.xpath.ast import Edge, Query, QueryAxis, QueryNode


class UnsupportedQueryError(ReproError, ValueError):
    """Raised when a query shape falls outside the estimator's scope.

    Unlike :class:`~repro.errors.QuerySyntaxError` the text *parses*;
    the estimator just has no rule for the shape.  Carries the stable
    wire kind ``"unsupported_query"`` (see ``repro.errors.WIRE_KINDS``).
    """

    kind = "unsupported_query"


def clone_query(
    query: Query,
    drop_subtree_of: Optional[Set[int]] = None,
    order_to_structural: bool = False,
    target: Optional[QueryNode] = None,
    keep_order_edges: Optional[Set[Tuple[int, int]]] = None,
) -> Tuple[Query, Dict[int, QueryNode]]:
    """Clone ``query`` with optional transformations.

    drop_subtree_of:
        node_ids whose *structural/scoped* edges are dropped (the node is
        kept; its sibling-order edges survive so order links stay intact).
    order_to_structural:
        rewrite every sibling-order edge ``X -folls/pres-> Y`` into a
        predicate edge ``P -> Y`` (P = X's structural parent, same axis
        that relates X to P), and every scoped edge ``X -foll/pre-> Y``
        into a descendant predicate edge ``P -//-> Y``.  This produces the
        paper's order-free counterpart ``Q`` of an order query.
    keep_order_edges:
        (source node_id, dest node_id) pairs exempt from the
        ``order_to_structural`` rewrite — the multi-axis generalization
        relaxes all order edges but one (DESIGN.md §5).
    target:
        original node to mark as the clone's target (defaults to the
        original query's target).
    """
    drop = drop_subtree_of or set()
    clones: Dict[int, QueryNode] = {}

    def clone_node(node: QueryNode) -> QueryNode:
        copy = QueryNode(node.tag)
        clones[node.node_id] = copy
        for edge in node.edges:
            if node.node_id in drop and edge.axis.is_structural:
                continue
            child = clone_node(edge.node)
            copy.edges.append(Edge(edge.axis, child, edge.is_predicate))
        return copy

    new_root = clone_node(query.root)

    if order_to_structural:
        _lift_order_edges(query, new_root, clones, keep_order_edges or set())

    wanted = target if target is not None else query.target
    mapped_target = clones.get(wanted.node_id)
    if mapped_target is None:
        raise UnsupportedQueryError("target was dropped by the transformation")
    return Query(new_root, query.root_axis, target=mapped_target), clones


def clone_query_cached(
    query: Query,
    drop_subtree_of: Optional[Set[int]] = None,
    order_to_structural: bool = False,
    target: Optional[QueryNode] = None,
    keep_order_edges: Optional[Set[Tuple[int, int]]] = None,
) -> Tuple[Query, Dict[int, QueryNode]]:
    """:func:`clone_query` with the result cached on the source query.

    Patterns are immutable once finalized, so a given transformation
    always yields the same clone; keeping its identity stable lets the
    per-query caches downstream (the kernel's weak plan map, the legacy
    support cache) hit on repeat estimates instead of replanning a fresh
    clone every call.
    """
    key = (
        frozenset(drop_subtree_of) if drop_subtree_of else None,
        order_to_structural,
        target.node_id if target is not None else None,
        frozenset(keep_order_edges) if keep_order_edges else None,
    )
    cache = getattr(query, "_clone_cache", None)
    if cache is None:
        cache = {}
        query._clone_cache = cache
    entry = cache.get(key)
    if entry is None:
        entry = clone_query(
            query,
            drop_subtree_of=drop_subtree_of,
            order_to_structural=order_to_structural,
            target=target,
            keep_order_edges=keep_order_edges,
        )
        cache[key] = entry
    return entry


def _lift_order_edges(
    query: Query,
    new_root: QueryNode,
    clones: Dict[int, QueryNode],
    keep: Set[Tuple[int, int]],
) -> None:
    """Rewrite order edges in the cloned pattern to structural predicates."""
    for axis, source, dest in query.iter_edges():
        if axis.is_structural:
            continue
        if (source.node_id, dest.node_id) in keep:
            continue
        source_clone = clones.get(source.node_id)
        dest_clone = clones.get(dest.node_id)
        if source_clone is None or dest_clone is None:
            continue  # edge fell inside a dropped subtree
        # Remove the order edge from the clone.
        source_clone.edges = [
            edge for edge in source_clone.edges if edge.node is not dest_clone
        ]
        anchor_axis, anchor = _structural_parent(query, source)
        anchor_clone = clones.get(anchor.node_id) if anchor is not None else None
        if anchor_clone is None:
            raise UnsupportedQueryError(
                "order axis on the query root has no structural parent"
            )
        if axis.is_sibling_order:
            new_axis = anchor_axis if anchor_axis is not None else QueryAxis.CHILD
        else:
            new_axis = QueryAxis.DESCENDANT
        anchor_clone.edges.append(Edge(new_axis, dest_clone, True))


def _structural_parent(
    query: Query, node: QueryNode
) -> Tuple[Optional[QueryAxis], Optional[QueryNode]]:
    """(axis, parent) for the nearest structurally-linked edge ancestor."""
    link = query.parent_link(node)
    while link is not None:
        axis, parent = link
        if axis.is_structural:
            return axis, parent
        link = query.parent_link(parent)
    return None, None


def pattern_subtree_ids(query: Query, head: QueryNode, cross_order: bool = False) -> Set[int]:
    """node_ids reachable from ``head`` (``cross_order`` follows order edges)."""
    seen: Set[int] = set()
    stack = [head]
    while stack:
        node = stack.pop()
        if node.node_id in seen:
            continue
        seen.add(node.node_id)
        for edge in node.edges:
            if cross_order or edge.axis.is_structural:
                stack.append(edge.node)
    return seen
