"""Keyword-only options objects for the unified query API.

The redesigned :class:`~repro.core.system.EstimationSystem` surface takes
one frozen options dataclass per verb instead of a growing pile of
keyword arguments:

* :class:`EstimateOptions` — :meth:`EstimationSystem.estimate`;
* :class:`ExecuteOptions` — :meth:`EstimationSystem.execute`;
* :class:`ExplainOptions` — :meth:`EstimationSystem.explain`.

All fields have defaults, so ``system.execute(q)`` works bare; callers
that tune anything pass ``options=ExecuteOptions(drift_threshold=2.0)``.
The dataclasses are frozen: an options object can be built once and
shared across threads/requests.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "EstimateOptions",
    "ExecuteOptions",
    "ExplainOptions",
    "DEFAULT_DRIFT_THRESHOLD",
]

#: Replan when an up-step's observed output diverges from its prediction
#: by more than this multiplicative factor (in either direction).  See
#: docs/PLANNER.md for how the default was chosen.
DEFAULT_DRIFT_THRESHOLD = 3.0


@dataclass(frozen=True)
class EstimateOptions:
    """Tuning for :meth:`EstimationSystem.estimate`.

    fixpoint:
        Iterate the path-join pruning to a fixpoint (ablation switch;
        ``False`` runs a single pass).
    depth_consistent:
        Depth-consistent containment (ablation switch; ``False`` restores
        the paper's literal pairwise test).
    detail:
        Return a structured :class:`~repro.core.result.EstimateResult`
        (route, timing, optional trace) instead of a bare float.
    trace:
        Record the span tree of the estimation.  Implies ``detail``
        (a bare float has nowhere to carry the trace).
    """

    fixpoint: bool = True
    depth_consistent: bool = True
    detail: bool = False
    trace: bool = False


@dataclass(frozen=True)
class ExecuteOptions:
    """Tuning for :meth:`EstimationSystem.execute`.

    use_path_ids:
        Prune initial candidate lists by the Section-4 path join before
        any structural semijoin runs.
    naive_order:
        Skip cost-based ordering: run the up-phase edges in authored
        order (the baseline the benchmarks compare against).
    adaptive:
        Re-plan the remaining steps when observed cardinalities drift
        from the estimates mid-plan.
    drift_threshold:
        Multiplicative observed/predicted divergence that triggers a
        replan (``max(ratio, 1/ratio) > threshold``).
    max_replans:
        Upper bound on mid-plan replans (keeps adversarial estimate
        quality from turning execution into planning).
    """

    use_path_ids: bool = True
    naive_order: bool = False
    adaptive: bool = True
    drift_threshold: float = DEFAULT_DRIFT_THRESHOLD
    max_replans: int = 3


@dataclass(frozen=True)
class ExplainOptions:
    """Tuning for :meth:`EstimationSystem.explain`.

    analyze:
        Also execute the plan (needs the document) so every step carries
        observed cardinalities next to its estimates — the
        ``EXPLAIN ANALYZE`` of the system.
    use_path_ids / naive_order / drift_threshold:
        Same knobs as :class:`ExecuteOptions`, so an explained plan is
        the plan ``execute`` would run.
    """

    analyze: bool = False
    use_path_ids: bool = True
    naive_order: bool = False
    drift_threshold: float = DEFAULT_DRIFT_THRESHOLD
