"""Estimation of queries with sibling-order axes (Section 5, Equations 3-5).

Notation for one order edge ``X -folls-> Y`` (or ``X -pres-> Y``): the
*earlier* sibling occurs first in document order (X for ``folls``, Y for
``pres``); the *later* one second.  The paper's ``ni1``/``n_{i+1}`` are the
earlier/later pair of ``q1[/q2/folls::q3]``.

Given the target node ``n``:

* ``n`` is one of the siblings → Equation 3 (Node Order Uniformity):
  ``S_Q⃗(n) ≈ S_Q⃗'(n) * S_Q(n) / S_Q'(n)`` where ``Q'`` strips the *other*
  sibling's branch to its head and ``S_Q⃗'(n)`` is read from the path-order
  statistics over the ids surviving the path join on ``Q'``.
* ``n`` lies deeper inside a sibling branch → Equation 4 (Node Containment
  Uniformity): ``S_Q⃗(n) ≈ S_Q(n) * S_Q⃗'(s) / S_Q'(s)`` with ``s`` the head
  of the branch containing ``n``.
* ``n`` is in the trunk (or an unrelated branch) → Equation 5:
  ``S_Q⃗(n) ≈ min(S_Q(n), S_Q⃗(X), S_Q⃗(Y))``.

The paper works the later-branch cases out explicitly; the earlier branch
is the mirror image and reads the opposite region of the path-order table
(DESIGN.md §5.7).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.noorder import estimate_no_order
from repro.core.pathjoin import path_join
from repro.core.providers import OrderStatsProvider, PathStatsProvider
from repro.core.transform import (
    UnsupportedQueryError,
    clone_query_cached,
    pattern_subtree_ids,
)
from repro.obs.trace import NULL_TRACER
from repro.pathenc.encoding import EncodingTable
from repro.xpath.ast import Query, QueryAxis, QueryNode


def sibling_order_edges(query: Query) -> List[Tuple[QueryAxis, QueryNode, QueryNode]]:
    """All FOLLS/PRES edges of a query."""
    return [
        (axis, source, dest)
        for axis, source, dest in query.iter_edges()
        if axis.is_sibling_order
    ]


def estimate_with_order(
    query: Query,
    path_provider: PathStatsProvider,
    order_provider: OrderStatsProvider,
    table: EncodingTable,
    target: Optional[QueryNode] = None,
    fixpoint: bool = True,
    depth_consistent: bool = True,
    tracer=NULL_TRACER,
    kernel=None,
) -> float:
    """Estimate ``S_Q⃗(target)`` for a query with one sibling-order edge."""
    node = target if target is not None else query.target
    if any(axis.is_scoped_order for axis, _, _ in query.iter_edges()):
        raise UnsupportedQueryError(
            "rewrite scoped foll/pre axes before order estimation "
            "(see repro.core.axis_rewrite)"
        )
    edges = sibling_order_edges(query)
    if not edges:
        return estimate_no_order(
            query, path_provider, table, target=node,
            fixpoint=fixpoint, depth_consistent=depth_consistent,
            tracer=tracer, kernel=kernel,
        )
    if len(edges) > 1:
        return _estimate_multi_edge(
            query, edges, path_provider, order_provider, table, node,
            fixpoint, depth_consistent, tracer, kernel,
        )
    axis, source, dest = edges[0]
    earlier, later = (source, dest) if axis is QueryAxis.FOLLS else (dest, source)
    estimator = _OrderEstimator(
        query, earlier, later, path_provider, order_provider, table,
        fixpoint, depth_consistent, tracer, kernel,
    )
    return estimator.estimate(node)


def _estimate_multi_edge(
    query: Query,
    edges: List[Tuple[QueryAxis, QueryNode, QueryNode]],
    path_provider: PathStatsProvider,
    order_provider: OrderStatsProvider,
    table: EncodingTable,
    node: QueryNode,
    fixpoint: bool,
    depth_consistent: bool,
    tracer=NULL_TRACER,
    kernel=None,
) -> float:
    """Generalized Equation 5 for multiple sibling-order axes.

    For each order edge, all *other* order edges are relaxed to their
    structural counterparts and the single-edge machinery runs; the final
    estimate is the minimum over the per-edge estimates.  When the target
    sits inside one edge's sibling branches that edge contributes the
    target-aware Equation 3/4 value and every other edge acts as an
    Equation-5-style cap (DESIGN.md §5 generalization — the paper's
    standardized form has exactly one order axis).
    """
    estimates = []
    for axis, source, dest in edges:
        reduced, mapping = clone_query_cached(
            query,
            order_to_structural=True,
            keep_order_edges={(source.node_id, dest.node_id)},
            target=node,
        )
        estimates.append(
            estimate_with_order(
                reduced,
                path_provider,
                order_provider,
                table,
                target=mapping[node.node_id],
                fixpoint=fixpoint,
                depth_consistent=depth_consistent,
                tracer=tracer,
                kernel=kernel,
            )
        )
    return min(estimates)


def _is_edge_source(query: Query, candidate: QueryNode, other: QueryNode) -> bool:
    """Does the sibling-order edge run ``candidate -> other``?"""
    return any(
        edge.node is other and edge.axis.is_sibling_order
        for edge in candidate.edges
    )


class _OrderEstimator:
    """Carries the per-query context of Equations 3-5."""

    def __init__(
        self,
        query: Query,
        earlier: QueryNode,
        later: QueryNode,
        path_provider: PathStatsProvider,
        order_provider: OrderStatsProvider,
        table: EncodingTable,
        fixpoint: bool,
        depth_consistent: bool = True,
        tracer=NULL_TRACER,
        kernel=None,
    ):
        self.query = query
        self.earlier = earlier
        self.later = later
        self.paths = path_provider
        self.orders = order_provider
        self.table = table
        self.fixpoint = fixpoint
        self.depth_consistent = depth_consistent
        self.tracer = tracer
        self.kernel = kernel
        # The order-free counterpart Q of the full query.
        self.counterpart, self.counterpart_map = clone_query_cached(
            query, order_to_structural=True
        )
        # Pattern membership of the two sibling branches.  The defining
        # order edge runs source -> dest; dest's subtree never contains the
        # source (patterns are trees), while the source's subtree reaches
        # dest *through* the order edge and must exclude it.  Which side is
        # "earlier" depends on the axis (folls: source; pres: dest).
        source_is_earlier = earlier is not later and _is_edge_source(query, earlier, later)
        dest = later if source_is_earlier else earlier
        source = earlier if source_is_earlier else later
        dest_ids = pattern_subtree_ids(query, dest, cross_order=True)
        source_ids = pattern_subtree_ids(query, source, cross_order=True) - dest_ids
        if source_is_earlier:
            self.earlier_ids, self.later_ids = source_ids, dest_ids
        else:
            self.earlier_ids, self.later_ids = dest_ids, source_ids

    # ------------------------------------------------------------------

    def estimate(self, node: QueryNode) -> float:
        if node.node_id in self.later_ids:
            sibling, other = self.later, self.earlier
        elif node.node_id in self.earlier_ids:
            sibling, other = self.earlier, self.later
        else:
            return self._trunk_estimate(node)  # Equation 5
        if node is sibling:
            return self._sibling_estimate(sibling, other)  # Equation 3
        return self._deep_branch_estimate(node, sibling, other)  # Equation 4

    # -- Equation 3 -------------------------------------------------------

    def _sibling_estimate(self, sibling: QueryNode, other: QueryNode) -> float:
        s_order_prime, s_prime = self._order_ratio_parts(sibling, other)
        if s_prime <= 0.0:
            return 0.0
        s_q = self._counterpart_estimate(sibling)
        return s_order_prime * s_q / s_prime

    # -- Equation 4 -------------------------------------------------------

    def _deep_branch_estimate(
        self, node: QueryNode, sibling: QueryNode, other: QueryNode
    ) -> float:
        s_order_prime, s_prime = self._order_ratio_parts(sibling, other)
        if s_prime <= 0.0:
            return 0.0
        s_q_n = self._counterpart_estimate(node)
        return s_q_n * s_order_prime / s_prime

    # -- Equation 5 -------------------------------------------------------

    def _trunk_estimate(self, node: QueryNode) -> float:
        s_q_n = self._counterpart_estimate(node)
        s_earlier = self._sibling_estimate(self.earlier, self.later)
        s_later = self._sibling_estimate(self.later, self.earlier)
        return min(s_q_n, s_earlier, s_later)

    # -- shared machinery ---------------------------------------------------

    def _counterpart_estimate(self, node: QueryNode) -> float:
        """S_Q(node): the no-order estimate on the full counterpart."""
        mapped = self.counterpart_map[node.node_id]
        return estimate_no_order(
            self.counterpart,
            self.paths,
            self.table,
            target=mapped,
            fixpoint=self.fixpoint,
            depth_consistent=self.depth_consistent,
            tracer=self.tracer,
            kernel=self.kernel,
        )

    def _order_ratio_parts(
        self, sibling: QueryNode, other: QueryNode
    ) -> Tuple[float, float]:
        """(S_Q⃗'(sibling), S_Q'(sibling)) for the simplified query.

        ``Q'`` keeps the sibling's branch in full and strips the *other*
        branch to its head node, then drops the order axis.
        """
        simplified, mapping = clone_query_cached(
            self.query,
            drop_subtree_of={other.node_id},
            order_to_structural=True,
            target=sibling,
        )
        join = path_join(
            simplified, self.paths, self.table,
            fixpoint=self.fixpoint, depth_consistent=self.depth_consistent,
            tracer=self.tracer, kernel=self.kernel,
        )
        if join.empty:
            return 0.0, 0.0
        sibling_clone = mapping[sibling.node_id]
        surviving = join.pids(sibling_clone)
        before = sibling is self.earlier
        s_order_prime = sum(
            self.orders.order_count(sibling.tag, pid, other.tag, before)
            for pid in surviving
        )
        s_prime = estimate_no_order(
            simplified, self.paths, self.table, target=sibling_clone,
            fixpoint=self.fixpoint, depth_consistent=self.depth_consistent,
            tracer=self.tracer, kernel=self.kernel,
        )
        return s_order_prime, s_prime
