"""Structured explanations of estimates and execution plans.

Two complementary views:

* :func:`explain` re-derives the estimation route (which rule of the
  paper applies) and exposes the intermediate quantities — the
  *formula-level* narrative;
* :func:`explain_plan` returns the :class:`~repro.plan.ir.Plan` the
  cost-based planner would execute for the query — ordered semijoin
  steps with expected cardinalities — and, with
  ``ExplainOptions(analyze=True)``, actually runs it so each step also
  carries observed cardinalities.  :meth:`EstimationSystem.explain`
  delegates here.

The reported ``estimate`` is always identical to
``EstimationSystem.estimate`` (a test pins this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.core.axis_rewrite import rewrite_scoped_order_query, scoped_order_edges
from repro.core.noorder import branching_ancestor, estimate_no_order, prune_to_spine
from repro.core.order import _OrderEstimator, sibling_order_edges
from repro.core.pathjoin import path_join
from repro.core.system import EstimationSystem, _coerce_query
from repro.xpath.ast import Query, QueryAxis


@dataclass
class EstimateReport:
    """One estimation decision with its inputs."""

    query_text: str
    target_tag: str
    rule: str
    estimate: float
    details: Dict[str, float] = field(default_factory=dict)
    variants: List["EstimateReport"] = field(default_factory=list)

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [
            "%s%s  [%s]  estimate=%.3f" % (pad, self.query_text, self.rule, self.estimate)
        ]
        for key, value in self.details.items():
            lines.append("%s  %s = %.3f" % (pad, key, value))
        for variant in self.variants:
            lines.append(variant.render(indent + 1))
        return "\n".join(lines)


def explain_plan(
    system: EstimationSystem,
    query: Union[str, Query],
    *,
    options=None,
    document=None,
):
    """The cost-based :class:`~repro.plan.ir.Plan` for ``query``.

    Pure planning (the default) needs only the synopsis; ``analyze=True``
    executes the plan against the system's document (or ``document=``)
    and returns it with per-step observed cardinalities and any mid-plan
    replans applied.
    """
    from repro.core.options import ExecuteOptions, ExplainOptions

    opts = options if options is not None else ExplainOptions()
    parsed = _coerce_query(query)
    if opts.analyze:
        result = system.execute(
            parsed,
            options=ExecuteOptions(
                use_path_ids=opts.use_path_ids,
                naive_order=opts.naive_order,
                drift_threshold=opts.drift_threshold,
            ),
            document=document,
        )
        return result.plan
    plan = system.planner().plan(
        parsed,
        use_path_ids=opts.use_path_ids,
        naive_order=opts.naive_order,
        drift_threshold=opts.drift_threshold,
    )
    system.planner_stats.record_plan(plan)
    return plan


def explain(system: EstimationSystem, query: Union[str, Query]) -> EstimateReport:
    """Explain how ``system`` estimates ``query``'s target selectivity.

    .. deprecated-path:: ``explain`` re-runs the estimator to reconstruct
       the decision; for the quantities the system *actually* computed —
       per-span timings, bucket/cell counters, the route taken — prefer
       ``system.estimate(text, options=EstimateOptions(trace=True))``,
       which returns an :class:`~repro.core.result.EstimateResult` whose
       ``.trace`` holds the span tree of the real execution.  ``explain``
       stays for the formula-level narrative (which paper rule fired,
       with its inputs).
    """
    parsed = _coerce_query(query)
    if scoped_order_edges(parsed):
        variants = rewrite_scoped_order_query(
            parsed, system.path_provider, system.encoding_table
        )
        reports = [explain(system, variant) for variant in variants]
        return EstimateReport(
            query_text=parsed.to_string(),
            target_tag=parsed.target.tag,
            rule="example-5.3-rewrite",
            estimate=sum(r.estimate for r in reports),
            details={"variants": float(len(reports))},
            variants=reports,
        )
    if sibling_order_edges(parsed):
        return _explain_order(system, parsed)
    return _explain_no_order(system, parsed)


def _explain_no_order(system: EstimationSystem, query: Query) -> EstimateReport:
    join = path_join(query, system.path_provider, system.encoding_table)
    target = query.target
    if join.empty:
        return EstimateReport(query.to_string(), target.tag, "empty-join", 0.0)
    branching = branching_ancestor(query, target)
    estimate = estimate_no_order(query, system.path_provider, system.encoding_table)
    if branching is None:
        return EstimateReport(
            query.to_string(),
            target.tag,
            "theorem-4.1",
            estimate,
            details={"f_Q(n)": join.frequency(target), "surviving_pids": float(len(join.pids(target)))},
        )
    pruned = prune_to_spine(query, target)
    pruned_join = path_join(pruned, system.path_provider, system.encoding_table)
    s_ni = estimate_no_order(
        query, system.path_provider, system.encoding_table, target=branching
    )
    details = {
        "f_Q'(n)": 0.0 if pruned_join.empty else pruned_join.frequency(pruned.target),
        "S_Q(ni)": s_ni,
        "ni_tag_is_" + branching.tag: 1.0,
    }
    return EstimateReport(query.to_string(), target.tag, "equation-2", estimate, details)


def _explain_order(system: EstimationSystem, query: Query) -> EstimateReport:
    axis, source, dest = sibling_order_edges(query)[0]
    earlier, later = (source, dest) if axis is QueryAxis.FOLLS else (dest, source)
    estimator = _OrderEstimator(
        query,
        earlier,
        later,
        system.path_provider,
        system.order_provider,
        system.encoding_table,
        fixpoint=True,
    )
    target = query.target
    estimate = estimator.estimate(target)
    if target.node_id in estimator.later_ids:
        sibling, other = later, earlier
    elif target.node_id in estimator.earlier_ids:
        sibling, other = earlier, later
    else:
        s_q_n = estimator._counterpart_estimate(target)
        s_earlier = estimator._sibling_estimate(earlier, later)
        s_later = estimator._sibling_estimate(later, earlier)
        return EstimateReport(
            query.to_string(),
            target.tag,
            "equation-5",
            estimate,
            details={
                "S_Q(n)": s_q_n,
                "S_ord(earlier=%s)" % earlier.tag: s_earlier,
                "S_ord(later=%s)" % later.tag: s_later,
            },
        )
    s_order_prime, s_prime = estimator._order_ratio_parts(sibling, other)
    rule = "equation-3" if target is sibling else "equation-4"
    details = {
        "S_ordQ'(%s)" % sibling.tag: s_order_prime,
        "S_Q'(%s)" % sibling.tag: s_prime,
        "S_Q(n)": estimator._counterpart_estimate(target),
    }
    return EstimateReport(query.to_string(), target.tag, rule, estimate, details)
