"""Rewriting scoped ``foll``/``pre`` axes into sibling-axis queries.

Example 5.3 of the paper: given ``//A[/C/foll::D]``, the path join leaves
``D`` with path id ``p5`` whose only root-to-leaf path runs ``Root/A/B/D``,
so the chain between the context parent ``A`` and ``D`` must be ``B`` — the
query converts to ``//A[/C/folls::B/D]``.  In general every surviving path
id of the axis node contributes the label chains between the context
parent's tag and the axis node's tag; the estimate of the original query is
the **sum** of the estimates of the distinct rewritten queries.

The rewrite presumes the context node is linked to its parent by a child
step (true for the paper's examples and our workload); a descendant-linked
context falls back to the same chain extraction from the anchor node and is
documented as an approximation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.pathjoin import path_join
from repro.core.providers import PathStatsProvider
from repro.core.transform import UnsupportedQueryError, clone_query_cached
from repro.obs.trace import NULL_TRACER
from repro.pathenc.encoding import EncodingTable
from repro.pathenc.pathid import encodings_of
from repro.xpath.ast import Edge, Query, QueryAxis, QueryNode


def scoped_order_edges(query: Query) -> List[Tuple[QueryAxis, QueryNode, QueryNode]]:
    return [
        (axis, source, dest)
        for axis, source, dest in query.iter_edges()
        if axis.is_scoped_order
    ]


def rewrite_scoped_order_query(
    query: Query,
    provider: PathStatsProvider,
    table: EncodingTable,
    fixpoint: bool = True,
    depth_consistent: bool = True,
    tracer=NULL_TRACER,
    kernel=None,
) -> List[Query]:
    """Convert one ``foll``/``pre`` edge into a set of sibling-axis queries.

    Returns the rewritten queries (possibly empty when the axis node has no
    surviving path ids — a provably empty result).  Queries without scoped
    axes are returned unchanged, as a singleton list.
    """
    edges = scoped_order_edges(query)
    if not edges:
        return [query]
    if len(edges) > 1:
        raise UnsupportedQueryError("only one foll/pre axis per query is supported")
    axis, source, dest = edges[0]
    sibling_axis = QueryAxis.FOLLS if axis is QueryAxis.FOLL else QueryAxis.PRES

    if _structural_anchor_tag(query, source) is None:
        raise UnsupportedQueryError("foll/pre axis on the query root is not supported")

    # Path join on the order-free counterpart to find the relevant ids.
    counterpart, mapping = clone_query_cached(query, order_to_structural=True)
    join = path_join(
        counterpart, provider, table,
        fixpoint=fixpoint, depth_consistent=depth_consistent,
        tracer=tracer, kernel=kernel,
    )
    if join.empty:
        return []
    surviving = join.pids(mapping[dest.node_id])

    # The sibling pair lives under the *parent* of the context node.  For
    # a child-linked context that is its pattern parent; for a
    # descendant-linked context the parent tags are read off the context's
    # surviving path ids (the label right above each feasible placement).
    parent_tags = _context_parent_tags(query, source, join, mapping, table)
    if not parent_tags:
        return []

    chains: Set[Tuple[str, ...]] = set()
    for pid in surviving:
        for encoding in encodings_of(pid, table.width):
            for parent_tag in parent_tags:
                chain = table.tags_between(encoding, parent_tag, dest.tag)
                if chain is not None:
                    chains.add(tuple(chain))
    rewritten = []
    for chain in sorted(chains):
        rewritten.append(_rewrite_one(query, source, dest, sibling_axis, chain))
    return rewritten


def _context_parent_tags(query, source, join, mapping, table) -> Set[str]:
    """Possible tags of the context node's real parent.

    A child-linked context has a known pattern parent; otherwise every
    feasible (pid, depth) placement of the context contributes the label
    immediately above it on each of its paths.
    """
    link = query.parent_link(source)
    if link is not None and link[0] is QueryAxis.CHILD:
        return {link[1].tag}
    tags: Set[str] = set()
    source_clone = mapping[source.node_id]
    depths = join.depths(source_clone)
    if depths:
        for pid, feasible in depths.items():
            for encoding in encodings_of(pid, table.width):
                labels = table.labels_of(encoding)
                for depth in feasible:
                    if 0 < depth < len(labels) and labels[depth] == source.tag:
                        tags.add(labels[depth - 1])
        return tags
    # Pairwise-join fallback: no depth information; use every occurrence.
    for pid in join.pids(source_clone):
        for encoding in encodings_of(pid, table.width):
            labels = table.labels_of(encoding)
            for depth in range(1, len(labels)):
                if labels[depth] == source.tag:
                    tags.add(labels[depth - 1])
    return tags


def _structural_anchor_tag(query: Query, node: QueryNode) -> Optional[str]:
    link = query.parent_link(node)
    while link is not None:
        axis, parent = link
        if axis.is_structural:
            return parent.tag
        link = query.parent_link(parent)
    return None


def _rewrite_one(
    query: Query,
    source: QueryNode,
    dest: QueryNode,
    sibling_axis: QueryAxis,
    chain: Tuple[str, ...],
) -> Query:
    """Clone the query replacing ``source -foll/pre-> dest`` with
    ``source -folls/pres-> chain[0]/chain[1]/.../dest``."""
    clones: Dict[int, QueryNode] = {}

    def clone_node(node: QueryNode) -> QueryNode:
        copy = QueryNode(node.tag)
        clones[node.node_id] = copy
        for edge in node.edges:
            if node is source and edge.node is dest and edge.axis.is_scoped_order:
                continue  # re-attached through the chain below
            copy.edges.append(Edge(edge.axis, clone_node(edge.node), edge.is_predicate))
        return copy

    new_root = clone_node(query.root)
    dest_clone = clone_node(dest)  # dest subtree, cloned separately

    # Build the downward chain ending at dest.
    bottom = dest_clone
    for tag in reversed(chain):
        holder = QueryNode(tag)
        holder.edges.append(Edge(QueryAxis.CHILD, bottom, False))
        bottom = holder
    source_clone = clones[source.node_id]
    is_predicate = source_clone.inline_edge() is not None
    source_clone.edges.append(Edge(sibling_axis, bottom, is_predicate))

    mapped_target = clones.get(query.target.node_id)
    if mapped_target is None:
        raise UnsupportedQueryError("target was lost during the axis rewrite")
    return Query(new_root, query.root_axis, target=mapped_target)
