"""The path join (Section 4 of the paper).

For each query node the join starts from every (path id, frequency) pair of
its tag and prunes ids that cannot satisfy the query's structural
constraints, using the containment tests of Section 2.

Constraint derivation from the pattern edges:

* a structural edge ``U -/-> L`` or ``U -//-> L`` constrains (U, L) with
  the child / descendant relationship;
* a sibling-order edge ``X -folls/pres-> Y`` makes ``Y`` a child of ``X``'s
  structural parent ``P``, related to ``P`` by the same axis that relates
  ``X`` to ``P`` (siblings share the parent);
* a scoped-order edge ``X -foll/pre-> Y`` places ``Y`` somewhere below
  ``P``, i.e. a descendant constraint (P, Y).

**Depth-consistent containment.**  The paper checks the tag relationship
"in any one of the root-to-leaf paths" of the contained id.  Under
recursive schemas (XMark's ``parlist``/``listitem``) that pairwise test
lets a chain query match through *different* recursion levels per step and
breaks the exactness of Theorem 4.1.  Because a document node lies on every
path of its id at one fixed depth, each ``(tag, id)`` group has a feasible
depth set (:meth:`~repro.pathenc.encoding.EncodingTable.tag_depths`), and
the join can propagate (id, depth) survival instead of id survival alone.
This is the default; ``depth_consistent=False`` restores the plain pairwise
test for the ablation benchmark (DESIGN.md §5).

The paper prunes each adjacent pair with a nested loop; we optionally
iterate the pairwise pruning to a fixpoint — a pruned id can enable further
pruning upstream (Figure 3 needs two passes to reach the published state).
``fixpoint=False`` keeps the single-pass behaviour for the other ablation.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Set, Tuple

from repro.core.providers import PathStatsProvider
from repro.obs.trace import NULL_SPAN, NULL_TRACER
from repro.pathenc.encoding import EncodingTable
from repro.pathenc.relationship import Axis, pids_compatible
from repro.xpath.ast import Query, QueryAxis, QueryNode

_STRUCTURAL_AXIS = {
    QueryAxis.CHILD: Axis.CHILD,
    QueryAxis.DESCENDANT: Axis.DESCENDANT,
}


class _SupportCache:
    """Per-document cache of static (pid, depth) support relations.

    For a tag pair and axis, which upper (pid, depth) placements can
    support which lower (pid, depth) placements is a property of the
    encoding table alone — computed once, then every join constraint is a
    set-membership sweep instead of an O(|pids|^2) subset scan.  Cached
    per :class:`EncodingTable` (weakly, so documents can be collected).
    """

    _by_table: "weakref.WeakKeyDictionary[EncodingTable, Dict]" = (
        weakref.WeakKeyDictionary()
    )

    @classmethod
    def support(
        cls,
        table: EncodingTable,
        upper_tag: str,
        upper_pids: List[int],
        lower_tag: str,
        lower_pids: List[int],
        child: bool,
    ) -> Tuple[Dict[Tuple[int, int], Tuple[int, ...]], Dict[Tuple[int, int], Tuple[int, ...]]]:
        """Support maps for one constraint.

        Returns (lower-support, upper-support, lower-alive, upper-alive):
        ``lower-support[(pl, dl)]`` lists the upper pids that can support
        the lower placement; ``upper-support[(pu, du)]`` the lower pids a
        given upper placement can reach; the alive maps collapse the
        support keys to per-pid statically feasible depth sets (used to
        restrict the initial state before the dynamic rounds).
        """
        store = cls._by_table.setdefault(table, {})
        key = (upper_tag, lower_tag, child)
        entry = store.get(key)
        if entry is not None:
            known_upper, known_lower, maps = entry
            if known_upper.issuperset(upper_pids) and known_lower.issuperset(lower_pids):
                return maps
            known_upper.update(upper_pids)
            known_lower.update(lower_pids)
            maps = cls._build(
                table, upper_tag, sorted(known_upper), lower_tag, sorted(known_lower), child
            )
            store[key] = (known_upper, known_lower, maps)
            return maps
        maps = cls._build(table, upper_tag, upper_pids, lower_tag, lower_pids, child)
        store[key] = (set(upper_pids), set(lower_pids), maps)
        return maps

    @staticmethod
    def _build(table, upper_tag, upper_pids, lower_tag, lower_pids, child):
        down: Dict[Tuple[int, int], List[int]] = {}
        up: Dict[Tuple[int, int], List[int]] = {}
        upper_info = [
            (pu, table.tag_depths(upper_tag, pu)) for pu in upper_pids
        ]
        for pl in lower_pids:
            lower_depths = table.tag_depths(lower_tag, pl)
            if not lower_depths:
                continue
            for pu, upper_depths in upper_info:
                if (pu & pl) != pl or not upper_depths:
                    continue
                for dl in lower_depths:
                    if child:
                        supported = (dl - 1) in upper_depths
                    else:
                        supported = upper_depths[0] < dl  # depths sorted
                    if supported:
                        down.setdefault((pl, dl), []).append(pu)
                for du in upper_depths:
                    if child:
                        if (du + 1) in lower_depths:
                            up.setdefault((pu, du), []).append(pl)
                    elif lower_depths[-1] > du:
                        up.setdefault((pu, du), []).append(pl)
        down_alive: Dict[int, Set[int]] = {}
        for (pl, dl) in down:
            down_alive.setdefault(pl, set()).add(dl)
        up_alive: Dict[int, Set[int]] = {}
        for (pu, du) in up:
            up_alive.setdefault(pu, set()).add(du)
        return (
            {key: tuple(values) for key, values in down.items()},
            {key: tuple(values) for key, values in up.items()},
            down_alive,
            up_alive,
        )


class JoinResult:
    """Surviving (path id → frequency) maps per query node."""

    def __init__(
        self,
        query: Query,
        surviving: List[Dict[int, float]],
        depths: Optional[List[Dict[int, Set[int]]]] = None,
    ):
        self.query = query
        self._surviving = surviving
        self._depths = depths

    def pids(self, node: QueryNode) -> Dict[int, float]:
        """Surviving path ids (and their frequencies) of one query node."""
        return dict(self._surviving[node.node_id])

    def depths(self, node: QueryNode) -> Dict[int, Set[int]]:
        """Surviving (path id → feasible depths); empty in pairwise mode."""
        if self._depths is None:
            return {}
        return {pid: set(ds) for pid, ds in self._depths[node.node_id].items()}

    def frequency(self, node: QueryNode) -> float:
        """The paper's f_Q(n): summed frequency of surviving ids."""
        return sum(self._surviving[node.node_id].values())

    @property
    def empty(self) -> bool:
        """True when any node lost all its path ids (negative query)."""
        return any(not pids for pids in self._surviving)

    def survivor_count(self) -> int:
        """Total surviving path ids across all nodes (trace counter)."""
        return sum(len(pids) for pids in self._surviving)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counts = [len(pids) for pids in self._surviving]
        return "<JoinResult pids per node: %s>" % counts


def derive_constraints(query: Query) -> List[Tuple[QueryNode, Axis, QueryNode]]:
    """All (upper, axis, lower) structural constraints implied by a query."""
    constraints: List[Tuple[QueryNode, Axis, QueryNode]] = []
    for axis, source, dest in query.iter_edges():
        if axis.is_structural:
            constraints.append((source, _STRUCTURAL_AXIS[axis], dest))
            continue
        parent_link = query.parent_link(source)
        if axis.is_sibling_order:
            if parent_link is None:
                # The order edge hangs off the query root: the sibling pair
                # lives under an unknown document node; no upper constraint
                # can be derived from path ids alone.
                continue
            parent_axis, parent = parent_link
            if parent_axis.is_structural:
                constraints.append((parent, _STRUCTURAL_AXIS[parent_axis], dest))
            else:
                # Source is itself order-connected: fall back to the nearest
                # structural ancestor with a descendant constraint.
                anchor = _structural_anchor(query, parent)
                if anchor is not None:
                    constraints.append((anchor, Axis.DESCENDANT, dest))
        else:  # scoped foll/pre: dest lives below source's structural parent
            anchor = _structural_anchor(query, source)
            if anchor is not None:
                constraints.append((anchor, Axis.DESCENDANT, dest))
    return constraints


def _structural_anchor(query: Query, node: QueryNode) -> Optional[QueryNode]:
    """Nearest edge-ancestor reached via a structural edge's source."""
    link = query.parent_link(node)
    while link is not None:
        axis, parent = link
        if axis.is_structural:
            return parent
        link = query.parent_link(parent)
    return None


def path_join(
    query: Query,
    provider: PathStatsProvider,
    table: EncodingTable,
    fixpoint: bool = True,
    depth_consistent: bool = True,
    max_rounds: int = 64,
    tracer=NULL_TRACER,
    kernel=None,
) -> JoinResult:
    """Run the path join and return the surviving id sets.

    ``tracer`` (a :class:`repro.obs.trace.Tracer` or the default no-op
    :data:`~repro.obs.trace.NULL_TRACER`) accrues a ``join`` aggregate
    span with ``pathid-match`` nested under it; repeated joins inside
    one estimate merge into one span each.

    ``kernel`` (a :class:`repro.kernel.SynopsisKernel` or ``None``)
    switches the default depth-consistent fixpoint onto the compiled
    bitset path, which produces bit-identical results; the ablation
    modes and providers the kernel was not compiled from fall back to
    the dict pipeline below.
    """
    if kernel is not None:
        if fixpoint and depth_consistent and kernel.supports(provider, table):
            return kernel.join(
                query, provider=provider, tracer=tracer, max_rounds=max_rounds
            )
        kernel.note_fallback()
    with tracer.aggregate("join") as span:
        if depth_consistent:
            result = _depth_join(
                query, provider, table, fixpoint, max_rounds, tracer, span
            )
        else:
            result = _pairwise_join(
                query, provider, table, fixpoint, max_rounds, tracer, span
            )
        span.incr("surviving_pids", result.survivor_count())
    return result


# ----------------------------------------------------------------------
# Depth-consistent join (default)
# ----------------------------------------------------------------------


def _initial_state(
    provider: PathStatsProvider, table: EncodingTable, tag: str
) -> Tuple[Dict[int, float], Dict[int, Set[int]], Optional[Dict[int, Dict[int, float]]]]:
    """Per-tag starting state of the join, cached on the provider.

    When the provider exposes per-depth frequencies (the depth-refined
    extension), the empirical depths both seed the depth sets and let the
    join recompute frequencies as depths are pruned.
    """
    cache = getattr(provider, "_join_init_cache", None)
    if cache is None:
        cache = {}
        try:
            setattr(provider, "_join_init_cache", cache)
        except AttributeError:  # provider with __slots__: skip caching
            cache = None
    if cache is not None:
        cached = cache.get(tag)
        if cached is not None:
            return cached
    depth_freqs: Optional[Dict[int, Dict[int, float]]] = None
    refined = getattr(provider, "depth_frequency_map", None)
    if refined is not None:
        depth_freqs = refined(tag)
    tag_freqs: Dict[int, float] = {}
    tag_depths: Dict[int, Set[int]] = {}
    for pid, freq in provider.frequency_pairs(tag):
        if depth_freqs is not None:
            empirical = depth_freqs.get(pid)
            if empirical:
                tag_freqs[pid] = freq
                tag_depths[pid] = set(empirical)
            continue
        feasible = table.tag_depths(tag, pid)
        if feasible:
            tag_freqs[pid] = freq
            tag_depths[pid] = set(feasible)
    entry = (tag_freqs, tag_depths, depth_freqs)
    if cache is not None:
        cache[tag] = entry
    return entry


def _depth_join(
    query: Query,
    provider: PathStatsProvider,
    table: EncodingTable,
    fixpoint: bool,
    max_rounds: int,
    tracer=NULL_TRACER,
    join_span=NULL_SPAN,
) -> JoinResult:
    nodes = query.nodes()
    freqs: List[Dict[int, float]] = []
    depths: List[Dict[int, Set[int]]] = []
    dfreqs: List[Optional[Dict[int, Dict[int, float]]]] = []
    with tracer.aggregate("pathid-match") as match_span:
        for node in nodes:
            node_freqs, node_depths, node_dfreqs = _initial_state(
                provider, table, node.tag
            )
            # Shared references: the constraint loop replaces (never
            # mutates) these dicts and the per-placement sets, so no
            # defensive copy is needed.
            freqs.append(node_freqs)
            depths.append(node_depths)
            dfreqs.append(node_dfreqs)
            match_span.incr("pids_matched", len(node_freqs))

    if query.root_axis is QueryAxis.CHILD:
        root_id = query.root.node_id
        kept = {pid: {0} for pid, ds in depths[root_id].items() if 0 in ds}
        depths[root_id] = kept
        freqs[root_id] = {pid: freqs[root_id][pid] for pid in kept}

    constraints = derive_constraints(query)
    # Static support maps, cached per document (see _SupportCache).
    supports = [
        _SupportCache.support(
            table,
            upper.tag,
            list(depths[upper.node_id]),
            lower.tag,
            list(depths[lower.node_id]),
            axis is Axis.CHILD,
        )
        for upper, axis, lower in constraints
    ]
    # Static restriction: drop placements with no possible support before
    # the dynamic rounds (equivalent to the constraint's first sweep minus
    # the dynamic checks, at a fraction of the cost).
    for (upper, _axis, lower), maps in zip(constraints, supports):
        _static_restrict(freqs, depths, lower.node_id, maps[2], dfreqs)
        _static_restrict(freqs, depths, upper.node_id, maps[3], dfreqs)
        if not freqs[upper.node_id] or not freqs[lower.node_id]:
            return JoinResult(query, [{} for _ in nodes], [{} for _ in nodes])
    # Forward + backward sweeps make pruning propagate both ways within
    # one round; per-node version counters let a constraint skip when
    # neither endpoint changed since it last ran.
    indexed = list(zip(constraints, supports))
    schedule = indexed + indexed[::-1] if fixpoint else indexed
    version = [0] * len(nodes)
    last_seen: List[Tuple[int, int]] = [(-1, -1)] * len(schedule)
    rounds = max_rounds if fixpoint else 1
    for _ in range(rounds):
        join_span.incr("rounds")
        changed = False
        for index, ((upper, axis, lower), support) in enumerate(schedule):
            uid, lid = upper.node_id, lower.node_id
            if last_seen[index] == (version[uid], version[lid]):
                continue
            upper_changed, lower_changed = _apply_depth_constraint(
                axis, freqs, depths, uid, lid, support, dfreqs
            )
            if upper_changed:
                version[uid] += 1
                changed = True
            if lower_changed:
                version[lid] += 1
                changed = True
            last_seen[index] = (version[uid], version[lid])
            if not freqs[uid] or not freqs[lid]:
                return JoinResult(query, [{} for _ in nodes], [{} for _ in nodes])
        if not changed:
            break
    if any(not f for f in freqs):
        return JoinResult(query, [{} for _ in nodes], [{} for _ in nodes])
    return JoinResult(query, freqs, depths)


def _node_freq(
    pid: int,
    kept_depths: Set[int],
    old_freq: float,
    node_dfreqs: Optional[Dict[int, Dict[int, float]]],
) -> float:
    """Frequency of one pid after depth pruning.

    Plain statistics cannot split a pid's frequency across depths (the
    paper's granularity); depth-refined statistics can.
    """
    if node_dfreqs is None:
        return old_freq
    per_depth = node_dfreqs.get(pid)
    if per_depth is None:
        return old_freq
    return sum(per_depth.get(depth, 0.0) for depth in kept_depths)


def _static_restrict(
    freqs: List[Dict[int, float]],
    depths: List[Dict[int, Set[int]]],
    node_id: int,
    alive: Dict[int, Set[int]],
    dfreqs: List[Optional[Dict[int, Dict[int, float]]]],
) -> None:
    """Intersect one node's placements with a static feasibility map."""
    current = depths[node_id]
    restricted: Dict[int, Set[int]] = {}
    changed = False
    for pid, dls in current.items():
        feasible = alive.get(pid)
        if not feasible:
            changed = True
            continue
        inter = dls & feasible
        if inter:
            restricted[pid] = inter
        if len(inter) != len(dls):
            changed = True
    if changed:
        depths[node_id] = restricted
        node_dfreqs = dfreqs[node_id]
        freqs[node_id] = {
            pid: _node_freq(pid, kept, freqs[node_id][pid], node_dfreqs)
            for pid, kept in restricted.items()
        }


def _apply_depth_constraint(
    axis: Axis,
    freqs: List[Dict[int, float]],
    depths: List[Dict[int, Set[int]]],
    upper_id: int,
    lower_id: int,
    support: Tuple[Dict, Dict],
    dfreqs: List[Optional[Dict[int, Dict[int, float]]]],
) -> Tuple[bool, bool]:
    """Prune both sides of one constraint.

    Returns (upper changed, lower changed).  ``support`` holds the static
    placement-support maps; only dynamic membership (is the supporting
    pid/depth still alive?) is checked here.
    """
    child = axis is Axis.CHILD
    down_support, up_support = support[0], support[1]
    upper_depths = depths[upper_id]
    lower_depths = depths[lower_id]
    lower_changed = False

    # Lower side: (pl, dl) survives if some (pu ⊇ pl, du) supports it.
    new_lower: Dict[int, Set[int]] = {}
    for pl, dls in lower_depths.items():
        kept: Set[int] = set()
        for dl in dls:
            for pu in down_support.get((pl, dl), ()):
                dus = upper_depths.get(pu)
                if dus is None:
                    continue
                if child:
                    if dl - 1 in dus:
                        kept.add(dl)
                        break
                elif min(dus) < dl:
                    kept.add(dl)
                    break
        if kept:
            new_lower[pl] = kept
        if kept != dls:
            lower_changed = True

    # Upper side: (pu, du) survives if some (pl ⊆ pu, dl) is reachable.
    upper_changed = False
    new_upper: Dict[int, Set[int]] = {}
    for pu, dus in upper_depths.items():
        kept = set()
        for du in dus:
            for pl in up_support.get((pu, du), ()):
                dls = new_lower.get(pl)
                if dls is None:
                    continue
                if child:
                    if du + 1 in dls:
                        kept.add(du)
                        break
                elif max(dls) > du:
                    kept.add(du)
                    break
        if kept:
            new_upper[pu] = kept
        if kept != dus:
            upper_changed = True

    if lower_changed:
        depths[lower_id] = new_lower
        lower_dfreqs = dfreqs[lower_id]
        freqs[lower_id] = {
            pid: _node_freq(pid, kept, freqs[lower_id][pid], lower_dfreqs)
            for pid, kept in new_lower.items()
        }
    if upper_changed:
        depths[upper_id] = new_upper
        upper_dfreqs = dfreqs[upper_id]
        freqs[upper_id] = {
            pid: _node_freq(pid, kept, freqs[upper_id][pid], upper_dfreqs)
            for pid, kept in new_upper.items()
        }
    return upper_changed, lower_changed


# ----------------------------------------------------------------------
# Plain pairwise join (the paper's literal reading; ablation)
# ----------------------------------------------------------------------


def _pairwise_join(
    query: Query,
    provider: PathStatsProvider,
    table: EncodingTable,
    fixpoint: bool,
    max_rounds: int,
    tracer=NULL_TRACER,
    join_span=NULL_SPAN,
) -> JoinResult:
    nodes = query.nodes()
    with tracer.aggregate("pathid-match") as match_span:
        surviving: List[Dict[int, float]] = [
            dict(provider.frequency_pairs(node.tag)) for node in nodes
        ]
        match_span.incr("pids_matched", sum(len(pids) for pids in surviving))
    if query.root_axis is QueryAxis.CHILD:
        root = query.root
        surviving[root.node_id] = {
            pid: freq
            for pid, freq in surviving[root.node_id].items()
            if 0 in table.tag_depths(root.tag, pid)
        }
    constraints = derive_constraints(query)
    rounds = max_rounds if fixpoint else 1
    for _ in range(rounds):
        join_span.incr("rounds")
        changed = False
        for upper, axis, lower in constraints:
            upper_pids = surviving[upper.node_id]
            lower_pids = surviving[lower.node_id]
            if not upper_pids or not lower_pids:
                return JoinResult(query, [{} for _ in nodes])
            kept_upper = {
                pu: freq
                for pu, freq in upper_pids.items()
                if any(
                    pids_compatible(table, upper.tag, pu, lower.tag, pl, axis)
                    for pl in lower_pids
                )
            }
            kept_lower = {
                pl: freq
                for pl, freq in lower_pids.items()
                if any(
                    pids_compatible(table, upper.tag, pu, lower.tag, pl, axis)
                    for pu in kept_upper
                )
            }
            if len(kept_upper) != len(upper_pids) or len(kept_lower) != len(lower_pids):
                changed = True
            surviving[upper.node_id] = kept_upper
            surviving[lower.node_id] = kept_lower
        if not changed:
            break
    if any(not pids for pids in surviving):
        return JoinResult(query, [{} for _ in nodes])
    return JoinResult(query, surviving)
