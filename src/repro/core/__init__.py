"""The estimation system (Sections 4-5 of the paper).

* :mod:`~repro.core.providers` — statistics provider protocol plus exact
  (table-backed) providers; histogram sets implement the same protocol.
* :mod:`~repro.core.pathjoin` — the path join: per-query-node pruning of
  incompatible path ids (Section 4), with an optional fixpoint iteration.
* :mod:`~repro.core.noorder` — Theorem 4.1 (simple queries) and Equation 2
  (branch queries, Node Independence Assumption).
* :mod:`~repro.core.order` — Equations 3-5 for ``folls``/``pres`` queries
  (Node Order Uniformity + Node Containment Uniformity Assumptions).
* :mod:`~repro.core.axis_rewrite` — the Example 5.3 conversion of scoped
  ``foll``/``pre`` edges into sets of sibling-axis queries.
* :class:`~repro.core.system.EstimationSystem` — the user-facing facade:
  build once per document, then estimate any query.
"""

from repro.core.axis_rewrite import rewrite_scoped_order_query
from repro.core.explain import EstimateReport, explain
from repro.core.noorder import estimate_no_order
from repro.core.order import estimate_with_order
from repro.core.pathjoin import JoinResult, path_join
from repro.core.providers import ExactOrderStats, ExactPathStats
from repro.core.system import EstimationSystem

__all__ = [
    "EstimationSystem",
    "explain",
    "EstimateReport",
    "path_join",
    "JoinResult",
    "estimate_no_order",
    "estimate_with_order",
    "rewrite_scoped_order_query",
    "ExactPathStats",
    "ExactOrderStats",
]
