"""The user-facing estimation system.

Build once per document, then estimate any supported query::

    from repro import EstimationSystem
    from repro.xmltree import parse_xml

    document = parse_xml(open("plays.xml").read())
    system = EstimationSystem.build(document, p_variance=0, o_variance=2)
    print(system.estimate("//PLAY/ACT[/SCENE/folls::$EPILOGUE]"))

``build`` runs the whole paper pipeline: path encoding, labeling, the two
statistics tables, p-/o-histograms at the requested variance thresholds and
the compressed path-id binary tree.  ``estimate`` routes a query through
the scoped-axis rewrite, the order estimator or the plain Section 4
machinery as appropriate.

``build`` also accepts XML text or a filesystem path instead of a parsed
document; those sources stream through :mod:`repro.build` (optionally
sharded over ``workers`` processes) without ever materializing the tree,
and produce bit-identical synopses.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, Iterable, List, Optional, Tuple, Union

from dataclasses import replace as _options_replace

from repro._compat import positional_shim, warn_deprecated
from repro.core.axis_rewrite import rewrite_scoped_order_query, scoped_order_edges
from repro.core.options import EstimateOptions, ExecuteOptions, ExplainOptions
from repro.core.noorder import estimate_no_order
from repro.core.order import estimate_with_order, sibling_order_edges
from repro.core.pathjoin import JoinResult, path_join
from repro.core.providers import (
    ExactOrderStats,
    ExactPathStats,
    OrderStatsProvider,
    PathStatsProvider,
)
from repro.core.result import EstimateResult
from repro.obs.providers import TracingOrderStats, TracingPathStats
from repro.obs.trace import NULL_TRACER, Tracer
from repro.semcache import SemanticResultCache, canonical_key, options_fingerprint
from repro.kernel.compiled import SynopsisKernel
from repro.histograms.ohistogram import OHistogramSet
from repro.histograms.phistogram import PHistogramSet
from repro.pathenc.bintree import PathIdBinaryTree
from repro.pathenc.encoding import EncodingTable
from repro.pathenc.labeler import LabeledDocument, label_document
from repro.stats.path_order import PathOrderTable, collect_path_order
from repro.stats.pathid_freq import PathIdFrequencyTable, collect_pathid_frequencies
from repro.xmltree.document import XmlDocument
from repro.xpath.ast import Query
from repro.xpath.parser import parse_query, parse_query_cached

#: Estimation routes, in the order ``estimate`` checks for them.  A query
#: takes exactly one: scoped ``foll``/``pre`` axes go through the Example
#: 5.3 rewrite, sibling ``folls``/``pres`` axes through the Section 5
#: order estimator, everything else through the Section 4 machinery.
ROUTE_SCOPED = "scoped"
ROUTE_ORDER = "order"
ROUTE_NO_ORDER = "no_order"


def _coerce_query(query: Union[str, Query]) -> Query:
    """Accept query text or a parsed AST anywhere a query is expected.

    Strings go through the shared ``lru_cache``'d parser (queries are
    immutable once finalized, so repeated texts share one AST).  Used by
    every public query-taking entry point — ``estimate``, ``join``,
    ``select_route``, ``explain`` — so they are uniformly polymorphic.
    """
    if isinstance(query, str):
        return parse_query_cached(query)
    if isinstance(query, Query):
        return query
    raise TypeError(
        "expected query text or a parsed Query, got %s" % type(query).__name__
    )


class EstimationSystem:
    """Selectivity estimator for XPath expressions with order axes."""

    def __init__(
        self,
        labeled: LabeledDocument,
        pathid_table: PathIdFrequencyTable,
        order_table: PathOrderTable,
        path_provider: PathStatsProvider,
        order_provider: OrderStatsProvider,
        binary_tree: Optional[PathIdBinaryTree] = None,
        name: str = "",
    ):
        self.labeled = labeled
        self.encoding_table = labeled.encoding_table
        self.pathid_table = pathid_table
        self.order_table = order_table
        self.path_provider = path_provider
        self.order_provider = order_provider
        self.binary_tree = binary_tree
        self.name = name or (
            labeled.document.name if labeled.document is not None else ""
        )
        #: Serve joins through the compiled bitset kernel (bit-identical
        #: to the legacy dict pipeline).  Flip to ``False`` to pin the
        #: legacy path — the ablation/benchmark switch.
        self.kernel_enabled = True
        self._kernel: Optional[SynopsisKernel] = None
        self._kernel_lock = threading.Lock()
        #: Canonicalized estimate memoization (repro.semcache): the plain
        #: ``estimate()`` path reads through it; every synopsis swap and
        #: kernel invalidation bumps its generation (O(1) wholesale
        #: invalidation — no entry scans).
        self.semcache = SemanticResultCache()
        # Cost-based planning (repro.plan): one shared planner so its
        # memoized cost model warms up across queries, one processor per
        # served document, and the counters /metrics aggregates.
        from repro.plan.ir import PlannerStats

        self.planner_stats = PlannerStats()
        self._planner = None
        self._processor = None
        self._plan_lock = threading.Lock()

    #: Back-reference to the :class:`repro.cluster.delta.IncrementalSynopsis`
    #: that materialized this system (None for ordinary builds).  Set by
    #: the maintainer; :meth:`apply_delta` routes through it.
    incremental = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        document: Union[XmlDocument, str, "os.PathLike[str]"],
        *args,
        p_variance: float = 0.0,
        o_variance: float = 0.0,
        use_histograms: bool = True,
        build_binary_tree: bool = True,
        depth_refined: bool = False,
        workers: int = 1,
    ) -> "EstimationSystem":
        """Run the full summary-construction pipeline on ``document``.

        All tuning parameters are keyword-only; passing them positionally
        still works but is deprecated and will be removed.

        ``document`` may also be XML text or a filesystem path; those
        sources stream through :class:`repro.build.SynopsisBuilder`
        (sharded over ``workers`` processes when ``workers > 1``) and
        yield a bit-identical synopsis without materializing the tree.

        ``use_histograms=False`` wires the estimator directly to the exact
        statistics tables (useful for testing the estimation formulas in
        isolation); the variance thresholds are then ignored.
        ``depth_refined=True`` (exact mode only) keys path frequencies by
        (pid, depth), removing the recursion ambiguity entirely — the
        Ablation D extension of DESIGN.md §5.
        """
        if args:
            (p_variance, o_variance, use_histograms, build_binary_tree,
             depth_refined, workers) = positional_shim(
                "EstimationSystem.build",
                args,
                ("p_variance", "o_variance", "use_histograms",
                 "build_binary_tree", "depth_refined", "workers"),
                (p_variance, o_variance, use_histograms, build_binary_tree,
                 depth_refined, workers),
            )
        if depth_refined and use_histograms:
            raise ValueError(
                "depth_refined statistics are exact-mode only "
                "(pass use_histograms=False)"
            )
        if not isinstance(document, XmlDocument):
            from repro.build.builder import SynopsisBuilder
            from repro.errors import BuildError

            if depth_refined:
                raise BuildError(
                    "depth_refined statistics need per-node depths and are "
                    "only available for the in-memory tree pipeline"
                )
            return SynopsisBuilder(
                p_variance=p_variance,
                o_variance=o_variance,
                use_histograms=use_histograms,
                build_binary_tree=build_binary_tree,
                workers=workers,
            ).build(document)
        labeled = label_document(document)
        pathid_table = collect_pathid_frequencies(labeled)
        order_table = collect_path_order(labeled)
        if use_histograms:
            phistograms = PHistogramSet.from_table(pathid_table, p_variance)
            ohistograms = OHistogramSet.from_table(order_table, phistograms, o_variance)
            path_provider: PathStatsProvider = phistograms
            order_provider: OrderStatsProvider = ohistograms
        elif depth_refined:
            from repro.stats.depth_refined import DepthRefinedPathStats

            path_provider = DepthRefinedPathStats.collect(labeled)
            order_provider = ExactOrderStats(order_table)
        else:
            path_provider = ExactPathStats(pathid_table)
            order_provider = ExactOrderStats(order_table)
        binary_tree = None
        if build_binary_tree:
            binary_tree = PathIdBinaryTree(
                labeled.distinct_pathids(), labeled.width
            ).compress()
        return cls(
            labeled, pathid_table, order_table, path_provider, order_provider, binary_tree
        )

    @classmethod
    def from_statistics(
        cls,
        encoding_table: EncodingTable,
        pathid_table: PathIdFrequencyTable,
        order_table: PathOrderTable,
        distinct_pathids: Optional[List[int]] = None,
        p_variance: float = 0.0,
        o_variance: float = 0.0,
        use_histograms: bool = True,
        build_binary_tree: bool = True,
        name: str = "",
    ) -> "EstimationSystem":
        """Build from exact tables alone — no document, no per-node labels.

        The construction path of the streaming/sharded builder
        (:mod:`repro.build`): everything downstream of the tables
        (histograms, binary tree, size accounting) only needs the encoding
        table and the distinct path ids, which the frequency table itself
        carries.
        """
        if distinct_pathids is None:
            distinct_pathids = pathid_table.distinct_pathids()
        labeled = LabeledDocument.from_summary(encoding_table, distinct_pathids)
        if use_histograms:
            phistograms = PHistogramSet.from_table(pathid_table, p_variance)
            ohistograms = OHistogramSet.from_table(order_table, phistograms, o_variance)
            path_provider: PathStatsProvider = phistograms
            order_provider: OrderStatsProvider = ohistograms
        else:
            path_provider = ExactPathStats(pathid_table)
            order_provider = ExactOrderStats(order_table)
        binary_tree = None
        if build_binary_tree:
            binary_tree = PathIdBinaryTree(
                list(distinct_pathids), encoding_table.width
            ).compress()
        return cls(
            labeled,
            pathid_table,
            order_table,
            path_provider,
            order_provider,
            binary_tree,
            name=name,
        )

    @classmethod
    def from_tables(
        cls,
        labeled: LabeledDocument,
        pathid_table: PathIdFrequencyTable,
        order_table: PathOrderTable,
        p_variance: float = 0.0,
        o_variance: float = 0.0,
        binary_tree: Optional[PathIdBinaryTree] = None,
    ) -> "EstimationSystem":
        """Build from precollected statistics (variance sweeps reuse the
        expensive one-pass tables and only rebuild the histograms)."""
        phistograms = PHistogramSet.from_table(pathid_table, p_variance)
        ohistograms = OHistogramSet.from_table(order_table, phistograms, o_variance)
        return cls(
            labeled, pathid_table, order_table, phistograms, ohistograms, binary_tree
        )

    # ------------------------------------------------------------------
    # Compiled kernel
    # ------------------------------------------------------------------

    def kernel(self) -> Optional[SynopsisKernel]:
        """The compiled synopsis kernel, built lazily on first use.

        Returns ``None`` when :attr:`kernel_enabled` is off.  The kernel
        compiles per-tag index tables and containment bitmatrices on
        demand (under its own lock, so concurrent service threads share
        one compile), and the default estimation path runs the path join
        on it; results are bit-identical to the legacy pipeline.
        """
        if not self.kernel_enabled:
            return None
        kernel = self._kernel
        if kernel is None:
            with self._kernel_lock:
                kernel = self._kernel
                if kernel is None:
                    kernel = SynopsisKernel(
                        self.encoding_table, self.path_provider, name=self.name
                    )
                    self._kernel = kernel
        return kernel

    def kernel_active(self) -> bool:
        """True when joins on this system are served by the kernel."""
        kernel = self.kernel()
        return kernel is not None and kernel.supports(
            self.path_provider, self.encoding_table
        )

    def adopt_kernel(self, kernel: SynopsisKernel) -> None:
        """Attach a pre-built kernel instead of compiling one lazily.

        The kernelpack loader uses this to hand a system a kernel
        reconstructed zero-copy from a mapped snapshot; ``kernel()``
        then serves it with no compilation ever running in-process.  The
        kernel must have been built for *this* system's provider and
        encoding table — a mismatched kernel would silently produce
        estimates for a different synopsis, so it is rejected here.
        """
        if not kernel.supports(self.path_provider, self.encoding_table):
            raise ValueError(
                "kernel %r was not built for this system's provider/encoding "
                "table" % (kernel.name,)
            )
        with self._kernel_lock:
            previous, self._kernel = self._kernel, kernel
        if previous is not None and previous is not kernel:
            previous.invalidate()

    def kernel_peek(self) -> Optional[SynopsisKernel]:
        """The attached kernel, or ``None`` — never triggers a compile
        (health checks and metrics must not pay the build cost)."""
        return self._kernel

    def kernel_state(self) -> str:
        """Readiness of the compiled kernel, without compiling one.

        ``"disabled"`` (kernel turned off), ``"pending"`` (will compile
        lazily on first estimate), ``"ready"`` (attached and serving),
        ``"stale"`` (invalidated by a reload/append; awaiting
        replacement) or ``"unsupported"`` (attached but cannot serve this
        provider — e.g. depth-refined statistics).  ``/healthz`` exposes
        this per synopsis so load balancers can tell a warmed-up worker
        from one that would eat the compile cost on its next request.
        """
        if not self.kernel_enabled:
            return "disabled"
        kernel = self._kernel
        if kernel is None:
            return "pending"
        if kernel.invalidated:
            return "stale"
        if not kernel.supports(self.path_provider, self.encoding_table):
            return "unsupported"
        return "ready"

    def invalidate_kernel(self) -> bool:
        """Drop the attached kernel (hot reload / live append guard).

        Marks the old kernel stale so captured references fall back to
        the legacy path instead of serving a replaced synopsis; the next
        :meth:`kernel` call compiles a fresh one.  Returns whether a
        kernel was attached.

        This is the single choke point every synopsis-content change
        funnels through (registry hot reload and re-registration, live
        appends, delta refreshes, kernelpack remaps), so it also bumps
        the semantic result cache's generation — cached estimates must
        never outlive the statistics they were computed from.
        """
        self.semcache.bump_generation()
        with self._kernel_lock:
            kernel, self._kernel = self._kernel, None
        planner = self._planner
        if planner is not None:
            planner.cost_model.clear()  # estimates may come from a new synopsis
        if kernel is not None:
            kernel.invalidate()
            return True
        return False

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------

    def apply_delta(self, partial, *, force_refresh: bool = False):
        """Merge a delta :class:`~repro.build.stream.PartialSynopsis`.

        The partial must be a fragment scan (under this document's root
        prefix) of subtrees appended at the end of the document.  Returns
        a :class:`~repro.cluster.delta.DeltaOutcome`; ``outcome.system``
        is the serving system afterwards — a *new* instance when the
        histograms were refreshed (the drift threshold decides), else
        this one.  Only systems built delta-capable — via
        :meth:`repro.cluster.delta.IncrementalSynopsis.build` or loaded
        from a snapshot with an embedded ``incremental`` section — can
        apply deltas; others raise
        :class:`~repro.cluster.delta.DeltaUnsupportedError`.
        """
        from repro.cluster.delta import DeltaUnsupportedError

        maintainer = self.incremental
        if maintainer is None:
            raise DeltaUnsupportedError(
                "system %r carries no incremental state; build it with "
                "IncrementalSynopsis.build (or snapshot --incremental) to "
                "apply deltas" % (self.name,)
            )
        return maintainer.apply(partial, force_refresh=force_refresh)

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------

    def parse(self, text: str) -> Query:
        return parse_query(text)

    @staticmethod
    def select_route(query: Union[str, Query]) -> str:
        """Which estimation route ``estimate`` would take for ``query``.

        One of :data:`ROUTE_SCOPED`, :data:`ROUTE_ORDER`,
        :data:`ROUTE_NO_ORDER`.  Route selection depends only on the query
        shape, so callers (the service plan cache) can compute it once per
        distinct query text.
        """
        parsed = _coerce_query(query)
        if scoped_order_edges(parsed):
            return ROUTE_SCOPED
        if sibling_order_edges(parsed):
            return ROUTE_ORDER
        return ROUTE_NO_ORDER

    def estimate(
        self,
        query: Union[str, Query, List[Union[str, Query]], Tuple],
        *args,
        options: Optional[EstimateOptions] = None,
        fixpoint: Optional[bool] = None,
        depth_consistent: Optional[bool] = None,
    ):
        """Estimate the selectivity of the query's target node.

        The one estimation verb of the unified surface:

        * ``estimate(q)`` → ``float`` — the bare estimate;
        * ``estimate([q1, q2, ...])`` → ``List[float]`` — a batch against
          one shared kernel memo (repeated texts share one cached AST
          and cost one estimate);
        * ``estimate(q, options=EstimateOptions(detail=True))`` →
          :class:`~repro.core.result.EstimateResult` with route and
          timing; ``EstimateOptions(trace=True)`` additionally records
          the span tree.

        ``fixpoint=False`` runs a single path-join pruning pass;
        ``depth_consistent=False`` uses the literal pairwise containment
        test (ablation switches, see DESIGN.md §5; both may be given
        directly or on ``options``).  Passing them positionally is
        deprecated.
        """
        if args:
            fixpoint, depth_consistent = positional_shim(
                "EstimationSystem.estimate",
                args,
                ("fixpoint", "depth_consistent"),
                (fixpoint, depth_consistent),
            )
        opts = options if options is not None else EstimateOptions()
        if fixpoint is not None or depth_consistent is not None:
            opts = _options_replace(
                opts,
                fixpoint=opts.fixpoint if fixpoint is None else fixpoint,
                depth_consistent=(
                    opts.depth_consistent
                    if depth_consistent is None
                    else depth_consistent
                ),
            )
        if isinstance(query, (list, tuple)):
            return self._estimate_many(query, opts)
        if opts.trace or opts.detail:
            # Detail/trace requests bypass the semantic cache: a traced
            # estimate must observe a real execution, and the result
            # object carries per-request timing a shared entry cannot.
            return self._estimate_detail(query, opts)
        return self._estimate_cached(_coerce_query(query), opts)

    def _estimate_cached(self, parsed: Query, opts: EstimateOptions) -> float:
        """Read-through semantic cache around :meth:`_estimate_routed`.

        Branch-sorted (commutative) canonicalization is enabled only on
        the fixpoint path, where the estimate is provably invariant
        under branch reordering (see :mod:`repro.semcache.canonical`);
        single-pass runs still merge textual variants of one tree.

        ``kernel_enabled=False`` is the ablation/benchmark control arm
        and must execute every estimate honestly, so it bypasses the
        cache entirely (no reads, no writes).
        """
        cache = self.semcache
        if not cache.enabled or not self.kernel_enabled:
            return self._estimate_routed(
                parsed,
                self.select_route(parsed),
                fixpoint=opts.fixpoint,
                depth_consistent=opts.depth_consistent,
            )
        key = canonical_key(parsed, commutative=opts.fixpoint)
        fingerprint = options_fingerprint(opts.fixpoint, opts.depth_consistent)
        hit, value = cache.get(key, fingerprint)
        if hit:
            return value
        value = self._estimate_routed(
            parsed,
            self.select_route(parsed),
            fixpoint=opts.fixpoint,
            depth_consistent=opts.depth_consistent,
        )
        cache.put(key, fingerprint, value)
        return value

    def _estimate_detail(
        self, query: Union[str, Query], opts: EstimateOptions
    ) -> EstimateResult:
        """The structured-result estimation path (detail/trace options)."""
        text = query if isinstance(query, str) else getattr(query, "text", "")
        trace = opts.trace
        tracer = Tracer("estimate", seed=(str(text),)) if trace else NULL_TRACER
        start = time.perf_counter()
        with tracer.span("parse"):
            parsed = _coerce_query(query)
        with tracer.span("plan") as plan_span:
            route = self.select_route(parsed)
            plan_span.incr("route_" + route)
        value = self._estimate_routed(
            parsed,
            route,
            fixpoint=opts.fixpoint,
            depth_consistent=opts.depth_consistent,
            tracer=tracer,
        )
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        return EstimateResult(
            value=value,
            query=str(text),
            route=route,
            elapsed_ms=elapsed_ms,
            trace=tracer.finish() if trace else None,
        )

    def _estimate_many(
        self, queries: Iterable[Union[str, Query]], opts: EstimateOptions
    ) -> List[float]:
        """Batch estimation with common-subexpression elimination.

        Batch members are deduplicated by *canonical key* — not object
        identity — so equivalent-but-differently-written duplicates
        cost one estimate, with results fanned back out in input order.
        The within-batch memo works even when the semantic cache is
        disabled; when enabled, each distinct key also reads through it.
        """
        cache = self.semcache
        use_cache = cache.enabled and self.kernel_enabled
        fingerprint = options_fingerprint(opts.fixpoint, opts.depth_consistent)
        memo: Dict[str, float] = {}
        values: List[float] = []
        for query in queries:
            parsed = _coerce_query(query)
            key = canonical_key(parsed, commutative=opts.fixpoint)
            value = memo.get(key)
            if value is None:
                hit = False
                if use_cache:
                    hit, value = cache.get(key, fingerprint)
                if not hit:
                    value = self._estimate_routed(
                        parsed,
                        self.select_route(parsed),
                        fixpoint=opts.fixpoint,
                        depth_consistent=opts.depth_consistent,
                    )
                    if use_cache:
                        cache.put(key, fingerprint, value)
                memo[key] = value
            values.append(value)
        return values

    def query(
        self,
        query: Union[str, Query],
        *,
        trace: bool = False,
        fixpoint: bool = True,
        depth_consistent: bool = True,
    ) -> EstimateResult:
        """Deprecated alias of :meth:`estimate` with ``detail=True``.

        .. deprecated:: 1.3
           Use ``estimate(q, options=EstimateOptions(detail=True,
           trace=...))`` — one verb, one options object.
        """
        warn_deprecated(
            "EstimationSystem.query()",
            "estimate(query, options=EstimateOptions(detail=True))",
        )
        return self._estimate_detail(
            query,
            EstimateOptions(
                fixpoint=fixpoint,
                depth_consistent=depth_consistent,
                detail=True,
                trace=trace,
            ),
        )

    def estimate_routed(
        self,
        parsed: Query,
        route: str,
        fixpoint: bool = True,
        depth_consistent: bool = True,
        tracer=NULL_TRACER,
    ) -> float:
        """Deprecated public alias of the internal routed estimation.

        .. deprecated:: 1.3
           Route precomputation is a service-internal optimization;
           external callers should use :meth:`estimate`.
        """
        warn_deprecated(
            "EstimationSystem.estimate_routed()", "estimate(query)"
        )
        return self._estimate_routed(
            parsed, route,
            fixpoint=fixpoint, depth_consistent=depth_consistent, tracer=tracer,
        )

    def _estimate_routed(
        self,
        parsed: Query,
        route: str,
        fixpoint: bool = True,
        depth_consistent: bool = True,
        tracer=NULL_TRACER,
    ) -> float:
        """Estimate along a precomputed route, skipping edge re-scans.

        ``route`` must be ``select_route(parsed)``; the service's compiled
        plans call this directly with the cached (AST, route) pair.  When a
        live ``tracer`` is passed, the statistics providers are wrapped so
        histogram lookups appear as spans with bucket/cell counters.
        """
        path_provider = self.path_provider
        order_provider = self.order_provider
        if tracer.enabled:
            path_provider = TracingPathStats(path_provider, tracer)
            order_provider = TracingOrderStats(order_provider, tracer)
        kernel = self.kernel() if fixpoint and depth_consistent else None
        return self._estimate_routed_with(
            parsed, route, path_provider, order_provider,
            fixpoint, depth_consistent, tracer, kernel,
        )

    def _estimate_routed_with(
        self,
        parsed: Query,
        route: str,
        path_provider: PathStatsProvider,
        order_provider: OrderStatsProvider,
        fixpoint: bool,
        depth_consistent: bool,
        tracer,
        kernel=None,
    ) -> float:
        """Route dispatch over explicit (possibly tracing) providers."""
        if route == ROUTE_SCOPED:
            variants = rewrite_scoped_order_query(
                parsed, path_provider, self.encoding_table,
                fixpoint=fixpoint, depth_consistent=depth_consistent,
                tracer=tracer, kernel=kernel,
            )
            return sum(
                self._estimate_routed_with(
                    variant,
                    self.select_route(variant),
                    path_provider,
                    order_provider,
                    fixpoint,
                    depth_consistent,
                    tracer,
                    kernel,
                )
                for variant in variants
            )
        if route == ROUTE_ORDER:
            return estimate_with_order(
                parsed,
                path_provider,
                order_provider,
                self.encoding_table,
                fixpoint=fixpoint,
                depth_consistent=depth_consistent,
                tracer=tracer,
                kernel=kernel,
            )
        if route != ROUTE_NO_ORDER:
            raise ValueError("unknown estimation route %r" % route)
        return estimate_no_order(
            parsed, path_provider, self.encoding_table,
            fixpoint=fixpoint, depth_consistent=depth_consistent,
            tracer=tracer, kernel=kernel,
        )

    def estimate_batch(self, queries: Iterable[Union[str, Query]]) -> List[float]:
        """Deprecated alias of :meth:`estimate` over a list.

        .. deprecated:: 1.3
           ``estimate`` is polymorphic: pass the list directly.
        """
        warn_deprecated(
            "EstimationSystem.estimate_batch()", "estimate([query, ...])"
        )
        return self._estimate_many(queries, EstimateOptions())

    def join(
        self,
        query: Union[str, Query],
        fixpoint: bool = True,
        depth_consistent: bool = True,
    ) -> JoinResult:
        """Expose the raw path join (used by tests and examples)."""
        parsed = _coerce_query(query)
        kernel = self.kernel() if fixpoint and depth_consistent else None
        return path_join(
            parsed, self.path_provider, self.encoding_table,
            fixpoint=fixpoint, depth_consistent=depth_consistent,
            kernel=kernel,
        )

    # ------------------------------------------------------------------
    # Execution and plans (repro.plan)
    # ------------------------------------------------------------------

    def planner(self):
        """The shared :class:`~repro.plan.planner.CostBasedPlanner`.

        Built lazily; lives as long as the system so its memoized cost
        model amortizes sub-pattern estimates across queries and
        replans.
        """
        planner = self._planner
        if planner is None:
            from repro.plan.planner import CostBasedPlanner

            with self._plan_lock:
                planner = self._planner
                if planner is None:
                    planner = CostBasedPlanner(self)
                    self._planner = planner
        return planner

    def execute(
        self,
        query: Union[str, Query],
        *,
        options: Optional[ExecuteOptions] = None,
        document: Optional[XmlDocument] = None,
    ):
        """Plan and run ``query``, returning matches plus the estimate.

        Builds a cost-based :class:`~repro.plan.ir.Plan` (join orders
        chosen by kernel estimates), executes it through the structural
        semijoin machinery with adaptive re-optimization, and returns an
        :class:`~repro.plan.ir.ExecutionResult`: the exact matching
        pre-orders, the structured estimate for the same query, and the
        executed plan with per-step observed cardinalities.

        Needs a document: the one this system was built from, or an
        explicit ``document=`` override (useful to run one synopsis's
        plans against another tree).  Statistics-only systems (streamed
        builds, snapshots) raise
        :class:`~repro.errors.ExecutionUnsupportedError` — kind
        ``"execute_unsupported"`` on the wire.
        """
        from repro.plan.executor import AdaptivePlanExecutor
        from repro.plan.ir import ExecutionResult

        opts = options if options is not None else ExecuteOptions()
        parsed = _coerce_query(query)
        target_document = document if document is not None else self.labeled.document
        if target_document is None:
            from repro.errors import ExecutionUnsupportedError

            raise ExecutionUnsupportedError(
                "system %r has no document to execute against (statistics-"
                "only build); pass document= or build from a parsed tree"
                % (self.name,)
            )
        start = time.perf_counter()
        planner = self.planner()
        plan = planner.plan(
            parsed,
            use_path_ids=opts.use_path_ids,
            naive_order=opts.naive_order,
            drift_threshold=opts.drift_threshold,
        )
        self.planner_stats.record_plan(plan)
        executor = AdaptivePlanExecutor(
            planner,
            self._processor_for(target_document),
            adaptive=opts.adaptive,
            max_replans=opts.max_replans,
        )
        matches = executor.run(plan, parsed)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        self.planner_stats.record_execution(plan)
        estimate = EstimateResult(
            value=plan.est_cardinality,
            query=parsed.to_string(),
            route=self.select_route(parsed),
            elapsed_ms=elapsed_ms,
        )
        return ExecutionResult(
            matches=matches, estimate=estimate, plan=plan, elapsed_ms=elapsed_ms
        )

    def explain(
        self,
        query: Union[str, Query],
        *,
        options: Optional[ExplainOptions] = None,
        document: Optional[XmlDocument] = None,
    ):
        """The :class:`~repro.plan.ir.Plan` ``execute`` would run.

        Pure planning needs no document (estimates only);
        ``ExplainOptions(analyze=True)`` also executes the plan so every
        step carries observed cardinalities.  For the formula-level
        narrative of *how the estimate itself* was derived, see
        :func:`repro.core.explain.explain`.
        """
        from repro.core.explain import explain_plan

        return explain_plan(self, query, options=options, document=document)

    def _processor_for(self, document: XmlDocument):
        """The semijoin processor serving ``document``.

        The system's own document gets one cached processor (its
        interval index and path-id machinery warm up once); overrides
        get a fresh instance.
        """
        from repro.queryproc.processor import StructuralJoinProcessor

        if document is not self.labeled.document:
            return StructuralJoinProcessor(document)
        processor = self._processor
        if processor is None:
            with self._plan_lock:
                processor = self._processor
                if processor is None:
                    processor = StructuralJoinProcessor(document, self.labeled)
                    self._processor = processor
        return processor

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    def summary_sizes(self) -> Dict[str, float]:
        """Byte sizes of every summary structure (Tables 3-5, Figure 9)."""
        sizes: Dict[str, float] = {
            "encoding_table": float(self.encoding_table.size_bytes()),
            "pathid_table": float(self.labeled.pathid_table_size_bytes()),
        }
        if self.binary_tree is not None:
            sizes["binary_tree"] = float(self.binary_tree.size_bytes())
        pid_bytes = self.labeled.pathid_size_bytes()
        if isinstance(self.path_provider, PHistogramSet):
            sizes["p_histogram"] = float(self.path_provider.size_bytes(pid_bytes))
        if isinstance(self.order_provider, OHistogramSet):
            sizes["o_histogram"] = float(self.order_provider.size_bytes())
        return sizes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<EstimationSystem over %r>" % self.labeled.document
