"""The structured result of one estimation: value + context + trace.

:class:`EstimateResult` is what :meth:`EstimationSystem.query` returns
and what the service's versioned ``result`` wire object carries.  It is
immutable, float-coercible (``float(result) == result.value``, so code
written against the bare-float ``estimate()`` era keeps working on it)
and round-trips through JSON via :meth:`as_dict` / :meth:`from_dict`.

``RESULT_FORMAT_VERSION`` versions the wire shape independently of the
synopsis format: consumers check ``result["version"]`` before trusting
field semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

__all__ = ["EstimateResult", "RESULT_FORMAT_VERSION"]

#: Version of the ``result`` wire object.  Version 2 promotes it to the
#: primary estimate payload (the legacy top-level mirror fields became
#: optional compat output) and adds the ``kernel`` field.
RESULT_FORMAT_VERSION = 2


@dataclass(frozen=True)
class EstimateResult:
    """One estimate with its execution context.

    value:
        The selectivity estimate (what ``estimate()`` used to return).
    query:
        The query text the estimate answers.
    route:
        The estimation route taken (``"no_order"`` / ``"order"`` /
        ``"scoped"``), empty when unknown (e.g. deserialized from an
        older server).
    elapsed_ms:
        Wall time of this estimation, in milliseconds.
    trace:
        The span tree (see :mod:`repro.obs.trace`) when tracing was
        requested, else ``None``.
    cached:
        Legacy boolean, kept as a compat alias of ``cache["plan"]``:
        whether the compiled-plan cache served the estimate (service
        responses only; ``None`` for direct in-process estimation).
    cache:
        Structured cache attribution (service responses only):
        ``{"plan": bool, "result": bool}`` — whether the compiled-plan
        cache hit and whether the semantic result cache (or the
        within-batch CSE memo) served the value.  ``None`` when
        unknown (direct estimation or a pre-semcache server).
    kernel:
        Whether a compiled synopsis kernel executed the estimate
        (service responses only; ``None`` when unknown, e.g. direct
        in-process estimation or a version-1 server).
    tier:
        The QoS admission tier this estimate was served under
        (``"interactive"`` / ``"standard"`` / ``"bulk"``); ``None``
        when the server ran without tiered admission or the result
        predates tiers.
    """

    value: float
    query: str = ""
    route: str = ""
    elapsed_ms: float = 0.0
    trace: Optional[Dict[str, Any]] = None
    cached: Optional[bool] = None
    kernel: Optional[bool] = None
    tier: Optional[str] = None
    cache: Optional[Dict[str, bool]] = None

    def __float__(self) -> float:
        return float(self.value)

    @property
    def trace_id(self) -> str:
        """The trace id, when this result carries a trace."""
        if self.trace is None:
            return ""
        return str(self.trace.get("trace_id", ""))

    def as_dict(self) -> Dict[str, Any]:
        """The versioned wire object (the service's ``result`` field)."""
        payload: Dict[str, Any] = {
            "version": RESULT_FORMAT_VERSION,
            "value": self.value,
            "query": self.query,
            "route": self.route,
            "elapsed_ms": self.elapsed_ms,
        }
        if self.cached is not None:
            payload["cached"] = self.cached
        if self.cache is not None:
            payload["cache"] = dict(self.cache)
        if self.kernel is not None:
            payload["kernel"] = self.kernel
        if self.tier is not None:
            payload["tier"] = self.tier
        if self.trace is not None:
            payload["trace"] = self.trace
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "EstimateResult":
        """Rebuild from a wire object (ignores unknown fields)."""
        return cls(
            value=float(payload["value"]),
            query=str(payload.get("query", "")),
            route=str(payload.get("route", "")),
            elapsed_ms=float(payload.get("elapsed_ms", 0.0)),
            trace=payload.get("trace"),
            cached=payload.get("cached"),
            kernel=payload.get("kernel"),
            tier=payload.get("tier"),
            cache=payload.get("cache"),
        )
