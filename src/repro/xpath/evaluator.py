"""Exact evaluation of query patterns — the ground truth for all experiments.

Selectivity of a pattern node ``n`` (the paper's ``S_Q(n)``) is the number
of distinct document nodes that play the role of ``n`` in at least one full
embedding of the pattern.  For tree-shaped patterns this is computable with
the classic two-pass scheme:

1. **bottom-up**: ``cand[p]`` = document nodes satisfying ``p``'s tag and
   all requirements of ``p``'s pattern subtree;
2. **top-down**: ``valid[p]`` = members of ``cand[p]`` reachable from a
   valid parent along the connecting axis.

Both passes use per-tag node lists, subtree pre-order intervals and
per-parent sibling-index extrema, so one query costs roughly
O(Σ_p |nodes with tag(p)| · depth) — fast enough to ground-truth thousands
of workload queries.

``following``/``preceding`` ground truth follows the paper's *scoped*
semantics by default (Example 5.3: the axis node lives in the subtree of a
following/preceding **sibling** of the context node).  Pass
``scoped_following=False`` for full XPath document-order semantics; the
difference is quantified in ``tests/xpath/test_evaluator_following.py``.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Set

from repro.xmltree.document import XmlDocument
from repro.xmltree.node import XmlNode
from repro.xpath.ast import Query, QueryAxis, QueryNode


class Evaluator:
    """Exact selectivity computation bound to one document."""

    def __init__(self, document: XmlDocument, scoped_following: bool = True):
        self.document = document
        self.scoped_following = scoped_following
        self._nodes: List[XmlNode] = list(document)
        # subtree interval: descendants of d have pre in (d.pre, end[d.pre))
        self._end = self._compute_subtree_ends()

    def _compute_subtree_ends(self) -> List[int]:
        end = [0] * len(self._nodes)
        for node in reversed(self._nodes):
            last = node.pre + 1
            if node.children:
                last = end[node.children[-1].pre]
            end[node.pre] = last
        return end

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def selectivity(self, query: Query, node: Optional[QueryNode] = None) -> int:
        """Exact ``S_Q(n)``; ``node`` defaults to the query target."""
        return len(self.matching_pres(query, node if node is not None else query.target))

    def selectivities(self, query: Query) -> Dict[int, int]:
        """Exact selectivity of *every* pattern node, keyed by node_id."""
        valid = self._evaluate(query)
        return {p.node_id: len(valid[p.node_id]) for p in query.nodes()}

    def matching_nodes(self, query: Query, node: Optional[QueryNode] = None) -> List[XmlNode]:
        pres = self.matching_pres(query, node if node is not None else query.target)
        return [self._nodes[pre] for pre in sorted(pres)]

    def matching_pres(self, query: Query, node: QueryNode) -> Set[int]:
        """Pre-order numbers of document nodes matching pattern ``node``."""
        return self._evaluate(query)[node.node_id]

    # ------------------------------------------------------------------
    # Two-pass evaluation
    # ------------------------------------------------------------------

    def _evaluate(self, query: Query) -> List[Set[int]]:
        order = query.nodes()  # DFS pre-order: parents before children
        cand: List[Set[int]] = [set() for _ in order]
        for p in reversed(order):
            cand[p.node_id] = self._bottom_up(p, cand)
        valid: List[Set[int]] = [set() for _ in order]
        valid[query.root.node_id] = self._root_filter(query, cand[query.root.node_id])
        for p in order:
            for edge in p.edges:
                valid[edge.node.node_id] = self._top_down(
                    edge.axis, valid[p.node_id], cand[edge.node.node_id]
                )
        return valid

    def _root_filter(self, query: Query, roots: Set[int]) -> Set[int]:
        if query.root_axis is QueryAxis.CHILD:
            # Absolute /step: the step must be the document root element.
            root_pre = self.document.root.pre
            return {pre for pre in roots if pre == root_pre}
        return set(roots)

    # -- bottom-up -------------------------------------------------------

    def _bottom_up(self, p: QueryNode, cand: List[Set[int]]) -> Set[int]:
        result = {node.pre for node in self.document.nodes_with_tag(p.tag)}
        for edge in p.edges:
            if not result:
                break
            child_set = cand[edge.node.node_id]
            if not child_set:
                return set()
            result = self._filter_down(edge.axis, result, child_set)
        return result

    def _filter_down(self, axis: QueryAxis, sources: Set[int], targets: Set[int]) -> Set[int]:
        """Keep sources that can reach some target via ``axis``."""
        nodes = self._nodes
        if axis is QueryAxis.CHILD:
            parents = set()
            for pre in targets:
                parent = nodes[pre].parent
                if parent is not None:
                    parents.add(parent.pre)
            return sources & parents
        if axis is QueryAxis.DESCENDANT:
            ordered = sorted(targets)
            end = self._end
            kept = set()
            for pre in sources:
                index = bisect_right(ordered, pre)
                if index < len(ordered) and ordered[index] < end[pre]:
                    kept.add(pre)
            return kept
        if axis is QueryAxis.FOLLS:
            max_index = self._sibling_extreme(targets, want_max=True)
            return {
                pre
                for pre in sources
                if self._parent_pre(pre) in max_index
                and max_index[self._parent_pre(pre)] > nodes[pre].sibling_index
            }
        if axis is QueryAxis.PRES:
            min_index = self._sibling_extreme(targets, want_max=False)
            return {
                pre
                for pre in sources
                if self._parent_pre(pre) in min_index
                and min_index[self._parent_pre(pre)] < nodes[pre].sibling_index
            }
        if axis is QueryAxis.FOLL:
            if not self.scoped_following:
                # d has a following node in targets iff some target starts
                # at or after end[d]; "max target pre" is what matters.
                max_pre = max(targets)
                return {pre for pre in sources if max_pre >= self._end[pre]}
            anchor_max = self._anchor_extreme(targets, want_max=True)
            return {
                pre
                for pre in sources
                if self._parent_pre(pre) in anchor_max
                and anchor_max[self._parent_pre(pre)] > nodes[pre].sibling_index
            }
        if axis is QueryAxis.PRE:
            if not self.scoped_following:
                min_pre = min(targets)
                # e precedes d iff e is before d and not an ancestor:
                # end[e] <= pre(d).  Keep d if some target ends before it.
                min_end = min(self._end[pre] for pre in targets)
                return {pre for pre in sources if min_end <= pre}
            anchor_min = self._anchor_extreme(targets, want_max=False)
            return {
                pre
                for pre in sources
                if self._parent_pre(pre) in anchor_min
                and anchor_min[self._parent_pre(pre)] < nodes[pre].sibling_index
            }
        raise AssertionError("unhandled axis %r" % axis)

    # -- top-down --------------------------------------------------------

    def _top_down(self, axis: QueryAxis, valid_parents: Set[int], candidates: Set[int]) -> Set[int]:
        """Keep candidates reachable *from* a valid parent via ``axis``."""
        nodes = self._nodes
        if not valid_parents:
            return set()
        if axis is QueryAxis.CHILD:
            return {
                pre for pre in candidates if self._parent_pre(pre) in valid_parents
            }
        if axis is QueryAxis.DESCENDANT:
            kept = set()
            for pre in candidates:
                node = nodes[pre].parent
                while node is not None:
                    if node.pre in valid_parents:
                        kept.add(pre)
                        break
                    node = node.parent
            return kept
        if axis is QueryAxis.FOLLS:
            # candidate e needs a *preceding* sibling among valid parents
            min_index = self._sibling_extreme(valid_parents, want_max=False)
            return {
                pre
                for pre in candidates
                if self._parent_pre(pre) in min_index
                and min_index[self._parent_pre(pre)] < nodes[pre].sibling_index
            }
        if axis is QueryAxis.PRES:
            max_index = self._sibling_extreme(valid_parents, want_max=True)
            return {
                pre
                for pre in candidates
                if self._parent_pre(pre) in max_index
                and max_index[self._parent_pre(pre)] > nodes[pre].sibling_index
            }
        if axis is QueryAxis.FOLL:
            if not self.scoped_following:
                min_end = min(self._end[pre] for pre in valid_parents)
                return {pre for pre in candidates if pre >= min_end}
            min_index = self._sibling_extreme(valid_parents, want_max=False)
            return self._with_qualifying_anchor(candidates, min_index, want_smaller=True)
        if axis is QueryAxis.PRE:
            if not self.scoped_following:
                max_pre = max(valid_parents)
                return {pre for pre in candidates if self._end[pre] <= max_pre}
            max_index = self._sibling_extreme(valid_parents, want_max=True)
            return self._with_qualifying_anchor(candidates, max_index, want_smaller=False)
        raise AssertionError("unhandled axis %r" % axis)

    # -- helpers -----------------------------------------------------------

    def _parent_pre(self, pre: int) -> int:
        parent = self._nodes[pre].parent
        return parent.pre if parent is not None else -1

    def _sibling_extreme(self, pres: Set[int], want_max: bool) -> Dict[int, int]:
        """Per-parent max/min sibling index over the given nodes."""
        extreme: Dict[int, int] = {}
        nodes = self._nodes
        for pre in pres:
            node = nodes[pre]
            parent = node.parent
            if parent is None:
                continue
            current = extreme.get(parent.pre)
            index = node.sibling_index
            if current is None or (index > current if want_max else index < current):
                extreme[parent.pre] = index
        return extreme

    def _anchor_extreme(self, targets: Set[int], want_max: bool) -> Dict[int, int]:
        """Per-parent extreme of *anchor* indices for scoped foll/pre.

        An anchor of target ``e`` is any ancestor-or-self ``a`` of ``e``;
        the context node needs a sibling anchor beyond its own index.
        """
        extreme: Dict[int, int] = {}
        nodes = self._nodes
        for pre in targets:
            node: Optional[XmlNode] = nodes[pre]
            while node is not None and node.parent is not None:
                parent_pre = node.parent.pre
                index = node.sibling_index
                current = extreme.get(parent_pre)
                if current is None or (index > current if want_max else index < current):
                    extreme[parent_pre] = index
                node = node.parent
        return extreme

    def _with_qualifying_anchor(
        self, candidates: Set[int], extreme: Dict[int, int], want_smaller: bool
    ) -> Set[int]:
        """Candidates with an ancestor-or-self whose parent has a valid
        sibling before (``want_smaller``) / after it."""
        kept = set()
        nodes = self._nodes
        for pre in candidates:
            node: Optional[XmlNode] = nodes[pre]
            while node is not None and node.parent is not None:
                bound = extreme.get(node.parent.pre)
                if bound is not None:
                    if want_smaller and bound < node.sibling_index:
                        kept.add(pre)
                        break
                    if not want_smaller and bound > node.sibling_index:
                        kept.add(pre)
                        break
                node = node.parent
        return kept
