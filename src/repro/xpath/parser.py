"""Recursive-descent parser for the paper's XPath subset.

Accepted syntax (examples)::

    //A/B/D                    simple query (child steps after a // start)
    /Root//C                   absolute start, descendant step
    //A[/C/F]/B/D              branch query (Figure 3)
    //A[/C[/F]/folls::B/D]     order query (Figure 5); 'folls'/'pres' are
                               the paper's shorthands, long spellings
                               'following-sibling::'/'preceding-sibling::'
                               work too
    //A[/C/foll::D]            scoped following axis (Example 5.3)
    //A[/C/folls::$B/D]        explicit target marker '$'

Without a marker the target defaults to the last trunk node, matching the
paper's convention for ``q1[/q2]/q3``-style patterns.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, NamedTuple, Optional, Tuple

from repro.errors import QuerySyntaxError
from repro.xpath.ast import Query, QueryAxis, QueryNode


class XPathSyntaxError(QuerySyntaxError):
    """Raised on malformed query text, with the offset of the problem."""

    def __init__(self, message: str, position: int):
        super().__init__("%s (at offset %d)" % (message, position))
        self.raw_message = message
        self.position = position

    def __reduce__(self):
        # Mirrors XmlParseError: two-argument __init__ needs explicit
        # pickle support so the error survives process boundaries.
        return (type(self), (self.raw_message, self.position))


class _Token(NamedTuple):
    kind: str  # 'sep', '[', ']', '$', 'name'
    value: object
    position: int


# Longest-match-first axis spellings (after a '/').
_AXIS_SPELLINGS: List[Tuple[str, QueryAxis]] = [
    ("following-sibling::", QueryAxis.FOLLS),
    ("preceding-sibling::", QueryAxis.PRES),
    ("following::", QueryAxis.FOLL),
    ("preceding::", QueryAxis.PRE),
    ("descendant::", QueryAxis.DESCENDANT),
    ("child::", QueryAxis.CHILD),
    ("folls::", QueryAxis.FOLLS),
    ("pres::", QueryAxis.PRES),
    ("foll::", QueryAxis.FOLL),
    ("pre::", QueryAxis.PRE),
]


def _is_name_char(char: str) -> bool:
    return char.isalnum() or char in "_.-"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    i = 0
    length = len(text)
    while i < length:
        char = text[i]
        if char.isspace():
            i += 1
            continue
        if char == "/":
            start = i
            double = text.startswith("//", i)
            i += 2 if double else 1
            axis = QueryAxis.DESCENDANT if double else QueryAxis.CHILD
            if not double:
                for spelling, spelled_axis in _AXIS_SPELLINGS:
                    if text.startswith(spelling, i):
                        axis = spelled_axis
                        i += len(spelling)
                        break
            tokens.append(_Token("sep", axis, start))
        elif char == "[":
            tokens.append(_Token("[", None, i))
            i += 1
        elif char == "]":
            tokens.append(_Token("]", None, i))
            i += 1
        elif char == "$":
            tokens.append(_Token("$", None, i))
            i += 1
        elif _is_name_char(char):
            start = i
            while i < length and _is_name_char(text[i]):
                i += 1
            tokens.append(_Token("name", text[start:i], start))
        else:
            raise XPathSyntaxError("unexpected character %r" % char, i)
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token], text_length: int):
        self.tokens = tokens
        self.pos = 0
        self.text_length = text_length
        self.target: Optional[QueryNode] = None

    # -- token helpers ----------------------------------------------------

    def _peek(self) -> Optional[_Token]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise XPathSyntaxError("unexpected end of query", self.text_length)
        self.pos += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise XPathSyntaxError(
                "expected %r, found %r" % (kind, token.kind), token.position
            )
        return token

    # -- grammar ------------------------------------------------------------

    def parse_query(self) -> Query:
        first = self._next()
        if first.kind != "sep" or not first.value.is_structural:  # type: ignore[union-attr]
            raise XPathSyntaxError("query must start with / or //", first.position)
        root_axis: QueryAxis = first.value  # type: ignore[assignment]
        root = self._parse_step()
        self._parse_chain(root)
        token = self._peek()
        if token is not None:
            raise XPathSyntaxError("trailing content", token.position)
        return Query(root, root_axis, target=self.target)

    def _parse_step(self) -> QueryNode:
        token = self._next()
        is_target = False
        if token.kind == "$":
            is_target = True
            token = self._next()
        if token.kind != "name":
            raise XPathSyntaxError("expected an element name", token.position)
        node = QueryNode(str(token.value))
        if is_target:
            if self.target is not None:
                raise XPathSyntaxError("multiple $ target markers", token.position)
            self.target = node
        while True:
            look = self._peek()
            if look is None or look.kind != "[":
                return node
            self._next()
            self._parse_predicate(node)

    def _parse_predicate(self, owner: QueryNode) -> None:
        look = self._peek()
        if look is None:
            raise XPathSyntaxError("unterminated predicate", self.text_length)
        axis = QueryAxis.CHILD
        if look.kind == "sep":
            axis = look.value  # type: ignore[assignment]
            self._next()
        head = self._parse_step()
        owner.add_edge(axis, head, is_predicate=True)
        self._parse_chain(head)
        self._expect("]")

    def _parse_chain(self, head: QueryNode) -> None:
        """Parse ``(separator step)*`` attaching inline continuations."""
        node = head
        while True:
            look = self._peek()
            if look is None or look.kind != "sep":
                return
            self._next()
            axis: QueryAxis = look.value  # type: ignore[assignment]
            child = self._parse_step()
            node.add_edge(axis, child, is_predicate=False)
            node = child


def parse_query(text: str) -> Query:
    """Parse query text into a :class:`~repro.xpath.ast.Query`."""
    if not text or not text.strip():
        raise XPathSyntaxError("empty query", 0)
    return _Parser(_tokenize(text), len(text)).parse_query()


@lru_cache(maxsize=4096)
def parse_query_cached(text: str) -> Query:
    """Memoized :func:`parse_query` for repeated workload queries.

    Queries are immutable after finalization (estimation clones before any
    rewrite), so one shared AST per distinct text is safe — including
    across threads and across estimation systems.
    """
    return parse_query(text)
