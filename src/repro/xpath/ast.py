"""Query AST for the XPath subset of the paper.

A query is a tree of :class:`QueryNode`\\ s connected by typed
:class:`Edge`\\ s.  The edge axis states how the *child* node relates to its
*edge parent*:

* ``CHILD`` / ``DESCENDANT`` — the usual downward structural axes;
* ``FOLLS`` / ``PRES`` — the child pattern node is a **sibling** of the edge
  parent (shares its structural parent) occurring after / before it;
* ``FOLL`` / ``PRE`` — the scoped ``following`` / ``preceding`` axes of
  Example 5.3: the child node occurs in the subtree of a following /
  preceding sibling of the edge parent.

Edges additionally carry ``is_predicate``: a predicate edge renders inside
``[...]`` and hangs a *branch* off its parent, while the single inline
(non-predicate) edge of a node continues the *trunk*.  The distinction does
not affect matching semantics, but it decides the default target node (the
last trunk node, as the paper standardizes) and faithful round-tripping.

The paper's standardized order query ``q1[/q2/folls::q3]`` parses into:
the last node of ``q1`` has a predicate edge to ``first(q2)``;
``first(q2)`` has an inline ``FOLLS`` edge to ``first(q3)``.
"""

from __future__ import annotations

import enum
from typing import Iterator, List, NamedTuple, Optional, Tuple


class QueryAxis(enum.Enum):
    """Edge axes of the query pattern tree."""

    CHILD = "/"
    DESCENDANT = "//"
    FOLLS = "folls"
    PRES = "pres"
    FOLL = "foll"
    PRE = "pre"

    @property
    def is_structural(self) -> bool:
        """Downward axis (child/descendant)?"""
        return self in (QueryAxis.CHILD, QueryAxis.DESCENDANT)

    @property
    def is_sibling_order(self) -> bool:
        return self in (QueryAxis.FOLLS, QueryAxis.PRES)

    @property
    def is_scoped_order(self) -> bool:
        return self in (QueryAxis.FOLL, QueryAxis.PRE)

    @property
    def is_forward(self) -> bool:
        """Does the axis point to nodes occurring *after* the source?"""
        return self in (QueryAxis.FOLLS, QueryAxis.FOLL)


class Edge(NamedTuple):
    """A typed edge of the pattern tree."""

    axis: QueryAxis
    node: "QueryNode"
    is_predicate: bool


class QueryNode:
    """One pattern node: a tag test plus outgoing typed edges."""

    __slots__ = ("tag", "edges", "node_id")

    def __init__(self, tag: str):
        if not tag:
            raise ValueError("query node needs a tag")
        self.tag = tag
        self.edges: List[Edge] = []
        self.node_id = -1  # assigned when the Query is finalized

    def add_edge(self, axis: QueryAxis, child: "QueryNode", is_predicate: bool) -> "QueryNode":
        """Attach ``child``; at most one inline (non-predicate) edge allowed."""
        if not is_predicate and self.inline_edge() is not None:
            raise ValueError("node %r already has an inline continuation" % self.tag)
        self.edges.append(Edge(axis, child, is_predicate))
        return child

    def inline_edge(self) -> Optional[Edge]:
        """The single non-predicate (trunk-continuing) edge, if any."""
        for edge in self.edges:
            if not edge.is_predicate:
                return edge
        return None

    def predicate_edges(self) -> List[Edge]:
        return [edge for edge in self.edges if edge.is_predicate]

    def structural_edges(self) -> List[Edge]:
        return [edge for edge in self.edges if edge.axis.is_structural]

    def order_edges(self) -> List[Edge]:
        return [edge for edge in self.edges if not edge.axis.is_structural]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<QueryNode %s #%d, %d edges>" % (self.tag, self.node_id, len(self.edges))


class Query:
    """A finalized query pattern.

    Attributes
    ----------
    root:
        The first step's pattern node.
    root_axis:
        How the first step relates to the document: ``CHILD`` for an
        absolute ``/step`` (the step must be the document root element),
        ``DESCENDANT`` for ``//step``.
    target:
        The pattern node whose selectivity is estimated.
    """

    def __init__(self, root: QueryNode, root_axis: QueryAxis, target: Optional[QueryNode] = None):
        if not root_axis.is_structural:
            raise ValueError("the first step must use / or //")
        self.root = root
        self.root_axis = root_axis
        self._nodes: List[QueryNode] = []
        self._parents: List[Optional[Tuple[QueryAxis, QueryNode]]] = []
        self._index(root)
        self.target = target if target is not None else self._default_target()
        if self.target.node_id >= len(self._nodes) or self._nodes[self.target.node_id] is not self.target:
            raise ValueError("target node is not part of the query")

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------

    def _index(self, root: QueryNode) -> None:
        stack: List[Tuple[QueryNode, Optional[Tuple[QueryAxis, QueryNode]]]] = [(root, None)]
        while stack:
            node, parent_link = stack.pop()
            node.node_id = len(self._nodes)
            self._nodes.append(node)
            self._parents.append(parent_link)
            for edge in reversed(node.edges):
                stack.append((edge.node, (edge.axis, node)))

    def _default_target(self) -> QueryNode:
        """The last trunk node: follow inline *structural* edges from root."""
        node = self.root
        while True:
            inline = node.inline_edge()
            if inline is None or not inline.axis.is_structural:
                return node
            node = inline.node

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def nodes(self) -> List[QueryNode]:
        """All pattern nodes in depth-first order."""
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def parent_link(self, node: QueryNode) -> Optional[Tuple[QueryAxis, QueryNode]]:
        """(axis, edge-parent) of ``node``; ``None`` for the root."""
        return self._parents[node.node_id]

    def spine_to(self, node: QueryNode) -> List[QueryNode]:
        """Pattern nodes from the root down to ``node`` (inclusive)."""
        chain = [node]
        link = self._parents[node.node_id]
        while link is not None:
            chain.append(link[1])
            link = self._parents[link[1].node_id]
        return list(reversed(chain))

    def has_order_axes(self) -> bool:
        return any(not axis.is_structural for axis, _, _ in self.iter_edges())

    def iter_edges(self) -> Iterator[Tuple[QueryAxis, QueryNode, QueryNode]]:
        """Yield (axis, source, destination) for every edge."""
        for node in self._nodes:
            for edge in node.edges:
                yield edge.axis, node, edge.node

    def tags(self) -> List[str]:
        return [node.tag for node in self._nodes]

    def find(self, tag: str) -> QueryNode:
        """The unique pattern node with ``tag`` (ValueError if ambiguous)."""
        hits = [node for node in self._nodes if node.tag == tag]
        if len(hits) != 1:
            raise ValueError("tag %r matches %d query nodes" % (tag, len(hits)))
        return hits[0]

    # ------------------------------------------------------------------
    # Rendering (inverse of the parser, used by tests and reports)
    # ------------------------------------------------------------------

    def to_string(self) -> str:
        # Omit the $ marker when the target is the default (last trunk
        # node), so canonical text of unmarked queries stays marker-free.
        marked = self.target if self.target is not self._default_target() else None
        return _render(self.root, self.root_axis, marked, top_level=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Query %s>" % self.to_string()


_AXIS_TOKEN = {
    QueryAxis.CHILD: "/",
    QueryAxis.DESCENDANT: "//",
    QueryAxis.FOLLS: "/folls::",
    QueryAxis.PRES: "/pres::",
    QueryAxis.FOLL: "/foll::",
    QueryAxis.PRE: "/pre::",
}


def _render(
    node: QueryNode, incoming: QueryAxis, target: Optional[QueryNode], top_level: bool
) -> str:
    parts = [_AXIS_TOKEN[incoming]]
    if node is target:
        parts.append("$")
    parts.append(node.tag)
    for edge in node.predicate_edges():
        parts.append("[" + _render(edge.node, edge.axis, target, False) + "]")
    inline = node.inline_edge()
    if inline is not None:
        parts.append(_render(inline.node, inline.axis, target, False))
    return "".join(parts)
