"""XPath subset: AST, parser and exact evaluator.

The estimation system works on tree-shaped XPath patterns with the axes the
paper covers:

* ``/`` (child) and ``//`` (descendant) steps;
* branch predicates ``[...]`` nesting arbitrarily;
* order axes ``folls::`` / ``pres::`` (``following-sibling`` /
  ``preceding-sibling``) and their scoped ``foll::`` / ``pre::``
  (``following`` / ``preceding``) forms;
* an explicit target marker ``$tag`` (default target: the last trunk node).

:func:`~repro.xpath.parser.parse_query` builds a
:class:`~repro.xpath.ast.Query`; :class:`~repro.xpath.evaluator.Evaluator`
computes exact selectivities against an
:class:`~repro.xmltree.document.XmlDocument` (the ground truth for all
accuracy experiments).
"""

from repro.xpath.ast import Query, QueryAxis, QueryNode
from repro.xpath.evaluator import Evaluator
from repro.xpath.parser import XPathSyntaxError, parse_query, parse_query_cached

__all__ = [
    "Query",
    "QueryAxis",
    "QueryNode",
    "parse_query",
    "parse_query_cached",
    "XPathSyntaxError",
    "Evaluator",
]
