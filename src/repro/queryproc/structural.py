"""Structural semijoin primitives over interval-sorted candidate arrays.

All functions take ascending-``pre`` candidate lists (document order =
interval-start order) and return the surviving subset, still ascending.
Containment uses the laminar-interval property: among ancestors starting
before a point, *some* interval covers it iff the running maximum of their
ends exceeds it.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List

from repro.queryproc.intervalsidx import IntervalIndex
from repro.xpath.ast import QueryAxis


def descendants_with_ancestor(
    index: IntervalIndex, descendants: List[int], ancestors: List[int]
) -> List[int]:
    """Descendant candidates with at least one ancestor candidate above.

    Two-pointer sweep with a running max of ancestor ends: O(n + m).
    """
    if not ancestors:
        return []
    starts, ends = index.starts, index.ends
    kept: List[int] = []
    max_end = 0
    pointer = 0
    count = len(ancestors)
    for pre in descendants:
        point = starts[pre]
        while pointer < count and starts[ancestors[pointer]] < point:
            end = ends[ancestors[pointer]]
            if end > max_end:
                max_end = end
            pointer += 1
        if max_end > point:
            kept.append(pre)
    return kept


def ancestors_with_descendant(
    index: IntervalIndex, ancestors: List[int], descendants: List[int]
) -> List[int]:
    """Ancestor candidates containing at least one descendant candidate.

    Binary search per ancestor over the descendants' start array:
    O(n log m).
    """
    if not descendants:
        return []
    starts = index.starts
    descendant_starts = [starts[pre] for pre in descendants]
    kept: List[int] = []
    for pre in ancestors:
        lo = bisect_right(descendant_starts, starts[pre])
        if lo < len(descendant_starts) and descendant_starts[lo] < index.ends[pre]:
            kept.append(pre)
    return kept


def children_with_parent(
    index: IntervalIndex, children: List[int], parents: List[int]
) -> List[int]:
    """Child candidates whose parent is among ``parents`` (O(n + m))."""
    parent_set = set(parents)
    return [pre for pre in children if index.parents[pre] in parent_set]


def parents_with_child(
    index: IntervalIndex, parents: List[int], children: List[int]
) -> List[int]:
    """Parent candidates with at least one child among ``children``."""
    with_child = {index.parents[pre] for pre in children}
    return [pre for pre in parents if pre in with_child]


def siblings_ordered_after(
    index: IntervalIndex, candidates: List[int], anchors: List[int]
) -> List[int]:
    """Candidates with an *earlier* sibling among ``anchors``.

    Used for a ``folls`` edge's destination side: the kept node must have
    a preceding sibling anchor.  Per-parent minimum sibling index over the
    anchors, O(n + m).
    """
    parents = index.parents
    nodes = index.document
    min_index: dict = {}
    for pre in anchors:
        parent = parents[pre]
        if parent < 0:
            continue
        sibling_index = nodes.node_at(pre).sibling_index
        current = min_index.get(parent)
        if current is None or sibling_index < current:
            min_index[parent] = sibling_index
    kept = []
    for pre in candidates:
        bound = min_index.get(parents[pre])
        if bound is not None and bound < nodes.node_at(pre).sibling_index:
            kept.append(pre)
    return kept


def siblings_ordered_before(
    index: IntervalIndex, candidates: List[int], anchors: List[int]
) -> List[int]:
    """Candidates with a *later* sibling among ``anchors`` (mirror)."""
    parents = index.parents
    nodes = index.document
    max_index: dict = {}
    for pre in anchors:
        parent = parents[pre]
        if parent < 0:
            continue
        sibling_index = nodes.node_at(pre).sibling_index
        current = max_index.get(parent)
        if current is None or sibling_index > current:
            max_index[parent] = sibling_index
    kept = []
    for pre in candidates:
        bound = max_index.get(parents[pre])
        if bound is not None and bound > nodes.node_at(pre).sibling_index:
            kept.append(pre)
    return kept


def reduce_upper(
    index: IntervalIndex, axis: QueryAxis, upper: List[int], lower: List[int]
) -> List[int]:
    """Bottom-up semijoin dispatch: keep ``upper`` nodes supported below.

    The single axis → primitive mapping shared by the naive processor
    and the plan executor (one table, so they can never disagree).
    """
    if axis is QueryAxis.CHILD:
        return parents_with_child(index, upper, lower)
    if axis is QueryAxis.DESCENDANT:
        return ancestors_with_descendant(index, upper, lower)
    if axis is QueryAxis.FOLLS:
        # The source needs a *later* sibling among the dest.
        return siblings_ordered_before(index, upper, lower)
    if axis is QueryAxis.PRES:
        # The source needs an *earlier* dest sibling.
        return siblings_ordered_after(index, upper, lower)
    raise ValueError("axis %r has no structural semijoin" % (axis,))


def reduce_lower(
    index: IntervalIndex, axis: QueryAxis, lower: List[int], upper: List[int]
) -> List[int]:
    """Top-down semijoin dispatch: keep ``lower`` nodes supported above."""
    if axis is QueryAxis.CHILD:
        return children_with_parent(index, lower, upper)
    if axis is QueryAxis.DESCENDANT:
        return descendants_with_ancestor(index, lower, upper)
    if axis is QueryAxis.FOLLS:
        # The dest needs an *earlier* sibling among the source.
        return siblings_ordered_after(index, lower, upper)
    if axis is QueryAxis.PRES:
        return siblings_ordered_before(index, lower, upper)
    raise ValueError("axis %r has no structural semijoin" % (axis,))


def count_candidates_in_range(
    index: IntervalIndex, candidates: List[int], start: int, end: int
) -> int:
    """How many candidates start inside the open interval (start, end).

    Utility for join-size accounting in the benchmarks.
    """
    starts = [index.starts[pre] for pre in candidates]
    return bisect_left(starts, end) - bisect_right(starts, start)
