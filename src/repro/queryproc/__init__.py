"""Structural-join query processing with path-id pruning.

The path encoding scheme the estimator builds on was introduced (reference
[8] of the paper) to accelerate *structural joins*: before any join runs,
candidate lists are pruned to the elements whose path ids survive the
Section-4 path join, so irrelevant subtrees never enter the merge.  This
package reproduces that pipeline:

* :class:`~repro.queryproc.intervalsidx.IntervalIndex` — interval labels,
  depths and per-tag candidate arrays of one document;
* :mod:`~repro.queryproc.structural` — merge/semijoin primitives over
  interval-sorted candidate arrays;
* :class:`~repro.queryproc.processor.StructuralJoinProcessor` — exact
  evaluation of no-order queries via structural semijoins, with optional
  path-id prefiltering (``use_path_ids=True``).

The processor is exact — tests pin it against the reference evaluator —
and the companion benchmark measures what [8] claims: path-id pruning
shrinks candidate lists and speeds up evaluation.
"""

from repro.queryproc.intervalsidx import IntervalIndex
from repro.queryproc.processor import StructuralJoinProcessor

__all__ = ["IntervalIndex", "StructuralJoinProcessor"]
