"""Exact query evaluation via structural semijoins with path-id pruning.

The plan mirrors the classic two-phase evaluation of tree patterns over
interval-labeled elements, with one twist from [8]: *before* any join, the
per-tag candidate arrays can be pruned to elements whose (tag, path id)
group survives the Section-4 path join — irrelevant subtrees never enter
the merges.

Phases (per query):

1. **candidates** — per pattern node, the tag's pre-order array,
   optionally path-id filtered;
2. **bottom-up** — for each edge, keep upper candidates that reach a kept
   lower candidate (semijoins);
3. **top-down** — keep lower candidates reachable from surviving upper
   candidates;
4. the target node's surviving list is the exact answer (tests pin this
   against :class:`~repro.xpath.evaluator.Evaluator`).

Scope: structural and sibling-order axes (``folls``/``pres`` run as
per-parent sibling semijoins); scoped ``foll``/``pre`` queries raise
:class:`~repro.core.transform.UnsupportedQueryError` (rewrite them first,
as the estimator does).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.pathjoin import path_join
from repro.core.providers import ExactPathStats
from repro.core.transform import UnsupportedQueryError
from repro.obs.trace import NULL_TRACER
from repro.pathenc.labeler import LabeledDocument
from repro.queryproc.intervalsidx import IntervalIndex
from repro.queryproc.structural import reduce_lower, reduce_upper
from repro.stats.pathid_freq import collect_pathid_frequencies
from repro.xpath.ast import Query, QueryAxis
from repro.xmltree.document import XmlDocument


class StructuralJoinProcessor:
    """Evaluates queries with interval and sibling semijoins.

    Parameters
    ----------
    document:
        The document to query.
    labeled:
        Optional pre-labeled view; required state is built on demand when
        omitted.  Path-id pruning needs it.
    """

    def __init__(self, document: XmlDocument, labeled: Optional[LabeledDocument] = None):
        self.document = document
        self.index = IntervalIndex(document)
        self._labeled = labeled
        self._provider: Optional[ExactPathStats] = None
        self.last_candidate_count = 0  # join-input accounting for benches
        self.last_semijoin_work = 0     # items swept by the semijoins

    # -- lazily built path-id machinery ---------------------------------

    def _path_state(self):
        if self._labeled is None:
            from repro.pathenc.labeler import label_document

            self._labeled = label_document(self.document)
        if self._provider is None:
            self._provider = ExactPathStats(
                collect_pathid_frequencies(self._labeled)
            )
        return self._labeled, self._provider

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def count(self, query: Query, use_path_ids: bool = True, tracer=NULL_TRACER) -> int:
        return len(self.matching_pres(query, use_path_ids=use_path_ids, tracer=tracer))

    def matching_pres(
        self, query: Query, use_path_ids: bool = True, tracer=NULL_TRACER
    ) -> List[int]:
        """Exact pre-order numbers matching the query target.

        A live ``tracer`` records ``candidates`` / ``semijoin`` spans with
        the same work counters the ``last_*`` attributes expose.
        """
        if any(axis.is_scoped_order for axis, _, _ in query.iter_edges()):
            raise UnsupportedQueryError(
                "rewrite scoped foll/pre axes before structural-join evaluation"
            )
        with tracer.span("candidates") as cand_span:
            candidates = self.initial_candidates(query, use_path_ids, tracer)
            self.last_candidate_count = sum(len(c) for c in candidates)
            cand_span.incr("candidates", self.last_candidate_count)
        self.last_semijoin_work = 0
        if any(not c for c in candidates):
            return []
        order = query.nodes()
        semijoin_span = tracer.span("semijoin")
        semijoin_span.__enter__()
        try:
            result = self._semijoin_phases(query, candidates, order)
        finally:
            semijoin_span.incr("items_swept", self.last_semijoin_work)
            semijoin_span.__exit__(None, None, None)
        return result

    def _semijoin_phases(
        self, query: Query, candidates: List[List[int]], order: List
    ) -> List[int]:
        # Bottom-up: process nodes children-first.
        for node in reversed(order):
            for edge in node.edges:
                upper = candidates[node.node_id]
                lower = candidates[edge.node.node_id]
                self.last_semijoin_work += len(upper) + len(lower)
                upper = reduce_upper(self.index, edge.axis, upper, lower)
                candidates[node.node_id] = upper
                if not upper:
                    return []
        # Root constraint for absolute queries.
        if query.root_axis is QueryAxis.CHILD:
            root_pre = self.document.root.pre
            candidates[query.root.node_id] = [
                pre for pre in candidates[query.root.node_id] if pre == root_pre
            ]
            if not candidates[query.root.node_id]:
                return []
        # Top-down: parents first.
        for node in order:
            for edge in node.edges:
                upper = candidates[node.node_id]
                lower = candidates[edge.node.node_id]
                self.last_semijoin_work += len(upper) + len(lower)
                lower = reduce_lower(self.index, edge.axis, lower, upper)
                candidates[edge.node.node_id] = lower
                if not lower:
                    return []
        return candidates[query.target.node_id]

    # ------------------------------------------------------------------

    def initial_candidates(
        self, query: Query, use_path_ids: bool = True, tracer=NULL_TRACER
    ) -> List[List[int]]:
        """Per-node starting candidate lists (optionally pid-pruned).

        Public because the plan executor starts from the same lists the
        naive evaluation would; indexed by ``node_id``.
        """
        candidates: List[List[int]] = []
        surviving: Optional[Dict[int, Dict[int, float]]] = None
        if use_path_ids:
            labeled, provider = self._path_state()
            join = path_join(query, provider, labeled.encoding_table, tracer=tracer)
            if join.empty:
                return [[] for _ in query.nodes()]
            surviving = {
                node.node_id: join.pids(node) for node in query.nodes()
            }
        for node in query.nodes():
            pres = self.index.candidates(node.tag)
            if surviving is not None:
                labeled, _ = self._path_state()
                pathids = labeled.pathids
                allowed = surviving[node.node_id]
                pres = [pre for pre in pres if pathids[pre] in allowed]
            candidates.append(list(pres))
        return candidates
