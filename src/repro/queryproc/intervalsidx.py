"""Per-document index backing the structural-join processor.

Holds the interval labels, per-node depths and parents, plus per-tag
candidate arrays sorted by ``start`` — the inputs every structural join
variant consumes.
"""

from __future__ import annotations

from typing import Dict, List

from repro.xmltree.document import XmlDocument
from repro.xmltree.intervals import interval_labeling


class IntervalIndex:
    """Interval labels and per-tag candidate arrays of one document."""

    def __init__(self, document: XmlDocument):
        self.document = document
        self.starts, self.ends, self.top = interval_labeling(document)
        self.parents: List[int] = [-1] * len(document)
        self.depths: List[int] = [0] * len(document)
        for node in document:
            if node.parent is not None:
                self.parents[node.pre] = node.parent.pre
                self.depths[node.pre] = self.depths[node.parent.pre] + 1
        # Per-tag pre-order lists; document order == start order, so these
        # arrays are already sorted by start.
        self._by_tag: Dict[str, List[int]] = {}
        for node in document:
            self._by_tag.setdefault(node.tag, []).append(node.pre)

    def candidates(self, tag: str) -> List[int]:
        """All pre-order numbers with ``tag``, ascending (= start order)."""
        return self._by_tag.get(tag, [])

    def __len__(self) -> int:
        return len(self.starts)
