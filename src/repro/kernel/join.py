"""The bitset path join over a compiled :class:`SynopsisKernel`.

Semantically identical to the depth-consistent fixpoint of
:func:`repro.core.pathjoin._depth_join` — same per-constraint pruning
rule, same forward+backward schedule with per-node version counters,
same early exits — but the per-node state is one Python-int bitset per
depth instead of a dict of pid → depth-set, and each pruning step is an
AND against a memoized OR of containment-matrix rows.  Both paths
converge to the same (unique) arc-consistent fixpoint, and frequencies
are summed over indexes in provider order, so estimates agree with the
legacy path bit for bit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.pathjoin import JoinResult, derive_constraints
from repro.kernel.compiled import SynopsisKernel, TagTable, or_rows, popcount
from repro.obs.trace import NULL_TRACER
from repro.pathenc.relationship import Axis
from repro.xpath.ast import Query, QueryAxis, QueryNode

__all__ = ["KernelJoinResult", "QueryPlan", "build_query_plan", "kernel_join"]


class QueryPlan:
    """Resolved constraint steps for one query over one kernel.

    ``node_tables[node_id]`` is the node's interned tag table;
    ``steps`` holds ``(upper_id, lower_id, child?, containment pair)``
    in :func:`derive_constraints` order.
    """

    __slots__ = ("node_tables", "steps")

    def __init__(
        self,
        node_tables: Tuple[TagTable, ...],
        steps: Tuple[Tuple[int, int, bool, object], ...],
    ):
        self.node_tables = node_tables
        self.steps = steps


def build_query_plan(
    kernel: SynopsisKernel, query: Query, tracer=NULL_TRACER
) -> QueryPlan:
    nodes = query.nodes()
    node_tables = tuple(kernel.tag_table(node.tag, tracer) for node in nodes)
    steps = []
    for upper, axis, lower in derive_constraints(query):
        child = axis is Axis.CHILD
        pair = kernel.containment(upper.tag, lower.tag, child, tracer)
        steps.append((upper.node_id, lower.node_id, child, pair))
    return QueryPlan(node_tables, tuple(steps))


class KernelJoinResult(JoinResult):
    """Join result backed by bitset states; same reading API as
    :class:`~repro.core.pathjoin.JoinResult`, materialized on demand in
    ascending index (= provider) order."""

    def __init__(
        self,
        query: Query,
        tables: Tuple[TagTable, ...],
        states: Optional[List[List[int]]],
    ):
        self.query = query
        self._tables = tables
        # None encodes the legacy all-empty result (some node died).
        self._states = states
        # Per-node OR of the depth masks; the states are frozen once the
        # fixpoint converges, so the fold is computed at most once per
        # node and shared by every reader.
        self._alive: Optional[List[Optional[int]]] = (
            None if states is None else [None] * len(states)
        )

    def _alive_mask(self, node_id: int) -> int:
        assert self._alive is not None and self._states is not None
        mask = self._alive[node_id]
        if mask is None:
            mask = 0
            for depth_mask in self._states[node_id]:
                mask |= depth_mask
            self._alive[node_id] = mask
        return mask

    def pids(self, node: QueryNode) -> Dict[int, float]:
        out: Dict[int, float] = {}
        if self._states is None:
            return out
        compiled = self._tables[node.node_id]
        pids, freqs = compiled.pids, compiled.freqs
        alive = self._alive_mask(node.node_id)
        while alive:
            low = alive & -alive
            index = low.bit_length() - 1
            out[pids[index]] = freqs[index]
            alive ^= low
        return out

    def depths(self, node: QueryNode) -> Dict[int, Set[int]]:
        out: Dict[int, Set[int]] = {}
        if self._states is None:
            return out
        compiled = self._tables[node.node_id]
        state = self._states[node.node_id]
        pids = compiled.pids
        # One pass over the depth masks, scattering set bits into the
        # per-pid depth sets — instead of re-scanning enumerate(state)
        # once per surviving pid.
        for depth, mask in enumerate(state):
            while mask:
                low = mask & -mask
                pid = pids[low.bit_length() - 1]
                bucket = out.get(pid)
                if bucket is None:
                    out[pid] = {depth}
                else:
                    bucket.add(depth)
                mask ^= low
        return out

    def frequency(self, node: QueryNode) -> float:
        if self._states is None:
            return 0.0
        compiled = self._tables[node.node_id]
        freqs = compiled.freqs
        alive = self._alive_mask(node.node_id)
        # Ascending index order == the legacy dict's insertion order, so
        # the float sum is associativity-identical to the legacy path.
        total = 0.0
        while alive:
            low = alive & -alive
            total += freqs[low.bit_length() - 1]
            alive ^= low
        return total

    @property
    def empty(self) -> bool:
        return self._states is None

    def survivor_count(self) -> int:
        if self._states is None:
            return 0
        total = 0
        for node_id in range(len(self._states)):
            total += popcount(self._alive_mask(node_id))
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._states is None:
            return "<KernelJoinResult empty>"
        counts = [
            popcount(self._alive_mask(node_id))
            for node_id in range(len(self._states))
        ]
        return "<KernelJoinResult pids per node: %s>" % counts


def kernel_join(
    kernel: SynopsisKernel,
    query: Query,
    provider=None,
    tracer=NULL_TRACER,
    max_rounds: int = 64,
) -> KernelJoinResult:
    """Depth-consistent fixpoint join on compiled bitsets."""
    kernel.joins += 1
    with tracer.aggregate("join") as join_span:
        plan = kernel.query_plan(query, tracer)
        tables = plan.node_tables
        traced = tracer.enabled
        states: List[List[int]] = []
        with tracer.aggregate("pathid-match") as match_span:
            for node, compiled in zip(query.nodes(), tables):
                if traced and provider is not None:
                    # Surface the same p-histogram lookup traffic a
                    # traced legacy join would (the tracing provider
                    # counts cells/buckets as a side effect).
                    provider.frequency_pairs(node.tag)
                states.append(list(compiled.init_at))
                match_span.incr("pids_matched", compiled.alive_count)

        if query.root_axis is QueryAxis.CHILD:
            root_id = query.root.node_id
            root_state = states[root_id]
            if root_state:
                states[root_id] = [root_state[0]] + [0] * (len(root_state) - 1)

        steps = plan.steps
        empty = False
        with tracer.aggregate("bitset_join") as bitset_span:
            bitset_span.incr("constraints", len(steps))
            if steps:
                schedule = steps + tuple(reversed(steps))
                version = [0] * len(states)
                last_seen: List[Tuple[int, int]] = [(-1, -1)] * len(schedule)
                for _ in range(max_rounds):
                    join_span.incr("rounds")
                    changed = False
                    for index, (uid, lid, child, pair) in enumerate(schedule):
                        if last_seen[index] == (version[uid], version[lid]):
                            continue
                        upper_changed, lower_changed = _apply_step(
                            states, uid, lid, child, pair
                        )
                        if upper_changed:
                            version[uid] += 1
                            changed = True
                        if lower_changed:
                            version[lid] += 1
                            changed = True
                        last_seen[index] = (version[uid], version[lid])
                        if (upper_changed and not any(states[uid])) or (
                            lower_changed and not any(states[lid])
                        ):
                            empty = True
                            break
                    if empty or not changed:
                        break
            else:
                join_span.incr("rounds")
        if not empty:
            empty = any(not any(state) for state in states)
        result = KernelJoinResult(query, tables, None if empty else states)
        join_span.incr("surviving_pids", result.survivor_count())
    return result


def _apply_step(
    states: List[List[int]],
    upper_id: int,
    lower_id: int,
    child: bool,
    pair,
) -> Tuple[bool, bool]:
    """Prune both sides of one constraint (bitset counterpart of
    :func:`repro.core.pathjoin._apply_depth_constraint`).

    Lower placements read the *current* upper state, upper placements the
    *new* lower state, matching the legacy sweep exactly.
    """
    upper = states[upper_id]
    lower = states[lower_id]
    down_rows, up_rows = pair.down, pair.up
    down_memo, up_memo = pair.down_memo, pair.up_memo
    upper_len = len(upper)
    lower_len = len(lower)

    # Lower side: index j stays alive at depth dl iff some compatible
    # upper index is alive at dl-1 (child) / any depth < dl (descendant).
    lower_changed = False
    new_lower = lower
    if child:
        for dl in range(lower_len):
            alive = lower[dl]
            if not alive:
                continue
            du = dl - 1
            bits = upper[du] if 0 <= du < upper_len else 0
            kept = alive & or_rows(down_rows, bits, down_memo) if bits else 0
            if kept != alive:
                if new_lower is lower:
                    new_lower = lower[:]
                new_lower[dl] = kept
                lower_changed = True
    else:
        below = 0
        for dl in range(lower_len):
            du = dl - 1
            if 0 <= du < upper_len:
                below |= upper[du]
            alive = lower[dl]
            if not alive:
                continue
            kept = alive & or_rows(down_rows, below, down_memo) if below else 0
            if kept != alive:
                if new_lower is lower:
                    new_lower = lower[:]
                new_lower[dl] = kept
                lower_changed = True

    # Upper side, against the new lower state.
    upper_changed = False
    new_upper = upper
    if child:
        for du in range(upper_len):
            alive = upper[du]
            if not alive:
                continue
            dl = du + 1
            bits = new_lower[dl] if dl < lower_len else 0
            kept = alive & or_rows(up_rows, bits, up_memo) if bits else 0
            if kept != alive:
                if new_upper is upper:
                    new_upper = upper[:]
                new_upper[du] = kept
                upper_changed = True
    else:
        above = 0
        for depth in range(upper_len + 1, lower_len):
            above |= new_lower[depth]
        for du in range(upper_len - 1, -1, -1):
            dl = du + 1
            if dl < lower_len:
                above |= new_lower[dl]
            alive = upper[du]
            if not alive:
                continue
            kept = alive & or_rows(up_rows, above, up_memo) if above else 0
            if kept != alive:
                if new_upper is upper:
                    new_upper = upper[:]
                new_upper[du] = kept
                upper_changed = True

    if lower_changed:
        states[lower_id] = new_lower
    if upper_changed:
        states[upper_id] = new_upper
    return upper_changed, lower_changed
