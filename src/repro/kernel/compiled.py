"""The compiled synopsis kernel: interned pids + containment bitmatrices.

The legacy join re-derives pathid-pair containment from raw bit vectors
on every query (``pids_compatible`` walks the encodings of the contained
id; the depth maps are dicts of sets).  The kernel compiles the synopsis
once instead:

* **Tag tables** — every tag's (path id, frequency) pairs are interned
  into dense integer indexes ``0..n-1`` in provider order, frequencies in
  a parallel ``array('d')``, and the statically feasible placements as
  one bitset per depth (bit *i* set ⟺ pid *i* can sit at that depth).
  Depth 0 of that family is exactly the ``pid_is_root`` set.
* **Containment pairs** — for each (upper tag, lower tag, axis) a
  bitmatrix ``down[i]`` = bitset of lower indexes *j* with
  ``pids_compatible(table, U, pid_i, L, pid_j, axis)`` true, plus the
  transpose ``up[j]``.  The test reduces to one subset check against a
  precomputed *relationship mask* (the encodings where the tag pair is
  related), so ``pids_compatible`` is never called on the hot path.
* **Support memo** — the join's inner question, "which lower indexes are
  supported by this set of alive upper indexes", is an OR of matrix rows
  keyed by the alive bitset (a single int).  The memo lives on the pair,
  i.e. it is shared across queries, batches and plan-cache entries of the
  same synopsis.

Compilation is lazy and thread-safe: only the tags/pairs a workload
touches are ever built, under the kernel lock with double-checked reads.
The kernel is *immutable once built* — hot reloads and live appends
replace the system and :meth:`invalidate` the old kernel rather than
mutating it.
"""

from __future__ import annotations

import threading
import time
import weakref
from array import array
from typing import Dict, List, Optional, Tuple

from repro.obs.trace import NULL_TRACER
from repro.pathenc.encoding import EncodingTable
from repro.xpath.ast import Query

__all__ = ["SynopsisKernel", "TagTable", "popcount"]

try:  # pragma: no cover - version probe
    (0).bit_count
    def popcount(value: int) -> int:
        return value.bit_count()
except AttributeError:  # pragma: no cover - Python < 3.10
    def popcount(value: int) -> int:
        return bin(value).count("1")

#: Support-memo entries kept per (pair, direction) before a wholesale
#: clear.  Distinct alive-bitsets per constraint are bounded by the
#: fixpoint's pruning steps, so real workloads sit far below this.
MEMO_LIMIT = 8192


class TagTable:
    """One tag's interned pid space.

    ``pids[i]``/``freqs[i]`` are parallel (provider order, so summing
    frequencies in ascending index order reproduces the legacy dict-sum
    bit for bit).  ``init_at[d]`` is the bitset of indexes statically
    feasible at depth ``d``; ``alive_mask`` is their union (ids whose
    feasible depth set is empty never get a bit).
    """

    __slots__ = (
        "tag", "pids", "freqs", "index_of", "init_at", "alive_mask",
        "alive_count",
    )

    def __init__(
        self,
        tag: str,
        pids: Tuple[int, ...],
        freqs: "array[float]",
        index_of: Dict[int, int],
        init_at: Tuple[int, ...],
        alive_mask: int,
    ):
        self.tag = tag
        self.pids = pids
        self.freqs = freqs
        self.index_of = index_of
        self.init_at = init_at
        self.alive_mask = alive_mask
        self.alive_count = popcount(alive_mask)

    @property
    def depth_count(self) -> int:
        return len(self.init_at)


class ContainmentPair:
    """Axis-specific containment bitmatrix for one ordered tag pair.

    ``down[i]`` — lower indexes compatible below upper index ``i``;
    ``up[j]`` — the transpose.  ``down_memo``/``up_memo`` cache the OR of
    rows selected by an alive bitset (see :func:`or_rows`); they are the
    kernel's shared support memo.
    """

    __slots__ = ("down", "up", "down_memo", "up_memo")

    def __init__(self, down: Tuple[int, ...], up: Tuple[int, ...]):
        self.down = down
        self.up = up
        self.down_memo: Dict[int, int] = {}
        self.up_memo: Dict[int, int] = {}


def or_rows(rows: Tuple[int, ...], bits: int, memo: Dict[int, int]) -> int:
    """Union of ``rows[i]`` over the set bits of ``bits``, memoized."""
    union = memo.get(bits)
    if union is None:
        union = 0
        remaining = bits
        while remaining:
            low = remaining & -remaining
            union |= rows[low.bit_length() - 1]
            remaining ^= low
        if len(memo) >= MEMO_LIMIT:
            memo.clear()
        memo[bits] = union
    return union


class SynopsisKernel:
    """Compiled join structures for one (encoding table, provider) pair.

    Built lazily per tag / tag pair under an internal lock; safe to share
    across the service's worker threads.  ``supports`` gates the hot
    path: the kernel only serves the provider and table it was compiled
    from (the tracing decorators are unwrapped), and steps aside for
    depth-refined statistics, whose empirical depth seeding the compiled
    tables do not model.
    """

    def __init__(self, table: EncodingTable, provider: object, name: str = ""):
        self.table = table
        self.provider = provider
        self.name = name
        self.invalidated = False
        self._lock = threading.RLock()
        self._tags: Dict[str, TagTable] = {}
        self._tag_totals: Dict[str, float] = {}
        self._pairs: Dict[Tuple[str, str, bool], ContainmentPair] = {}
        self._plans: "weakref.WeakKeyDictionary[Query, object]" = (
            weakref.WeakKeyDictionary()
        )
        # Depth-refined providers seed the join from empirical per-depth
        # frequencies; the kernel compiles static feasibility only.
        self.eligible = getattr(provider, "depth_frequency_map", None) is None
        self.joins = 0
        self.fallbacks = 0
        self.build_ms = 0.0
        # Kernelpack accounting: a PackedKernel counts tables/pairs it
        # decoded off the mapping vs. compiled in-process (pack gaps);
        # on a plain kernel both stay 0.
        self.pack_hits = 0
        self.pack_misses = 0

    # ------------------------------------------------------------------
    # Gating
    # ------------------------------------------------------------------

    def supports(self, provider: object, table: EncodingTable) -> bool:
        """Can this kernel serve a join over (provider, table)?"""
        if self.invalidated or not self.eligible or table is not self.table:
            return False
        if provider is self.provider:
            return True
        # Traced requests wrap the provider in TracingPathStats; the
        # statistics underneath are still ours.
        return getattr(provider, "_inner", None) is self.provider

    def note_fallback(self) -> None:
        self.fallbacks += 1

    def invalidate(self) -> None:
        """Mark stale (hot reload / live append replaced the synopsis)."""
        with self._lock:
            self.invalidated = True
            self._tag_totals.clear()
            self._plans = weakref.WeakKeyDictionary()
            for pair in self._pairs.values():
                pair.down_memo.clear()
                pair.up_memo.clear()

    # ------------------------------------------------------------------
    # Compilation (lazy, per tag / tag pair)
    # ------------------------------------------------------------------

    def tag_table(self, tag: str, tracer=NULL_TRACER) -> TagTable:
        compiled = self._tags.get(tag)
        if compiled is None:
            with self._lock:
                compiled = self._tags.get(tag)
                if compiled is None:
                    with tracer.span("kernel_build") as span:
                        started = time.perf_counter()
                        compiled = self._build_tag_table(tag)
                        self.build_ms += (time.perf_counter() - started) * 1e3
                        span.incr("tag_tables")
                    self._tags[tag] = compiled
        return compiled

    def tag_total(self, tag: str) -> float:
        """Total frequency of ``tag`` across its pids, cached per tag.

        The planner's cost model prices unpruned candidate lists with
        this (one float per tag instead of re-summing the frequency
        array per plan).
        """
        total = self._tag_totals.get(tag)
        if total is None:
            total = float(sum(self.tag_table(tag).freqs))
            with self._lock:
                self._tag_totals[tag] = total
        return total

    def containment(
        self, upper_tag: str, lower_tag: str, child: bool, tracer=NULL_TRACER
    ) -> ContainmentPair:
        key = (upper_tag, lower_tag, child)
        pair = self._pairs.get(key)
        if pair is None:
            upper = self.tag_table(upper_tag, tracer)
            lower = self.tag_table(lower_tag, tracer)
            with self._lock:
                pair = self._pairs.get(key)
                if pair is None:
                    with tracer.span("kernel_build") as span:
                        started = time.perf_counter()
                        pair = self._build_pair(upper, lower, child)
                        self.build_ms += (time.perf_counter() - started) * 1e3
                        span.incr("pairs")
                    self._pairs[key] = pair
        return pair

    def root_mask(self, tag: str) -> int:
        """Bitset of indexes rooted at the document root (pid_is_root)."""
        compiled = self.tag_table(tag)
        return compiled.init_at[0] if compiled.init_at else 0

    def compile_full(self, tracer=NULL_TRACER) -> Dict[str, int]:
        """Eagerly compile every tag table and every co-occurring pair.

        Laziness is right for serving, wrong for snapshotting: the
        kernelpack writer needs the complete structure.  "Co-occurring"
        comes from the encoding table's label paths — descendant pairs
        for every ordered (ancestor, descendant) on some path, child
        pairs for adjacent labels — which is exactly the set of pairs a
        supported query can ever request (the join only relates tags
        that appear on a common root-to-leaf path; unrelated pairs yield
        empty matrices and the estimate 0 without consulting a pair).

        Returns ``{"tags": ..., "pairs": ...}`` counts.
        """
        if not self.eligible:
            raise ValueError(
                "kernel for %r is not eligible for full compilation "
                "(depth-refined statistics)" % (self.name,)
            )
        for tag in sorted(self.provider.tags()):
            self.tag_table(tag, tracer)
        known = set(self._tags)
        pair_keys = set()
        table = self.table
        for encoding in range(1, table.width + 1):
            labels = table.labels_of(encoding)
            for i, upper in enumerate(labels):
                for j in range(i + 1, len(labels)):
                    lower = labels[j]
                    if upper not in known or lower not in known:
                        continue
                    pair_keys.add((upper, lower, False))
                    if j == i + 1:
                        pair_keys.add((upper, lower, True))
        for upper, lower, child in sorted(pair_keys):
            self.containment(upper, lower, child, tracer)
        return {"tags": len(self._tags), "pairs": len(self._pairs)}

    def export_state(
        self,
    ) -> Tuple[Dict[str, TagTable], Dict[Tuple[str, str, bool], ContainmentPair]]:
        """Snapshot of the compiled structures (for the pack writer)."""
        with self._lock:
            return dict(self._tags), dict(self._pairs)

    @property
    def packed(self) -> bool:
        """True on kernels decoded from a mapped kernelpack."""
        return False

    def _build_tag_table(self, tag: str) -> TagTable:
        pairs = list(self.provider.frequency_pairs(tag))
        pids = tuple(pid for pid, _ in pairs)
        freqs = array("d", (freq for _, freq in pairs))
        index_of = {pid: i for i, pid in enumerate(pids)}
        table = self.table
        depth_sets = [table.tag_depths(tag, pid) for pid in pids]
        depth_count = max((ds[-1] for ds in depth_sets if ds), default=-1) + 1
        init: List[int] = [0] * depth_count
        alive_mask = 0
        for i, ds in enumerate(depth_sets):
            if not ds:
                continue
            bit = 1 << i
            alive_mask |= bit
            for depth in ds:
                init[depth] |= bit
        return TagTable(tag, pids, freqs, index_of, tuple(init), alive_mask)

    def _build_pair(
        self, upper: TagTable, lower: TagTable, child: bool
    ) -> ContainmentPair:
        # Relationship mask: the encodings whose path relates the tag
        # pair on this axis.  ``pids_compatible`` asks for any encoding
        # of the lower pid with ``tag_below`` true — i.e. a non-empty
        # intersection with this mask, after the subset test.
        table = self.table
        width = table.width
        rel_mask = 0
        for encoding in range(1, width + 1):
            if table.tag_below(encoding, upper.tag, lower.tag, child):
                rel_mask |= 1 << (width - encoding)
        down: List[int] = []
        up = [0] * len(lower.pids)
        for i, pid_upper in enumerate(upper.pids):
            row = 0
            upper_bit = 1 << i
            for j, pid_lower in enumerate(lower.pids):
                if (pid_upper & pid_lower) == pid_lower and (pid_lower & rel_mask):
                    row |= 1 << j
                    up[j] |= upper_bit
            down.append(row)
        return ContainmentPair(tuple(down), tuple(up))

    # ------------------------------------------------------------------
    # Query plans and joins
    # ------------------------------------------------------------------

    def query_plan(self, query: Query, tracer=NULL_TRACER):
        """Resolved (tag tables, constraint steps) for one query AST.

        Weakly keyed by the AST object: the parser's ``lru_cache`` and
        the plan cache keep hot queries alive, so repeat estimates skip
        constraint derivation entirely.
        """
        plan = self._plans.get(query)
        if plan is None:
            from repro.kernel.join import build_query_plan

            plan = build_query_plan(self, query, tracer)
            with self._lock:
                self._plans[query] = plan
        return plan

    def join(self, query: Query, provider=None, tracer=NULL_TRACER,
             max_rounds: int = 64):
        """Bitset path join; see :func:`repro.kernel.join.kernel_join`."""
        from repro.kernel.join import kernel_join

        return kernel_join(self, query, provider=provider, tracer=tracer,
                           max_rounds=max_rounds)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Counters for the service ``/metrics`` kernel block."""
        with self._lock:
            memo_entries = sum(
                len(pair.down_memo) + len(pair.up_memo)
                for pair in self._pairs.values()
            )
            return {
                "joins": self.joins,
                "fallbacks": self.fallbacks,
                "tag_tables": len(self._tags),
                "pairs": len(self._pairs),
                "plans": len(self._plans),
                "memo_entries": memo_entries,
                "build_ms": round(self.build_ms, 3),
                "invalidated": self.invalidated,
                "packed": self.packed,
                "pack_hits": self.pack_hits,
                "pack_misses": self.pack_misses,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<SynopsisKernel %r tags=%d pairs=%d%s>" % (
            self.name, len(self._tags), len(self._pairs),
            " INVALIDATED" if self.invalidated else "",
        )
