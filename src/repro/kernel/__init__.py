"""Compiled synopsis kernels (perf layer over the Section 4 join).

A :class:`SynopsisKernel` is an immutable per-synopsis artifact compiled
lazily from one (encoding table, p-statistics provider) pair.  It interns
every tag's path ids into dense integer indexes with ``array``-backed
frequency tables, precomputes per-(tag, tag) containment bitmatrices for
both axes, and runs the path-join fixpoint on Python-int bitsets instead
of dict-of-dicts — with bit-for-bit identical results to the legacy path
(:func:`repro.core.pathjoin.path_join` falls back to the dict pipeline
whenever the kernel does not apply).
"""

from repro.kernel.compiled import SynopsisKernel, popcount
from repro.kernel.join import KernelJoinResult, kernel_join

__all__ = ["SynopsisKernel", "KernelJoinResult", "kernel_join", "popcount"]
