"""Generation-stamped semantic result cache.

A thread-safe, frequency-biased LRU mapping
``(generation, canonical_key, options_fingerprint)`` to an immutable
estimate value.  Three properties carry the design:

* **Generation stamping** makes invalidation O(1): every entry is
  keyed by the generation it was written under, and
  :meth:`bump_generation` just increments the counter — stale entries
  can never match again and age out through the LRU ring.  No scan,
  ever, regardless of how many entries are resident.
* **TinyLFU-lite admission** keeps one-hit-wonder queries from
  flushing the hot set: an access-frequency sketch (a plain counter
  table with periodic halving, keyed *without* the generation so hot
  queries keep their history across reloads) is consulted when the
  ring is full — a candidate is admitted only if it has been seen at
  least as often as the LRU victim it would evict.
* **TTL** is a safety valve for deployments that mutate synopses out
  of band: entries older than ``ttl_s`` count as misses and are
  dropped on touch.

``capacity=0`` disables the cache entirely (every lookup is a miss,
stores are no-ops), which is the control arm of ``bench_semcache``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

DEFAULT_CAPACITY = 4096

# The admission sketch is halved once its total sample count reaches
# this multiple of the ring capacity, so frequencies decay and a
# formerly-hot query cannot squat in the sketch forever.
_SKETCH_SAMPLES_PER_SLOT = 10


@dataclass(frozen=True)
class SemCacheStats:
    """Point-in-time counters (monotonic except size/generation)."""

    capacity: int
    size: int
    generation: int
    hits: int
    misses: int
    admissions: int
    rejections: int
    evictions: int
    expirations: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "capacity": self.capacity,
            "size": self.size,
            "generation": self.generation,
            "hits": self.hits,
            "misses": self.misses,
            "admissions": self.admissions,
            "rejections": self.rejections,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "hit_rate": self.hit_rate,
        }


class SemanticResultCache:
    """Frequency-biased LRU of canonicalized estimate results."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        ttl_s: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.capacity = max(0, int(capacity))
        self.ttl_s = ttl_s if ttl_s and ttl_s > 0 else None
        self._clock = clock
        self._lock = threading.Lock()
        # key -> (value, expires_at | None); insertion order == LRU.
        self._entries: "OrderedDict[Tuple[int, str, str], Tuple[Any, Optional[float]]]" = (
            OrderedDict()
        )
        # (canonical, fingerprint) -> access count; generation-free so
        # hot keys keep their admission history across bumps.
        self._freq: Dict[Tuple[str, str], int] = {}
        self._freq_samples = 0
        self._generation = 0
        self._hits = 0
        self._misses = 0
        self._admissions = 0
        self._rejections = 0
        self._evictions = 0
        self._expirations = 0

    # ------------------------------------------------------------------
    # Core protocol
    # ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    @property
    def generation(self) -> int:
        return self._generation

    def get(self, canonical: str, fingerprint: str) -> Tuple[bool, Any]:
        """``(hit, value)`` for the key under the current generation.

        Every lookup (hit or miss) feeds the admission sketch, so a
        repeated query earns admission even while it keeps missing.
        """
        if not self.enabled:
            return False, None
        with self._lock:
            self._touch_freq((canonical, fingerprint))
            key = (self._generation, canonical, fingerprint)
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return False, None
            value, expires_at = entry
            if expires_at is not None and self._clock() >= expires_at:
                del self._entries[key]
                self._expirations += 1
                self._misses += 1
                return False, None
            self._entries.move_to_end(key)
            self._hits += 1
            return True, value

    def put(self, canonical: str, fingerprint: str, value: Any) -> bool:
        """Offer ``value`` for the key; returns True when stored.

        ``value`` must be immutable — the same object is handed back to
        every future hit.  A full ring consults the frequency sketch:
        the candidate evicts the LRU victim only if it has been
        accessed at least as often.
        """
        if not self.enabled:
            return False
        with self._lock:
            key = (self._generation, canonical, fingerprint)
            expires_at = (
                self._clock() + self.ttl_s if self.ttl_s is not None else None
            )
            if key in self._entries:
                self._entries[key] = (value, expires_at)
                self._entries.move_to_end(key)
                return True
            if len(self._entries) >= self.capacity:
                victim_key = next(iter(self._entries))
                victim_freq = self._freq.get(victim_key[1:], 0)
                candidate_freq = self._freq.get((canonical, fingerprint), 0)
                if candidate_freq < victim_freq:
                    self._rejections += 1
                    return False
                self._entries.popitem(last=False)
                self._evictions += 1
            self._entries[key] = (value, expires_at)
            self._admissions += 1
            return True

    def bump_generation(self) -> int:
        """Invalidate everything resident, in O(1).

        Entries written under older generations can never be returned
        (their key no longer matches) and are recycled by normal LRU
        pressure; nothing is scanned or freed eagerly.
        """
        with self._lock:
            self._generation += 1
            return self._generation

    # ------------------------------------------------------------------
    # Admission sketch
    # ------------------------------------------------------------------

    def _touch_freq(self, sketch_key: Tuple[str, str]) -> None:
        self._freq[sketch_key] = self._freq.get(sketch_key, 0) + 1
        self._freq_samples += 1
        limit = max(self.capacity, 1) * _SKETCH_SAMPLES_PER_SLOT
        if self._freq_samples >= limit:
            # Age: halve every count, drop the ones that reach zero.
            self._freq = {
                key: count // 2
                for key, count in self._freq.items()
                if count >= 2
            }
            self._freq_samples = sum(self._freq.values())

    # ------------------------------------------------------------------
    # Management
    # ------------------------------------------------------------------

    def configure(self, capacity: int, ttl_s: Optional[float]) -> None:
        """Re-point the knobs (service config application)."""
        with self._lock:
            self.capacity = max(0, int(capacity))
            self.ttl_s = ttl_s if ttl_s and ttl_s > 0 else None
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            if not self.capacity:
                self._freq.clear()
                self._freq_samples = 0

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> SemCacheStats:
        with self._lock:
            return SemCacheStats(
                capacity=self.capacity,
                size=len(self._entries),
                generation=self._generation,
                hits=self._hits,
                misses=self._misses,
                admissions=self._admissions,
                rejections=self._rejections,
                evictions=self._evictions,
                expirations=self._expirations,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
