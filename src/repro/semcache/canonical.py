"""Query canonicalization for the semantic result cache.

Two query texts that parse to *equivalent* patterns must map to one
cache key, so the semantic cache can serve ``//a[//c][/b]`` from the
entry populated by ``//a[/b][//c]``.  The canonical key is a stable
rendering of the parsed AST:

* **axis-normalized** — the key is rendered from the AST through the
  same axis tokens as :meth:`Query.to_string`, so spelling/whitespace
  variants of the same pattern (already collapsed by the parser)
  share a key;
* **sorted branch order under commutativity** — predicate branches of
  a node are unordered conjuncts (Neven & Schwentick), so their
  *rendered* forms are sorted lexicographically before joining.
  Sorting is applied only when it is provably value-preserving, see
  below;
* **interned** — keys are ``sys.intern``-ed so the cache's key
  comparisons degrade to pointer checks on the hot path.

Branch sorting and bit-identity
-------------------------------

Cached results must be bit-identical to uncached evaluation, which is
a stronger requirement than set-equivalence: floating-point sums are
not associative, so reordering *evaluation* can perturb the last ulp.
Two properties make sorting safe on the default path:

* the arc-consistent fixpoint is unique — the surviving pid/depth sets
  do not depend on constraint order — and both the legacy dict join
  and the kernel sum survivor frequencies in per-tag *provider* order
  (pruning preserves relative order), so the final float is invariant
  under branch permutation **when the fixpoint runs to completion**;
* the order route combines per-order-edge factors in *query edge
  order*, so its float result is **not** permutation-invariant.

Hence :func:`canonical_key` sorts branches only when the caller ran
with ``fixpoint=True`` (``commutative=True``) *and* the query has no
order axes; otherwise it falls back to a deterministic unsorted
rendering, which still merges textual variants of the same tree.
"""

from __future__ import annotations

import sys
from typing import Optional

from repro.xpath.ast import _AXIS_TOKEN, Query, QueryNode

__all__ = ["canonical_key", "options_fingerprint"]


def _render_canonical(
    node: QueryNode,
    incoming_token: str,
    target: Optional[QueryNode],
    sort_branches: bool,
) -> str:
    parts = [incoming_token]
    if node is target:
        parts.append("$")
    parts.append(node.tag)
    branches = [
        _render_canonical(
            edge.node, _AXIS_TOKEN[edge.axis], target, sort_branches
        )
        for edge in node.predicate_edges()
    ]
    if sort_branches:
        branches.sort()
    for branch in branches:
        parts.append("[" + branch + "]")
    inline = node.inline_edge()
    if inline is not None:
        parts.append(
            _render_canonical(
                inline.node, _AXIS_TOKEN[inline.axis], target, sort_branches
            )
        )
    return "".join(parts)


def canonical_key(query: Query, commutative: bool = True) -> str:
    """The interned canonical cache key for ``query``.

    ``commutative`` should be True only when the evaluation the key
    guards is branch-order invariant (the fixpoint path); order-axis
    queries are always rendered unsorted because the order route
    combines factors in edge order (see module docstring).
    """
    sort_branches = commutative and not query.has_order_axes()
    # The $ marker must survive canonicalization even when the target
    # is the default node: sorting can move a branch past the trunk
    # cut-off, and distinct targets are distinct cache entries.
    marked = (
        query.target
        if query.target is not query._default_target()
        else None
    )
    return sys.intern(
        _render_canonical(
            query.root,
            _AXIS_TOKEN[query.root_axis],
            marked,
            sort_branches,
        )
    )


def options_fingerprint(fixpoint: bool = True, depth_consistent: bool = True) -> str:
    """A short stable token for the estimate options that change the
    numeric result.  Distinct option combinations must never share a
    cache entry: ``fixpoint=False`` single-pass pruning and
    ``depth_consistent=False`` joins produce different values."""
    return "f%dd%d" % (bool(fixpoint), bool(depth_consistent))
