"""Semantic result cache: canonicalized estimate memoization.

``canonical_key`` maps parsed query ASTs to a stable, equivalence-
merging cache key; ``SemanticResultCache`` is the generation-stamped,
frequency-biased LRU it keys into.  :class:`repro.EstimationSystem`
owns one instance per synopsis and reads through it on the plain
``estimate()`` path (trace/detail/explain bypass).
"""

from repro.semcache.cache import (
    DEFAULT_CAPACITY,
    SemanticResultCache,
    SemCacheStats,
)
from repro.semcache.canonical import canonical_key, options_fingerprint

__all__ = [
    "DEFAULT_CAPACITY",
    "SemanticResultCache",
    "SemCacheStats",
    "canonical_key",
    "options_fingerprint",
]
