"""The unified cluster-aware client: ``repro.connect(...) -> Client``.

One entry point covers every deployment shape the repo can serve:

* a single :class:`~repro.service.server.ServiceServer` instance,
* a pre-fork :mod:`repro.shm` worker pool (same wire protocol),
* a :class:`~repro.cluster.router.RouterServer` scatter-gather front,
* or a **seed list** of any of the above — the client fails over across
  seeds (last-good first) so one dead entry point does not strand it.

Compared with the per-endpoint :class:`~repro.service.client
.EndpointClient` it subsumes, :class:`Client` returns structured
:class:`~repro.core.result.EstimateResult` objects (reading the primary
versioned ``result`` wire object, so it works against servers with the
legacy compat mirror switched off), knows about delta uploads, and can
report cluster topology when the seed is a router::

    import repro

    with repro.connect("localhost:8750") as client:
        result = client.estimate("SSPlays", "//PLAY/ACT/$SCENE")
        result.value, result.route, result.elapsed_ms
        for r in client.estimate_batch("SSPlays", ["//PLAY", "//ACT"]):
            print(r.query, r.value)

Configuration is keyword-only, either inline (``timeout=...``) or
grouped in a frozen :class:`~repro.service.config.ClientConfig`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

from repro.core.result import EstimateResult
from repro.reliability.breaker import CircuitBreaker
from repro.reliability.policy import RetryPolicy
from repro.service.client import EndpointClient, ServiceError
from repro.service.config import ClientConfig

__all__ = ["Client", "connect"]


def _to_endpoint(target: Any) -> Dict[str, Any]:
    """One seed -> EndpointClient keyword arguments."""
    if isinstance(target, str):
        from repro.cluster.router import parse_address

        host, port = parse_address(target) if ":" in target.split("//")[-1] else (
            target,
            None,
        )
        kwargs: Dict[str, Any] = {"host": host}
        if port is not None:
            kwargs["port"] = port
        return kwargs
    if isinstance(target, (tuple, list)) and len(target) == 2:
        return {"host": str(target[0]), "port": int(target[1])}
    raise TypeError(
        "connect() target must be 'host:port', a URL, a (host, port) pair "
        "or a sequence of those; got %r" % (target,)
    )


class Client:
    """Cluster-aware estimation client over one or more seed endpoints.

    Each seed gets its own :class:`EndpointClient` (created lazily);
    every call walks the seeds last-good first and fails over on
    transport errors, so any one reachable entry point is enough.  Like
    the endpoint client it wraps, an instance is **not** thread-safe
    with keep-alive connections — one per thread.
    """

    def __init__(
        self,
        targets: Sequence[Any],
        *,
        config: Optional[ClientConfig] = None,
        timeout: Optional[float] = None,
        keep_alive: Optional[bool] = None,
        retry: Optional[RetryPolicy] = None,
        retry_budget_s: Optional[float] = None,
        breaker: Optional[CircuitBreaker] = None,
    ):
        if not targets:
            raise ValueError("connect() needs at least one endpoint")
        base = config if config is not None else ClientConfig()
        self._endpoints: List[EndpointClient] = []
        for target in targets:
            kwargs = _to_endpoint(target)
            kwargs.setdefault("port", base.port)
            self._endpoints.append(
                EndpointClient(
                    timeout=timeout if timeout is not None else base.timeout,
                    keep_alive=keep_alive if keep_alive is not None else base.keep_alive,
                    retry=retry,
                    retry_budget_s=(
                        retry_budget_s
                        if retry_budget_s is not None
                        else base.retry_budget_s
                    ),
                    breaker=breaker,
                    **kwargs,
                )
            )
        # Index of the seed that answered most recently; tried first.
        self._preferred = 0

    # ------------------------------------------------------------------
    # Seed failover
    # ------------------------------------------------------------------

    @property
    def endpoints(self) -> List[str]:
        return ["%s:%d" % (e.host, e.port) for e in self._endpoints]

    def _call(self, method: str, *args, **kwargs) -> Any:
        """Run ``method`` on the preferred seed, failing over to the
        others on transport errors (a seed that *answered* — even with an
        HTTP error — is authoritative; its reply propagates)."""
        order = list(range(len(self._endpoints)))
        preferred = self._preferred
        order.remove(preferred)
        order.insert(0, preferred)
        last: Optional[ServiceError] = None
        for index in order:
            endpoint = self._endpoints[index]
            try:
                reply = getattr(endpoint, method)(*args, **kwargs)
            except ServiceError as error:
                if error.status == 0:  # transport: seed unreachable
                    last = error
                    continue
                raise
            self._preferred = index
            return reply
        assert last is not None
        raise last

    # ------------------------------------------------------------------
    # Estimation (structured results)
    # ------------------------------------------------------------------

    def estimate(
        self, synopsis: str, query: str, *, trace: bool = False
    ) -> EstimateResult:
        """One estimate as a structured :class:`EstimateResult`
        (float-coercible, so ``float(client.estimate(...))`` is the old
        bare number)."""
        reply = self._call("estimate_detail", synopsis, query, trace=trace)
        return self._result_of(reply)

    def estimate_batch(
        self,
        synopsis: str,
        queries: Sequence[str],
        *,
        allow_partial: bool = False,
    ) -> List[Optional[EstimateResult]]:
        """A batch of structured results, in query order.

        Against a scatter-gather router a degraded batch carries
        per-item errors for the chunk whose replicas all failed; with
        ``allow_partial=True`` those slots come back as ``None`` (the
        answered ones are real), otherwise the first item error raises
        :class:`ServiceError`.
        """
        reply = self._call(
            "_request",
            "POST",
            "/estimate",
            {"synopsis": synopsis, "queries": list(queries)},
        )
        results: List[Optional[EstimateResult]] = []
        for item in reply.get("results", []):
            error = item.get("error")
            if error is not None:
                if not allow_partial:
                    raise ServiceError(
                        502,
                        str(error.get("message", "degraded batch item")),
                        str(error.get("kind", "replicas_exhausted")),
                    )
                results.append(None)
                continue
            results.append(self._result_of(item))
        return results

    def explain(self, synopsis: str, query: str) -> Dict[str, Any]:
        """The server-side cost-based plan IR for ``query`` (see
        :meth:`EndpointClient.explain`); fails over across seeds like
        every other call."""
        return self._call("explain", synopsis, query)

    def execute(self, synopsis: str, query: str) -> Dict[str, Any]:
        """Plan and run ``query`` on the serving instance, returning the
        full reply (``matches``, ``match_count``, executed ``plan``,
        structured ``result``).  Statistics-only synopses surface as
        :class:`ServiceError` kind ``execute_unsupported``."""
        return self._call("execute", synopsis, query)

    @staticmethod
    def _result_of(item: Dict[str, Any]) -> EstimateResult:
        wire = item.get("result")
        if isinstance(wire, dict):
            return EstimateResult.from_dict(wire)
        # A pre-result-era server (format_version 0 responses): synthesize
        # from the flat fields so the client still works against it.
        return EstimateResult(
            value=float(item["estimate"]),
            query=str(item.get("query", "")),
            route=str(item.get("route", "")),
            cached=item.get("cached"),
            kernel=item.get("kernel"),
        )

    # ------------------------------------------------------------------
    # Maintenance + observability passthrough
    # ------------------------------------------------------------------

    def apply_delta(
        self, synopsis: str, partial, *, force_refresh: bool = False
    ) -> Dict[str, Any]:
        """Upload a delta (see :meth:`EndpointClient.apply_delta`);
        through a router this fans out to every replica."""
        return self._call(
            "apply_delta", synopsis, partial, force_refresh=force_refresh
        )

    def healthz(self) -> Dict[str, Any]:
        return self._call("healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._call("metrics")

    def synopses(self) -> List[Dict[str, Any]]:
        return self._call("synopses")

    def topology(self) -> Optional[Dict[str, Any]]:
        """The cluster topology (``GET /cluster``) when the seed is a
        router; ``None`` against a plain single-instance service."""
        try:
            return self._call("_request", "GET", "/cluster")
        except ServiceError as error:
            if error.status == 404:
                return None
            raise

    def close(self) -> None:
        for endpoint in self._endpoints:
            endpoint.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def connect(
    target: Union[str, Sequence[Any], None] = None,
    *,
    config: Optional[ClientConfig] = None,
    timeout: Optional[float] = None,
    keep_alive: Optional[bool] = None,
    retry: Optional[RetryPolicy] = None,
    retry_budget_s: Optional[float] = None,
    breaker: Optional[CircuitBreaker] = None,
) -> Client:
    """Open a cluster-aware :class:`Client`.

    ``target`` is one endpoint (``"host:port"`` or
    ``"http://host:port"`` — a service instance, a worker pool, or a
    router) or a seed list of them; ``None`` uses the
    :class:`ClientConfig` default (``127.0.0.1:8750``).  All tuning is
    keyword-only.
    """
    base = config if config is not None else ClientConfig()
    if target is None:
        targets: Sequence[Any] = [(base.host, base.port)]
    elif isinstance(target, str):
        targets = [target]
    elif (
        isinstance(target, (tuple, list))
        and len(target) == 2
        and isinstance(target[1], int)
    ):
        targets = [target]  # one (host, port) pair, not a seed list
    else:
        targets = list(target)
    return Client(
        targets,
        config=base,
        timeout=timeout,
        keep_alive=keep_alive,
        retry=retry,
        retry_budget_s=retry_budget_s,
        breaker=breaker,
    )
