"""Consistent-hash ring for routing synopses to estimation backends.

The scatter-gather router places every synopsis (by name — the unit of
sharding is the collection, never a query) on a ring of backends using
consistent hashing with virtual nodes: each backend is hashed onto the
ring ``vnodes`` times, a key routes to the first virtual node clockwise
from its own hash, and the next ``n - 1`` *distinct* backends clockwise
are its replicas.  Adding or removing one backend therefore remaps only
the keys that hashed between it and its predecessor — roughly ``1/B`` of
the keyspace — instead of reshuffling everything the way ``hash(key) %
B`` would.

Hashing is :mod:`hashlib` MD5 (stable across processes and Python
versions, unlike the seeded builtin ``hash``), so every router instance
— and every client that wants to predict placement — computes the same
ring from the same backend list.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import List, Sequence, Tuple

__all__ = ["HashRing", "DEFAULT_VNODES"]

#: Virtual nodes per backend.  64 keeps the per-backend keyspace share
#: within a few percent of uniform for small clusters while the ring
#: stays tiny (a 16-backend ring is 1024 points).
DEFAULT_VNODES = 64


def _point(data: str) -> int:
    """A stable 64-bit ring position for ``data``."""
    digest = hashlib.md5(data.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """An immutable consistent-hash ring over a backend list.

    ``backends`` are opaque identifiers (the router uses ``host:port``
    strings); duplicates are rejected because a duplicated backend would
    silently halve the effective replication of every key it owns.
    """

    def __init__(self, backends: Sequence[str], vnodes: int = DEFAULT_VNODES):
        names = list(backends)
        if not names:
            raise ValueError("a hash ring needs at least one backend")
        if len(set(names)) != len(names):
            raise ValueError("duplicate backends: %r" % (names,))
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.backends: Tuple[str, ...] = tuple(names)
        self.vnodes = vnodes
        points: List[Tuple[int, str]] = []
        for name in names:
            for replica in range(vnodes):
                points.append((_point("%s#%d" % (name, replica)), name))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [name for _, name in points]

    def node_for(self, key: str) -> str:
        """The primary backend for ``key``."""
        return self.replicas_for(key, 1)[0]

    def replicas_for(self, key: str, count: int) -> List[str]:
        """The first ``count`` distinct backends clockwise from ``key``.

        The primary comes first; asking for more replicas than there are
        backends returns every backend (a 2-node cluster simply cannot
        hold 3 copies).
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        count = min(count, len(self.backends))
        start = bisect_right(self._points, _point(key)) % len(self._points)
        chosen: List[str] = []
        for offset in range(len(self._points)):
            owner = self._owners[(start + offset) % len(self._points)]
            if owner not in chosen:
                chosen.append(owner)
                if len(chosen) == count:
                    break
        return chosen

    def __len__(self) -> int:
        return len(self.backends)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "HashRing(backends=%r, vnodes=%d)" % (list(self.backends), self.vnodes)
