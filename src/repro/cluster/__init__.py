"""Cluster tier: incremental maintenance + horizontally sharded serving.

Two capabilities turn the single-process estimation service into a
cluster:

* :mod:`repro.cluster.delta` — **incremental synopsis maintenance**: a
  delta-capable synopsis (:class:`IncrementalSynopsis`) absorbs appended
  document fragments as :class:`~repro.build.stream.PartialSynopsis`
  uploads — merging the exact statistics tables and re-deriving
  histograms in milliseconds, bit-identical to a from-scratch rebuild —
  with bounded-staleness deferral under a drift threshold;
* :mod:`repro.cluster.ring` / :mod:`repro.cluster.router` — **horizontal
  sharding**: a scatter-gather router consistently hashes synopses
  across N backend instances with replication, last-good failover and
  partial-result batch degradation;
* :mod:`repro.cluster.client` — the **unified client**
  (:func:`repro.connect`) that talks to any of it — one instance, a
  worker pool, a router, or a seed list — and returns structured
  :class:`~repro.core.result.EstimateResult` objects.

Submodules import lazily (PEP 562) so ``import repro.cluster`` stays
cheap and cycle-free: the router pulls in the service client, which must
not re-enter a half-initialised package.
"""

from typing import TYPE_CHECKING

_EXPORTS = {
    "DeltaError": "repro.cluster.delta",
    "DeltaOutcome": "repro.cluster.delta",
    "DeltaUnsupportedError": "repro.cluster.delta",
    "IncrementalSynopsis": "repro.cluster.delta",
    "HashRing": "repro.cluster.ring",
    "ClusterError": "repro.cluster.router",
    "ClusterRouter": "repro.cluster.router",
    "ReplicasExhaustedError": "repro.cluster.router",
    "RouterConfig": "repro.cluster.router",
    "RouterServer": "repro.cluster.router",
    "Client": "repro.cluster.client",
    "connect": "repro.cluster.client",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from repro.cluster.client import Client, connect
    from repro.cluster.delta import (
        DeltaError,
        DeltaOutcome,
        DeltaUnsupportedError,
        IncrementalSynopsis,
    )
    from repro.cluster.ring import HashRing
    from repro.cluster.router import (
        ClusterError,
        ClusterRouter,
        ReplicasExhaustedError,
        RouterConfig,
        RouterServer,
    )


def __getattr__(name):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError("module %r has no attribute %r" % (__name__, name))
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
