"""Incremental synopsis maintenance: merge deltas into a live system.

The paper builds its synopsis once per document; a serving tier cannot
afford that — documents grow continuously and a full rebuild re-scans
every byte.  The mergeable :class:`~repro.build.stream.PartialSynopsis`
algebra from the sharded builder already does the heavy lifting: a delta
(new top-level subtrees appended at the end of the document) is just one
more shard, scanned in isolation and merged into the maintained body
tables.  Only the synopsis-sized merge and the histogram rebuild are
paid per delta, never a re-scan of the base document.

Exactness
---------

:meth:`IncrementalSynopsis.apply` is **bit-identical** to a from-scratch
build of the combined document (pinned by tests/cluster/test_delta.py):

* append-at-end deltas preserve the first-occurrence order of the
  encoding table, so the final bit layout after a delta equals the
  layout a combined build would derive;
* the frequency/order table merges are commutative sums;
* the root tuple and the root's sibling-group cells are *recomputed*
  from the full ``top`` sequence after every merge (they cannot be
  patched in place — appending children changes existing elements'
  before/after counts), exactly as the shard reducer does.

Bounded staleness
-----------------

Rebuilding the p-/o-histograms (and binary tree) dominates the apply
cost for small deltas.  ``drift_threshold`` defers that: a delta whose
cumulative appended element mass stays under ``threshold *
elements_at_last_refresh`` merges into the exact body tables but keeps
the previous system serving — stale, never torn, since the served
:class:`~repro.core.system.EstimationSystem` is immutable and swapped
atomically.  ``drift_threshold=0`` (the default) refreshes on every
apply, preserving bit-identity at all times.
"""

from __future__ import annotations

import threading
import time
from typing import NamedTuple, Optional, TYPE_CHECKING

from repro.build.merge import BodyTables, bit_remapper, reconstitute
from repro.build.stream import PartialSynopsis, SiblingRecord
from repro.errors import BuildError
from repro.obs.trace import NULL_TRACER
from repro.stats.path_order import PathOrderTable
from repro.stats.pathid_freq import PathIdFrequencyTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import EstimationSystem


class DeltaError(BuildError):
    """A delta cannot be merged (wrong shape, wrong scan mode)."""

    kind = "delta"


class DeltaUnsupportedError(DeltaError):
    """The target synopsis does not carry incremental state.

    Snapshot- or pack-loaded systems without an embedded ``incremental``
    section have empty exact tables and no top-level record sequence;
    they can only be replaced wholesale (rebuild + hot reload), not
    delta-maintained.
    """

    kind = "delta_unsupported"


class DeltaOutcome(NamedTuple):
    """What one :meth:`IncrementalSynopsis.apply` call did."""

    #: The serving system *after* the apply (the previous one when the
    #: refresh was deferred under the drift threshold).
    system: "EstimationSystem"
    #: Whether the histograms were re-bucketed and the system swapped.
    refreshed: bool
    #: Unrefreshed element mass as a fraction of the mass at the last
    #: refresh (0.0 right after a refresh).
    drift: float
    #: Elements the delta contributed.
    elements_added: int
    #: Label paths the delta introduced (encoding-table growth).
    new_paths: int
    #: Wall time of the apply, milliseconds.
    elapsed_ms: float


class IncrementalSynopsis:
    """A synopsis maintained under appended-subtree deltas.

    Holds the merged :class:`~repro.build.merge.BodyTables` of everything
    applied so far plus the served system materialized from them.  All
    mutation is serialized under one lock; readers never take it — they
    read the ``system`` attribute, which only ever points at a fully
    constructed system.
    """

    def __init__(
        self,
        body: BodyTables,
        root_tag: str,
        *,
        p_variance: float = 0.0,
        o_variance: float = 0.0,
        use_histograms: bool = True,
        build_binary_tree: bool = True,
        drift_threshold: float = 0.0,
        name: str = "",
        tracer=NULL_TRACER,
    ):
        if drift_threshold < 0:
            raise DeltaError(
                "drift_threshold must be >= 0, got %r" % (drift_threshold,)
            )
        self._body = body
        self._index = {path: i + 1 for i, path in enumerate(body.paths)}
        self.root_tag = root_tag
        self.p_variance = p_variance
        self.o_variance = o_variance
        self.use_histograms = use_histograms
        self.build_binary_tree = build_binary_tree
        self.drift_threshold = drift_threshold
        self.name = name
        self.tracer = tracer
        self._lock = threading.Lock()
        # Delta accounting (read by /metrics and describe()).
        self.applies_total = 0
        self.refreshes_total = 0
        self.deferred_total = 0
        self.elements_applied_total = 0
        self._drift_mass = 0
        self._mass_at_refresh = max(1, body.element_count)
        self.system: "EstimationSystem" = self._materialize(None)
        self.refreshes_total = 0  # the initial build is not a refresh

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        source,
        *,
        p_variance: float = 0.0,
        o_variance: float = 0.0,
        use_histograms: bool = True,
        build_binary_tree: bool = True,
        drift_threshold: float = 0.0,
        workers: int = 1,
        shard_bytes: Optional[int] = None,
        lenient: bool = False,
        name: str = "",
        tracer=NULL_TRACER,
    ) -> "IncrementalSynopsis":
        """Build delta-capable state from XML text or a file path.

        The document is collected through the sharded body path
        (:meth:`SynopsisBuilder.collect_body`), so the resulting system
        is bit-identical to ``build_synopsis`` on the same input while
        retaining everything needed to merge future deltas.
        """
        import os

        from repro.build.builder import DEFAULT_SHARD_BYTES, SynopsisBuilder

        builder = SynopsisBuilder(
            p_variance=p_variance,
            o_variance=o_variance,
            use_histograms=use_histograms,
            build_binary_tree=build_binary_tree,
            workers=workers,
            shard_bytes=shard_bytes or DEFAULT_SHARD_BYTES,
            lenient=lenient,
            tracer=tracer,
        )
        text = source
        if isinstance(source, os.PathLike) or (
            isinstance(source, str) and source.lstrip()[:1] != "<"
        ):
            path = os.fspath(source)
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            if not name:
                name = os.path.splitext(os.path.basename(path))[0]
        root_tag, body = builder.collect_body(text)
        return cls(
            body,
            root_tag,
            p_variance=p_variance,
            o_variance=o_variance,
            use_histograms=use_histograms,
            build_binary_tree=build_binary_tree,
            drift_threshold=drift_threshold,
            name=name,
            tracer=tracer,
        )

    # ------------------------------------------------------------------
    # Delta application
    # ------------------------------------------------------------------

    def scan_fragment(self, text: str, lenient: bool = False) -> PartialSynopsis:
        """Scan delta XML (a run of top-level subtrees) into a partial.

        The fragment is scanned under this synopsis' root prefix, which
        is exactly what ``repro delta --file`` ships to the service.
        """
        from repro.build.stream import scan_text

        return scan_text(text, (self.root_tag,), lenient=lenient)

    def apply(
        self, partial: PartialSynopsis, *, force_refresh: bool = False
    ) -> DeltaOutcome:
        """Merge one delta partial; maybe refresh the served system.

        ``partial`` must be a fragment scan (``top`` records present) of
        subtrees appended *at the end* of the document — that is the
        shape under which the merge is exact.  An empty partial is a
        no-op.  Raises :class:`DeltaError` for whole-document partials.
        """
        if partial.top is None:
            raise DeltaError(
                "delta must be a fragment scan under the root prefix "
                "(scan_text(text, (root_tag,)) or scan_fragment); got a "
                "whole-document partial"
            )
        started = time.perf_counter()
        with self._lock, self.tracer.span("delta_apply") as span:
            if partial.element_count == 0 and not partial.paths:
                span.incr("empty")
                return DeltaOutcome(
                    self.system, False, self.drift(), 0, 0,
                    (time.perf_counter() - started) * 1000.0,
                )
            new_paths = self._merge_locked(partial)
            span.incr("elements", partial.element_count)
            span.incr("new_paths", new_paths)
            self.applies_total += 1
            self.elements_applied_total += partial.element_count
            self._drift_mass += partial.element_count
            drift = self._drift_mass / self._mass_at_refresh
            refresh = (
                force_refresh
                or new_paths > 0  # the served bit layout is now stale
                or self.drift_threshold <= 0.0
                or drift > self.drift_threshold
            )
            if refresh:
                system = self._materialize(self.system)
                span.incr("refreshed")
            else:
                system = self.system
                self.deferred_total += 1
                # The served statistics are unchanged (the merge is
                # deferred), so cached estimates are still correct —
                # but the ISSUE contract is that *every* delta apply
                # invalidates, and a bump is O(1), so staleness can
                # never depend on the drift heuristic.
                system.semcache.bump_generation()
            return DeltaOutcome(
                system,
                refresh,
                0.0 if refresh else drift,
                partial.element_count,
                new_paths,
                (time.perf_counter() - started) * 1000.0,
            )

    def refresh(self) -> "EstimationSystem":
        """Force a histogram rebuild + atomic system swap now."""
        with self._lock:
            return self._materialize(self.system)

    def drift(self) -> float:
        """Unrefreshed element mass / mass at the last refresh."""
        return self._drift_mass / self._mass_at_refresh

    @property
    def stale(self) -> bool:
        """True when merged deltas are not yet reflected in the system."""
        return self._drift_mass > 0

    def describe(self) -> dict:
        return {
            "root_tag": self.root_tag,
            "elements": self._body.element_count,
            "paths": len(self._body.paths),
            "applies": self.applies_total,
            "refreshes": self.refreshes_total,
            "deferred": self.deferred_total,
            "drift": round(self.drift(), 6),
            "stale": self.stale,
            "drift_threshold": self.drift_threshold,
        }

    # ------------------------------------------------------------------
    # Internals (holding the lock)
    # ------------------------------------------------------------------

    def _merge_locked(self, partial: PartialSynopsis) -> int:
        """Merge a provisional-layout delta into the final-layout body.

        Returns how many genuinely new paths the delta introduced.  When
        ``k`` new paths arrive, every existing path's encoding ``e``
        moves from bit ``w - e`` to bit ``w + k - e``: a uniform
        ``pid << k`` shift of every base table — cheap, synopsis-sized.
        """
        body = self._body
        fresh = [path for path in partial.paths if path not in self._index]
        k = len(fresh)
        if k:
            paths = body.paths + fresh
            self._index = {path: i + 1 for i, path in enumerate(paths)}
            shift = k  # close over an int, not self
            shifted = bit_remapper(
                [shift + bit for bit in range(len(body.paths))]
            )
            base_freq = body.pathid_table.remap_pathids(shifted)
            base_order = body.order_table.remap_pathids(shifted)
            base_top = [
                SiblingRecord(record.tag, record.pid << shift)
                for record in body.top
            ]
        else:
            paths = body.paths
            base_freq = body.pathid_table
            base_order = body.order_table
            base_top = list(body.top)
        width = len(paths)
        bit_map = [width - self._index[path] for path in partial.paths]
        remap = bit_remapper(bit_map)
        delta_freq = PathIdFrequencyTable(partial.freq).remap_pathids(remap)
        delta_order = PathOrderTable(partial.grids).remap_pathids(remap)
        base_top.extend(
            SiblingRecord(record.tag, remap(record.pid)) for record in partial.top
        )
        self._body = BodyTables(
            paths,
            base_freq.merge(delta_freq),
            base_order.merge(delta_order),
            base_top,
            body.element_count + partial.element_count,
        )
        return k

    def _materialize(self, previous) -> "EstimationSystem":
        """Rebuild histograms/binary tree from the body and swap.

        The new system is fully constructed before the ``system``
        attribute moves, and the old one is immutable, so a concurrent
        reader sees either complete state — never a torn mix.  The
        replaced system's compiled kernel is invalidated (the PR 5
        stale-kernel guard), so captured references fall back instead of
        serving pre-delta statistics.
        """
        from repro.core.system import EstimationSystem

        tables = reconstitute(self._body, self.root_tag)
        system = EstimationSystem.from_statistics(
            tables.encoding_table,
            tables.pathid_table,
            tables.order_table,
            distinct_pathids=tables.distinct_pathids,
            p_variance=self.p_variance,
            o_variance=self.o_variance,
            use_histograms=self.use_histograms,
            build_binary_tree=self.build_binary_tree,
            name=self.name,
        )
        system.incremental = self
        self.system = system
        self._drift_mass = 0
        self._mass_at_refresh = max(1, self._body.element_count)
        self.refreshes_total += 1
        if previous is not None:
            previous.invalidate_kernel()
        return system
