"""Scatter-gather estimation router: one front door over N backends.

The estimation tier scales horizontally by running several
:class:`~repro.service.server.ServiceServer` instances (each loading its
shard of the snapshot inventory) behind one :class:`RouterServer`.  The
router owns placement and failure handling so clients stay dumb:

* **Placement** — synopses map to backends by consistent hashing on the
  collection name (:class:`~repro.cluster.ring.HashRing`), replicated
  onto ``replication`` distinct backends.  The unit of sharding is the
  synopsis: one estimate never spans backends, so routing adds one hop
  and zero merge logic on the single-query path.
* **Failover** — replicas are tried **last-good first**; a backend that
  answered most recently for a synopsis gets the next request for it.
  Transport failures and 5xx move on to the next replica (each backend
  sits behind its own :class:`~repro.reliability.breaker.CircuitBreaker`
  so a dead instance is skipped without paying its timeout every
  request); 4xx — the backend answered, the request is bad — propagate
  immediately, except ``404 unknown_synopsis`` which also tries the next
  replica (an instance may lag a snapshot sync).  A ``503`` **shed** is
  neither: the backend is alive, just saturated, so it does *not* count
  against its breaker — instead its ``Retry-After`` starts a cooldown
  during which the router routes around it rather than hot-retrying into
  the overload.  When every replica fails the router gives up with kind
  ``replicas_exhausted`` (502) — or, when the replicas are merely
  shedding, with kind ``overloaded`` (503) and the soonest
  ``Retry-After`` so the client backs off instead of failing over.
* **QoS tiers** — an ``X-Repro-Tier`` request header (or body ``"tier"``
  field) rides through to the backends on both the single-backend path
  and every scatter chunk, so tier-aware admission happens where the
  work runs.
* **Scatter-gather** — batch requests over ``scatter_min`` queries split
  into contiguous chunks across the synopsis' replica set and execute in
  parallel; the gathered reply preserves query order.  A chunk whose
  replicas all fail degrades to per-item ``{"error": ...}`` entries with
  a top-level ``"degraded": true`` flag instead of failing the batch —
  partial answers beat none for a cost optimizer that can fall back to
  default selectivities.
* **Deltas** — ``POST /delta`` fans out to *all* replicas of the
  synopsis (each holds a full copy, each must absorb the delta); the
  reply carries per-replica outcomes and succeeds if any replica did.
* **Observability** — ``GET /healthz`` polls every backend and
  aggregates (``ok`` only when all replicas are), ``GET /metrics`` wraps
  the router's own :class:`~repro.service.metrics.ServiceMetrics`
  (requests, failovers, degraded batches) with per-backend counters, and
  ``GET /cluster`` reports the topology — the synopsis → replicas map a
  cluster-aware client uses to print placement.

Everything is stdlib: the router talks to backends with pooled
:class:`~repro.service.client.EndpointClient` instances (keep-alive
connections are not thread-safe, so a lease/return stack hands each
in-flight request its own client) and serves with the same
``ThreadingHTTPServer`` pattern as the estimation service.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, fields
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.errors import ReliabilityError
from repro.reliability.breaker import CircuitBreaker
from repro.service.client import EndpointClient, ServiceError
from repro.service.metrics import ServiceMetrics
from repro.service.server import RequestError, error_body

__all__ = [
    "ClusterError",
    "ReplicasExhaustedError",
    "RouterConfig",
    "ClusterRouter",
    "RouterServer",
    "DEFAULT_ROUTER_PORT",
]

DEFAULT_ROUTER_PORT = 8760


class ClusterError(ReliabilityError):
    """A cluster-level routing failure (no backend could serve)."""

    kind = "cluster"


class ReplicasExhaustedError(ClusterError):
    """Every replica of a synopsis refused or failed the request."""

    kind = "replicas_exhausted"


@dataclass(frozen=True)
class RouterConfig:
    """Tuning for :class:`ClusterRouter` / the ``repro router`` CLI."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_ROUTER_PORT
    #: Distinct backends holding each synopsis (1 = plain sharding, no
    #: redundancy; clamped to the backend count).
    replication: int = 2
    vnodes: int = DEFAULT_VNODES
    #: Per-backend request timeout (seconds).
    timeout: float = 30.0
    #: Batches of at least this many queries scatter across the replica
    #: set; smaller ones take the single-backend fast path.
    scatter_min: int = 4
    #: Consecutive failures that open a backend's circuit breaker, and
    #: how long it stays open before a probe is allowed through.
    breaker_threshold: int = 3
    breaker_recovery_s: float = 1.0

    def __post_init__(self) -> None:
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        if self.scatter_min < 2:
            raise ValueError("scatter_min must be >= 2")
        if self.timeout <= 0:
            raise ValueError("timeout must be > 0")

    def as_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


def parse_address(address: str) -> Tuple[str, int]:
    """``host:port`` / ``http://host:port`` -> ``(host, port)``."""
    stripped = address.strip()
    for prefix in ("http://", "https://"):
        if stripped.startswith(prefix):
            stripped = stripped[len(prefix):]
            break
    stripped = stripped.rstrip("/")
    host, separator, port = stripped.rpartition(":")
    if not separator or not host:
        raise ValueError("backend address %r is not host:port" % address)
    try:
        return host, int(port)
    except ValueError:
        raise ValueError("backend address %r has a non-numeric port" % address)


class Backend:
    """One estimation instance: address, client pool, breaker, counters.

    Keep-alive :class:`EndpointClient` instances are not thread-safe, so
    concurrent router requests each lease a client from a stack (growing
    it on demand) and return it afterwards; a client that just suffered a
    transport error is dropped instead of returned, so a stale broken
    connection is never handed to the next request.
    """

    def __init__(
        self,
        address: str,
        timeout: float = 30.0,
        breaker_threshold: int = 3,
        breaker_recovery_s: float = 1.0,
        client_factory: Optional[Callable[[], Any]] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.address = address
        host, port = parse_address(address)
        self._factory = client_factory or (
            lambda: EndpointClient(host=host, port=port, timeout=timeout)
        )
        self.breaker = CircuitBreaker(
            failure_threshold=breaker_threshold, recovery_after_s=breaker_recovery_s
        )
        self._clock = clock
        self._idle: List[Any] = []
        self._lock = threading.Lock()
        self.requests_total = 0
        self.failures_total = 0
        self.sheds_total = 0
        # Monotonic stamp until which this backend is "cooling": it shed
        # with a Retry-After and hot-retrying it would amplify overload.
        self._shed_until = 0.0

    def call(self, method: str, path: str, payload: Optional[Dict[str, Any]] = None):
        """One request through a leased client; raises ServiceError."""
        with self._lock:
            client = self._idle.pop() if self._idle else None
            self.requests_total += 1
        if client is None:
            client = self._factory()
        try:
            document = client._request(method, path, payload)
        except ServiceError:
            with self._lock:
                self.failures_total += 1
            # Transport state is suspect; start the next lease fresh.
            try:
                client.close()
            except Exception:  # pragma: no cover - defensive
                pass
            raise
        with self._lock:
            self._idle.append(client)
        return document

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
        for client in idle:
            try:
                client.close()
            except Exception:  # pragma: no cover - defensive
                pass

    def note_shed(self, retry_after_s: Optional[float]) -> None:
        """The backend shed (503 overloaded): honor its ``Retry-After``
        by cooling this backend instead of recording a breaker failure."""
        with self._lock:
            self.sheds_total += 1
            self._shed_until = max(
                self._shed_until, self._clock() + (retry_after_s or 1.0)
            )

    def shed_remaining(self) -> float:
        """Seconds of shed cooldown left (0 when serving normally)."""
        with self._lock:
            return max(0.0, self._shed_until - self._clock())

    @property
    def cooling(self) -> bool:
        return self.shed_remaining() > 0.0

    def describe(self) -> Dict[str, Any]:
        return {
            "address": self.address,
            "breaker": self.breaker.state,
            "requests_total": self.requests_total,
            "failures_total": self.failures_total,
            "sheds_total": self.sheds_total,
            "cooling": self.cooling,
        }


class ClusterRouter:
    """Transport-free scatter-gather core (the HTTP front is
    :class:`RouterServer`; tests and benchmarks can drive this object
    directly)."""

    def __init__(
        self,
        backends: Sequence[str],
        config: Optional[RouterConfig] = None,
        client_factory: Optional[Callable[[str], Any]] = None,
    ):
        self.config = config if config is not None else RouterConfig()
        self.ring = HashRing(backends, vnodes=self.config.vnodes)
        make = client_factory
        self.backends: Dict[str, Backend] = {
            address: Backend(
                address,
                timeout=self.config.timeout,
                breaker_threshold=self.config.breaker_threshold,
                breaker_recovery_s=self.config.breaker_recovery_s,
                client_factory=(lambda a=address: make(a)) if make else None,
            )
            for address in self.ring.backends
        }
        self.metrics = ServiceMetrics()
        # synopsis -> address of the replica that last answered for it.
        self._last_good: Dict[str, str] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def replicas(self, synopsis: str) -> List[Backend]:
        """The synopsis' replica set, last-good replica first."""
        addresses = self.ring.replicas_for(synopsis, self.config.replication)
        with self._lock:
            preferred = self._last_good.get(synopsis)
        if preferred in addresses:
            addresses.remove(preferred)
            addresses.insert(0, preferred)
        return [self.backends[address] for address in addresses]

    def _record_good(self, synopsis: str, backend: Backend) -> None:
        with self._lock:
            self._last_good[synopsis] = backend.address

    # ------------------------------------------------------------------
    # Failover primitive
    # ------------------------------------------------------------------

    def _try_replicas(
        self,
        synopsis: str,
        replicas: Sequence[Backend],
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]],
    ) -> Tuple[Backend, Dict[str, Any]]:
        """Run one request against the replica set with failover.

        Raises :class:`RequestError` (propagated 4xx, or 503
        ``overloaded`` with a ``Retry-After`` when every live replica is
        shedding) or :class:`ReplicasExhaustedError` (nothing answered).
        """
        last_error: Optional[str] = None
        tried = 0
        shed_retry_after: Optional[float] = None
        for backend in replicas:
            if not backend.breaker.allow():
                last_error = "%s: circuit open" % backend.address
                continue
            cooldown = backend.shed_remaining()
            if cooldown > 0.0:
                # Recently shed and still inside its Retry-After window:
                # hot-retrying it would amplify the very overload it
                # reported.  Route around it.
                shed_retry_after = (
                    cooldown
                    if shed_retry_after is None
                    else min(shed_retry_after, cooldown)
                )
                last_error = "%s: shedding (cooling %.2fs)" % (
                    backend.address,
                    cooldown,
                )
                continue
            tried += 1
            try:
                document = backend.call(method, path, payload)
            except ServiceError as error:
                if error.status == 503 and error.kind == "overloaded":
                    # A shed is not a failure: the backend answered,
                    # it is just saturated.  Keep its breaker healthy,
                    # start its cooldown, move on.
                    backend.breaker.record_success()
                    backend.note_shed(error.retry_after_s)
                    self.metrics.incr("backend_sheds_total")
                    pause = error.retry_after_s or 1.0
                    shed_retry_after = (
                        pause
                        if shed_retry_after is None
                        else min(shed_retry_after, pause)
                    )
                    last_error = "%s: shed (%s)" % (backend.address, error.message)
                    continue
                transient = error.retryable or error.status >= 500
                lagging = error.status == 404 and error.kind == "unknown_synopsis"
                if transient:
                    backend.breaker.record_failure()
                else:
                    backend.breaker.record_success()
                if transient or lagging:
                    # Try the next replica; remember why this one failed.
                    self.metrics.incr("failovers_total")
                    last_error = "%s: %s" % (backend.address, error)
                    continue
                # The backend answered and the request itself is bad —
                # no other replica will disagree.
                raise RequestError(error.status, error.message, error.kind)
            backend.breaker.record_success()
            self._record_good(synopsis, backend)
            return backend, document
        if shed_retry_after is not None:
            # Every live replica is shedding: the cluster is saturated,
            # not broken.  503 + the soonest Retry-After tells the client
            # to back off rather than treat this as a dead cluster.
            raise RequestError(
                503,
                "all replicas of %r are shedding load (last: %s)"
                % (synopsis, last_error),
                "overloaded",
                retry_after_s=shed_retry_after,
            )
        raise ReplicasExhaustedError(
            "all %d replica(s) of %r failed (tried %d; last: %s)"
            % (len(replicas), synopsis, tried, last_error or "none reachable")
        )

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def handle_estimate(self, payload: Any) -> Dict[str, Any]:
        """Route one ``POST /estimate`` body (single or batch)."""
        started = time.perf_counter()
        if not isinstance(payload, dict):
            raise RequestError(400, "request body must be a JSON object")
        synopsis = payload.get("synopsis")
        if not isinstance(synopsis, str) or not synopsis:
            raise RequestError(400, "missing 'synopsis' field")
        queries = payload.get("queries")
        replicas = self.replicas(synopsis)
        try:
            if (
                isinstance(queries, list)
                and len(queries) >= self.config.scatter_min
                and len(replicas) > 1
            ):
                document = self._scatter_batch(synopsis, payload, queries, replicas)
            else:
                backend, document = self._try_replicas(
                    synopsis, replicas, "POST", "/estimate", payload
                )
                document.setdefault("backend", backend.address)
        except ReplicasExhaustedError as error:
            self.metrics.observe(
                synopsis, time.perf_counter() - started, queries=1, error=True
            )
            raise RequestError(502, str(error), error.kind)
        count = len(queries) if isinstance(queries, list) else 1
        self.metrics.observe(synopsis, time.perf_counter() - started, queries=count)
        return document

    def _scatter_batch(
        self,
        synopsis: str,
        payload: Dict[str, Any],
        queries: List[Any],
        replicas: List[Backend],
    ) -> Dict[str, Any]:
        """Split a batch into contiguous chunks, fan out, gather in order.

        Each chunk keeps the whole replica set for failover (rotated so
        chunk *i* starts on replica *i* — the parallelism) and a chunk
        only degrades when every replica failed it.

        Duplicate query texts are deduplicated *before* chunking
        (within-batch common-subexpression elimination at the routing
        layer: each distinct text ships and evaluates once) and the
        replies are fanned back out to the original positions.  Dedup
        is by exact text — canonical equivalence is the backends' job,
        where the parsed AST is available.
        """
        actuals = payload.get("actuals")
        aligned_actuals = (
            actuals if isinstance(actuals, list) and len(actuals) == len(queries)
            else None
        )
        expand: List[int] = []
        unique_queries: List[Any] = []
        unique_actuals: Optional[List[Any]] = (
            [] if aligned_actuals is not None else None
        )
        positions: Dict[str, int] = {}
        for offset, query in enumerate(queries):
            if isinstance(query, str):
                index = positions.get(query)
                if index is None:
                    index = len(unique_queries)
                    positions[query] = index
                    unique_queries.append(query)
                    if unique_actuals is not None:
                        unique_actuals.append(aligned_actuals[offset])
            else:
                # Non-string entries (the backend will 4xx them per-item)
                # are never merged.
                index = len(unique_queries)
                unique_queries.append(query)
                if unique_actuals is not None:
                    unique_actuals.append(aligned_actuals[offset])
            expand.append(index)

        chunk_count = min(len(replicas), len(unique_queries))
        bounds = []
        base, extra = divmod(len(unique_queries), chunk_count)
        start = 0
        for index in range(chunk_count):
            size = base + (1 if index < extra else 0)
            bounds.append((start, start + size))
            start += size

        outcomes: List[Optional[Dict[str, Any]]] = [None] * chunk_count
        errors: List[Optional[ReplicasExhaustedError]] = [None] * chunk_count

        def run(index: int, lo: int, hi: int) -> None:
            chunk_payload = dict(payload)
            chunk_payload["queries"] = unique_queries[lo:hi]
            if unique_actuals is not None:
                chunk_payload["actuals"] = unique_actuals[lo:hi]
            rotated = replicas[index % len(replicas):] + replicas[: index % len(replicas)]
            try:
                _, outcomes[index] = self._try_replicas(
                    synopsis, rotated, "POST", "/estimate", chunk_payload
                )
            except ReplicasExhaustedError as error:
                errors[index] = error
            except RequestError as error:
                # A per-chunk 4xx (e.g. one malformed query) degrades the
                # chunk rather than aborting sibling chunks mid-flight.
                errors[index] = ReplicasExhaustedError(str(error))

        threads = [
            threading.Thread(target=run, args=(index, lo, hi), daemon=True)
            for index, (lo, hi) in enumerate(bounds)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        if all(error is not None for error in errors):
            raise ReplicasExhaustedError(
                "batch scatter failed on every chunk: %s" % errors[0]
            )
        unique_results: List[Dict[str, Any]] = []
        degraded = False
        generation = 0
        for index, (lo, hi) in enumerate(bounds):
            outcome = outcomes[index]
            if outcome is None:
                degraded = True
                self.metrics.incr("degraded_chunks_total")
                failure = error_body("replicas_exhausted", str(errors[index]))
                unique_results.extend(dict(failure) for _ in range(hi - lo))
                continue
            generation = max(generation, int(outcome.get("generation", 0)))
            unique_results.extend(outcome.get("results", []))
        if degraded:
            self.metrics.incr("degraded_batches_total")
        # Fan the deduplicated replies back out to the original batch
        # positions (independent dict copies, so per-item consumers can
        # mutate without aliasing).
        results: List[Dict[str, Any]] = []
        for index in expand:
            if index < len(unique_results):
                results.append(dict(unique_results[index]))
            else:  # pragma: no cover - defensive against short replies
                results.append(error_body("short_reply", "backend returned "
                                          "fewer results than queries"))
        document: Dict[str, Any] = {
            "synopsis": synopsis,
            "generation": generation,
            "results": results,
            "count": len(results),
            "scattered": chunk_count,
        }
        if degraded:
            document["degraded"] = True
        return document

    def handle_delta(self, payload: Any) -> Dict[str, Any]:
        """Fan a delta out to every replica of its synopsis.

        Each replica holds a full copy of the synopsis, so each must
        absorb the delta; the reply carries per-replica outcomes and the
        call succeeds when at least one replica applied it (the others
        converge through snapshot write-back or a re-send).
        """
        if not isinstance(payload, dict):
            raise RequestError(400, "request body must be a JSON object")
        synopsis = payload.get("synopsis")
        if not isinstance(synopsis, str) or not synopsis:
            raise RequestError(400, "missing 'synopsis' field")
        replicas = self.replicas(synopsis)
        outcomes: List[Dict[str, Any]] = []
        applied = 0
        first_client_error: Optional[ServiceError] = None
        for backend in replicas:
            try:
                document = backend.call("POST", "/delta", payload)
            except ServiceError as error:
                if error.retryable or error.status >= 500:
                    backend.breaker.record_failure()
                else:
                    backend.breaker.record_success()
                    if first_client_error is None:
                        first_client_error = error
                outcomes.append(
                    {
                        "backend": backend.address,
                        "error": {"kind": error.kind, "message": error.message},
                    }
                )
                continue
            backend.breaker.record_success()
            applied += 1
            entry = {"backend": backend.address}
            entry.update(document)
            outcomes.append(entry)
        self.metrics.incr("deltas_total")
        if applied == 0:
            if first_client_error is not None:
                # Every replica rejected it for the same client-side
                # reason (bad partial, delta-incapable synopsis).
                raise RequestError(
                    first_client_error.status,
                    first_client_error.message,
                    first_client_error.kind,
                )
            raise RequestError(
                502,
                "no replica of %r accepted the delta" % synopsis,
                ReplicasExhaustedError.kind,
            )
        return {
            "synopsis": synopsis,
            "replicas": outcomes,
            "applied": applied,
            "failed": len(outcomes) - applied,
        }

    # ------------------------------------------------------------------
    # Aggregated observability
    # ------------------------------------------------------------------

    def _poll(self, method: str, path: str) -> Dict[str, Any]:
        """One GET against every backend: address -> document or error."""
        replies: Dict[str, Any] = {}
        for address, backend in self.backends.items():
            try:
                replies[address] = backend.call(method, path)
            except ServiceError as error:
                replies[address] = {
                    "error": {"kind": error.kind, "message": error.message}
                }
        return replies

    def healthz(self) -> Dict[str, Any]:
        """Cluster liveness: ``ok`` only when every backend answered
        ``ok``; one degraded/unreachable backend makes the cluster
        ``degraded`` (it still serves through the other replicas)."""
        replies = self._poll("GET", "/healthz")
        status = "ok"
        for reply in replies.values():
            if "error" in reply or reply.get("status") != "ok":
                status = "degraded"
                break
        return {
            "status": status,
            "backends": replies,
            "replication": self.config.replication,
        }

    def synopses(self) -> Dict[str, Any]:
        """Union inventory across backends (deduplicated by name)."""
        merged: Dict[str, Dict[str, Any]] = {}
        for address, reply in self._poll("GET", "/synopses").items():
            for info in reply.get("synopses", []) or []:
                name = info.get("name")
                if isinstance(name, str):
                    merged.setdefault(name, dict(info)).setdefault(
                        "replicas", []
                    ).append(address)
        return {"synopses": sorted(merged.values(), key=lambda i: i["name"])}

    def cluster_document(self) -> Dict[str, Any]:
        """Topology: backends, ring parameters, synopsis placement."""
        names = set()
        for reply in self._poll("GET", "/synopses").values():
            for info in reply.get("synopses", []) or []:
                if isinstance(info.get("name"), str):
                    names.add(info["name"])
        return {
            "backends": [b.describe() for b in self.backends.values()],
            "replication": self.config.replication,
            "vnodes": self.config.vnodes,
            "placement": {
                name: self.ring.replicas_for(name, self.config.replication)
                for name in sorted(names)
            },
        }

    def metrics_document(self) -> Dict[str, Any]:
        document = self.metrics.snapshot()
        document["cluster"] = {
            "backends": [b.describe() for b in self.backends.values()],
            "failovers_total": self.metrics.counter("failovers_total"),
            "backend_sheds_total": self.metrics.counter("backend_sheds_total"),
            "degraded_batches_total": self.metrics.counter("degraded_batches_total"),
            "deltas_total": self.metrics.counter("deltas_total"),
        }
        return document

    def close(self) -> None:
        for backend in self.backends.values():
            backend.close()


def _make_handler(router: ClusterRouter) -> type:
    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-cluster-router"
        protocol_version = "HTTP/1.1"
        disable_nagle_algorithm = True

        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            pass

        def _reply(
            self,
            status: int,
            body: Dict[str, Any],
            headers: Optional[Dict[str, str]] = None,
        ) -> None:
            data = json.dumps(body).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(data)

        def _read_json(self) -> Any:
            length = int(self.headers.get("Content-Length", 0) or 0)
            raw = self.rfile.read(length) if length else b""
            if not raw:
                raise RequestError(400, "empty request body")
            try:
                return json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise RequestError(400, "invalid JSON body: %s" % error)

        def do_GET(self) -> None:
            try:
                if self.path == "/healthz":
                    self._reply(200, router.healthz())
                elif self.path == "/synopses":
                    self._reply(200, router.synopses())
                elif self.path == "/cluster":
                    self._reply(200, router.cluster_document())
                elif self.path == "/metrics":
                    self._reply(200, router.metrics_document())
                else:
                    self._reply(
                        404, error_body("not_found", "no such endpoint %r" % self.path)
                    )
            except RequestError as error:
                self._reply(error.status, error_body(error.kind, str(error)))
            except Exception as error:  # pragma: no cover - defensive
                self._reply(500, error_body("internal", "internal error: %s" % error))

        def do_POST(self) -> None:
            try:
                if self.path == "/estimate":
                    payload = self._read_json()
                    # Propagate the QoS tier into the body so it rides
                    # through to every backend (and scatter chunk).
                    tier = self.headers.get("X-Repro-Tier")
                    if tier and isinstance(payload, dict) and "tier" not in payload:
                        payload["tier"] = tier
                    self._reply(200, router.handle_estimate(payload))
                elif self.path == "/delta":
                    self._reply(200, router.handle_delta(self._read_json()))
                else:
                    self._reply(
                        404, error_body("not_found", "no such endpoint %r" % self.path)
                    )
            except RequestError as error:
                headers = (
                    {"Retry-After": "%g" % error.retry_after_s}
                    if getattr(error, "retry_after_s", None) is not None
                    else None
                )
                self._reply(
                    error.status, error_body(error.kind, str(error)), headers=headers
                )
            except Exception as error:  # pragma: no cover - defensive
                self._reply(500, error_body("internal", "internal error: %s" % error))

    return Handler


class RouterServer:
    """A running (threaded) HTTP front around a :class:`ClusterRouter`.

    Same lifecycle as :class:`~repro.service.server.ServiceServer`:
    ``port=0`` binds ephemeral, ``.start()`` serves on a daemon thread,
    usable as a context manager.  The router speaks the estimation
    service's wire protocol, so any service client — including the
    cluster-aware :func:`repro.connect` — can point at it unchanged.
    """

    def __init__(
        self,
        router: ClusterRouter,
        host: Optional[str] = None,
        port: Optional[int] = None,
    ):
        self.router = router
        host = host if host is not None else router.config.host
        port = port if port is not None else router.config.port
        self.httpd = ThreadingHTTPServer((host, port), _make_handler(router))
        self.httpd.daemon_threads = True
        self.host, self.port = (
            self.httpd.server_address[0],
            self.httpd.server_address[1],
        )
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        return "http://%s:%d" % (self.host, self.port)

    def start(self) -> "RouterServer":
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-router", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self.httpd.serve_forever()

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        self.router.close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "RouterServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
