"""Workload evaluation and variance sweeps.

``evaluate_estimator`` measures one estimator over one list of workload
queries; the ``sweep_*`` helpers rebuild the estimation system across a
range of variance thresholds and collect (memory, error) series — the raw
data behind Figures 9, 10, 12 and 13.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.system import EstimationSystem
from repro.harness.metrics import ErrorSummary, relative_error
from repro.workload.generator import WorkloadQuery
from repro.xmltree.document import XmlDocument

Estimator = Callable[[WorkloadQuery], float]


@dataclass(frozen=True)
class AccuracyPoint:
    """One point of a memory/accuracy series."""

    label: str
    variance: float
    memory_bytes: float
    summary: ErrorSummary

    @property
    def memory_kb(self) -> float:
        return self.memory_bytes / 1024.0

    @property
    def mean_error(self) -> float:
        return self.summary.mean


def evaluate_estimator(
    estimator: Estimator, workload: Sequence[WorkloadQuery]
) -> ErrorSummary:
    """Per-query relative errors of ``estimator`` over ``workload``."""
    errors = [
        relative_error(estimator(item), item.actual) for item in workload
    ]
    return ErrorSummary.from_errors(errors)


def system_estimator(system: EstimationSystem) -> Estimator:
    """Adapt an :class:`EstimationSystem` to the runner protocol."""
    return lambda item: system.estimate(item.query)


def sweep_p_variance(
    document: XmlDocument,
    workload: Sequence[WorkloadQuery],
    variances: Sequence[float],
    o_variance: float = 0.0,
    label: str = "",
    memory_key: str = "p_histogram",
) -> List[AccuracyPoint]:
    """Accuracy/memory across p-histogram variance settings (Figure 10)."""
    points: List[AccuracyPoint] = []
    for variance in variances:
        system = EstimationSystem.build(
            document, p_variance=variance, o_variance=o_variance
        )
        summary = evaluate_estimator(system_estimator(system), workload)
        memory = system.summary_sizes().get(memory_key, 0.0)
        points.append(AccuracyPoint(label or document.name, variance, memory, summary))
    return points


def sweep_o_variance(
    document: XmlDocument,
    workload: Sequence[WorkloadQuery],
    p_variance: float,
    o_variances: Sequence[float],
    label: str = "",
) -> List[AccuracyPoint]:
    """Accuracy/memory across o-histogram variances at a fixed p-variance
    (one curve of Figure 12/13)."""
    points: List[AccuracyPoint] = []
    for variance in o_variances:
        system = EstimationSystem.build(
            document, p_variance=p_variance, o_variance=variance
        )
        summary = evaluate_estimator(system_estimator(system), workload)
        memory = system.summary_sizes().get("o_histogram", 0.0)
        points.append(
            AccuracyPoint(
                label or "p-histo.v=%g" % p_variance, variance, memory, summary
            )
        )
    return points


def memory_series(
    document: XmlDocument, variances: Sequence[float]
) -> Dict[str, List[float]]:
    """Figure 9 series: histogram sizes across the variance range."""
    p_sizes: List[float] = []
    o_sizes: List[float] = []
    for variance in variances:
        system = EstimationSystem.build(
            document, p_variance=variance, o_variance=variance
        )
        sizes = system.summary_sizes()
        p_sizes.append(sizes.get("p_histogram", 0.0))
        o_sizes.append(sizes.get("o_histogram", 0.0))
    return {"p_histogram": p_sizes, "o_histogram": o_sizes}
