"""Plain-text chart rendering for the benchmark reports.

The figure benchmarks reproduce *curves* (error vs memory, memory vs
variance); tables of numbers hide their shapes.  This module renders
small ASCII line charts — good enough to eyeball monotonicity and
crossovers directly in ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

_GLYPHS = "ox+*#@%&"


def render_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) series as an ASCII chart.

    Points are plotted with one glyph per series; the legend maps glyphs
    to names.  Axes are linear, ranges padded slightly.
    """
    points = [(x, y) for values in series.values() for x, y in values]
    if not points:
        return "%s\n(no data)" % title if title else "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]

    def plot(x: float, y: float, glyph: str) -> None:
        col = int((x - x_lo) / x_span * (width - 1))
        row = (height - 1) - int((y - y_lo) / y_span * (height - 1))
        current = grid[row][col]
        grid[row][col] = glyph if current in (" ", glyph) else "?"

    legend: List[str] = []
    for index, (name, values) in enumerate(series.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        legend.append("%s %s" % (glyph, name))
        for x, y in values:
            plot(x, y, glyph)

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = "%.4g" % y_hi
    bottom_label = "%.4g" % y_lo
    pad = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label.rjust(pad)
        elif row_index == height - 1:
            label = bottom_label.rjust(pad)
        else:
            label = " " * pad
        lines.append("%s |%s" % (label, "".join(row)))
    lines.append("%s +%s" % (" " * pad, "-" * width))
    x_axis = "%.4g" % x_lo + " " * max(1, width - len("%.4g" % x_lo) - len("%.4g" % x_hi)) + "%.4g" % x_hi
    lines.append("%s  %s" % (" " * pad, x_axis))
    if x_label or y_label:
        lines.append(
            "%s  x: %s%s" % (" " * pad, x_label, ("   y: %s" % y_label) if y_label else "")
        )
    lines.append("%s  legend: %s" % (" " * pad, "   ".join(legend)))
    return "\n".join(lines)


def render_series_chart(
    labeled_curves: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    **kwargs,
) -> str:
    """Convenience wrapper taking per-series (xs, ys) pairs."""
    series = {
        name: list(zip(xs, ys)) for name, (xs, ys) in labeled_curves.items()
    }
    return render_chart(series, **kwargs)
