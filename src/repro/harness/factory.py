"""Cached per-document construction of estimation systems.

Variance sweeps rebuild histograms many times over the *same* collected
statistics; the factory collects labeling, the PathId-Frequency table, the
Path-Order table and the binary tree exactly once per document and hands
out :class:`EstimationSystem` instances per (p, o) variance pair.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.system import EstimationSystem
from repro.pathenc.bintree import PathIdBinaryTree
from repro.pathenc.labeler import label_document
from repro.stats.path_order import collect_path_order
from repro.stats.pathid_freq import collect_pathid_frequencies
from repro.xmltree.document import XmlDocument


class SystemFactory:
    """One-document cache of the collected statistics."""

    def __init__(self, document: XmlDocument):
        self.document = document
        self.labeled = label_document(document)
        self.pathid_table = collect_pathid_frequencies(self.labeled)
        self.order_table = collect_path_order(self.labeled)
        self.binary_tree = PathIdBinaryTree(
            self.labeled.distinct_pathids(), self.labeled.width
        ).compress()
        self._cache: Dict[Tuple[float, float], EstimationSystem] = {}

    def system(self, p_variance: float = 0.0, o_variance: float = 0.0) -> EstimationSystem:
        key = (p_variance, o_variance)
        cached = self._cache.get(key)
        if cached is None:
            cached = EstimationSystem.from_tables(
                self.labeled,
                self.pathid_table,
                self.order_table,
                p_variance=p_variance,
                o_variance=o_variance,
                binary_tree=self.binary_tree,
            )
            self._cache[key] = cached
        return cached
