"""Accuracy metrics.

The paper reports the *average relative error* over a workload whose
negative queries (true selectivity 0) were removed, so the denominator is
always ≥ 1:  err(q) = |est(q) − act(q)| / act(q).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


def relative_error(estimate: float, actual: float) -> float:
    """|est − act| / act; ``actual`` must be positive."""
    if actual <= 0:
        raise ValueError("relative error needs a positive actual value")
    return abs(estimate - actual) / actual


@dataclass(frozen=True)
class ErrorSummary:
    """Distribution summary of per-query relative errors."""

    count: int
    mean: float
    median: float
    p90: float
    maximum: float

    @classmethod
    def from_errors(cls, errors: Sequence[float]) -> "ErrorSummary":
        if not errors:
            return cls(0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(errors)
        n = len(ordered)
        median = (
            ordered[n // 2]
            if n % 2
            else (ordered[n // 2 - 1] + ordered[n // 2]) / 2.0
        )
        return cls(
            count=n,
            mean=sum(ordered) / n,
            median=median,
            p90=ordered[min(n - 1, int(0.9 * n))],
            maximum=ordered[-1],
        )

    def __str__(self) -> str:
        return "n=%d mean=%.4f median=%.4f p90=%.4f max=%.4f" % (
            self.count,
            self.mean,
            self.median,
            self.p90,
            self.maximum,
        )


def average_relative_error(pairs: Iterable[Tuple[float, float]]) -> float:
    """Mean relative error over (estimate, actual) pairs."""
    errors: List[float] = [relative_error(est, act) for est, act in pairs]
    if not errors:
        return 0.0
    return sum(errors) / len(errors)
