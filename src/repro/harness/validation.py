"""System self-checks over an arbitrary document.

Packages the invariants the test suite relies on into a reusable
diagnostic: given any document, build the full pipeline and verify that
every structural property the estimator depends on actually holds.  Used
by ``python -m repro validate`` and by tests; handy when pointing the
system at documents far from the paper's corpora.

Checks:

* **labeling** — every element labeled; descendants' path ids are subsets
  of their ancestors'; the root covers every path.
* **statistics** — per-tag frequency totals equal tag counts; sampled
  order-table rows equal the evaluator's count of ``//$X/folls::Y``
  (before/after *totals* are deliberately not compared: the counts are
  existential per element and asymmetric, e.g. the group ``a b b`` has 2
  before-entries but 3 after-entries).
* **histograms** — p-histogram buckets respect the variance bound and
  preserve each tag's total mass; every o-histogram box covers only cells
  of its region's grid extent.
* **binary tree** — compressed lookups reproduce every (ordinal, id) pair.
* **estimation** — Theorem 4.1 spot check: simple chain queries sampled
  from real paths estimate exactly at variance 0.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from repro.core.system import EstimationSystem
from repro.histograms.variance import bucket_std_dev
from repro.pathenc.bintree import PathIdBinaryTree
from repro.workload.generator import WorkloadGenerator
from repro.xmltree.document import XmlDocument
from repro.xpath.ast import Query, QueryAxis, QueryNode
from repro.xpath.evaluator import Evaluator


@dataclass
class ValidationReport:
    """Outcome of one validation run."""

    checks: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def record(self, name: str, passed: bool, detail: str = "") -> None:
        self.checks.append(name)
        if not passed:
            self.failures.append("%s%s" % (name, (": " + detail) if detail else ""))

    def render(self) -> str:
        lines = ["validation: %d checks, %d failures" % (len(self.checks), len(self.failures))]
        for name in self.checks:
            status = "FAIL" if any(f.startswith(name) for f in self.failures) else "ok"
            lines.append("  [%s] %s" % (status, name))
        for failure in self.failures:
            lines.append("  !! %s" % failure)
        return "\n".join(lines)


def validate_document(
    document: XmlDocument,
    p_variance: float = 1.0,
    sample_queries: int = 25,
    seed: int = 97,
) -> ValidationReport:
    """Run every self-check against ``document``."""
    report = ValidationReport()
    system = EstimationSystem.build(document, p_variance=p_variance, o_variance=1.0)
    labeled = system.labeled

    # -- labeling -----------------------------------------------------------
    subset_ok = all(
        node.parent is None
        or (labeled.pathids[node.parent.pre] & labeled.pathids[node.pre])
        == labeled.pathids[node.pre]
        for node in document
    )
    report.record("pathid-subset-invariant", subset_ok)
    report.record("all-elements-labeled", all(pid > 0 for pid in labeled.pathids))
    full = (1 << labeled.width) - 1
    report.record(
        "root-covers-all-paths", labeled.pathids[document.root.pre] == full,
        "root id %s" % labeled.format_pathid(labeled.pathids[document.root.pre]),
    )

    # -- statistics -----------------------------------------------------------
    totals_ok = all(
        system.pathid_table.total_frequency(tag) == document.tag_count(tag)
        for tag in system.pathid_table.tags()
    )
    report.record("frequency-totals-match-tag-counts", totals_ok)
    order_ok = True
    order_detail = ""
    evaluator_for_order = Evaluator(document)
    rng = random.Random(seed)
    grids = list(system.order_table.iter_grids())
    rng.shuffle(grids)
    for grid in grids[:5]:
        rows = grid.row_tags()
        if not rows:
            continue
        other = rng.choice(rows)
        expected_before = sum(
            grid.g_before(pid, other) for pid in grid.column_pids()
        )
        query = QueryNode(grid.tag)
        query.add_edge(QueryAxis.FOLLS, QueryNode(other), is_predicate=False)
        pattern = Query(query, QueryAxis.DESCENDANT, target=query)
        actual = evaluator_for_order.selectivity(pattern)
        if expected_before != actual:
            order_ok = False
            order_detail = "%s before %s: table %d vs evaluator %d" % (
                grid.tag, other, expected_before, actual
            )
            break
    report.record("order-table-matches-evaluator", order_ok, order_detail)

    # -- histograms -----------------------------------------------------------
    provider = system.path_provider
    histogram_ok = True
    mass_ok = True
    for tag in system.pathid_table.tags():
        exact = system.pathid_table.frequency_map(tag)
        histogram = provider.histogram(tag)  # type: ignore[union-attr]
        if histogram is None:
            histogram_ok = False
            continue
        approx_total = 0.0
        for bucket in histogram.buckets:
            values = [exact[pid] for pid in bucket.pathids]
            if bucket_std_dev(values) > p_variance + 1e-6:
                histogram_ok = False
            approx_total += bucket.avg_frequency * len(bucket)
        if abs(approx_total - sum(exact.values())) > 1e-6 * max(1, sum(exact.values())):
            mass_ok = False
    report.record("p-histogram-variance-bound", histogram_ok)
    report.record("p-histogram-mass-preserved", mass_ok)

    # -- binary tree -----------------------------------------------------------
    tree = PathIdBinaryTree(labeled.distinct_pathids(), labeled.width).compress()
    lossless = all(
        tree.bits_of_ordinal(i) == pid and tree.ordinal_of_bits(pid) == i
        for i, pid in enumerate(labeled.distinct_pathids(), start=1)
    )
    report.record("binary-tree-lossless", lossless)

    # -- estimation (Theorem 4.1 spot check at v=0) --------------------------
    exact_system = EstimationSystem.build(
        document, p_variance=0, o_variance=0, build_binary_tree=False
    )
    generator = WorkloadGenerator(document, seed=seed)
    items = generator.simple_queries(sample_queries)
    recursive = _has_recursion(labeled)
    errors = []
    for item in items:
        estimate = exact_system.estimate(item.query)
        errors.append(abs(estimate - item.actual) / item.actual)
    if not errors:
        report.record("theorem-4.1-spot-check", True, "no sampleable queries")
        return report
    if recursive:
        # Individual recursive-chain queries can be badly ambiguous (the
        # documented residual), so the check bounds the *mean*.
        mean = sum(errors) / len(errors)
        report.record(
            "theorem-4.1-spot-check",
            mean <= 0.2,
            "mean simple-query error %.4f over %d queries (recursive schema)"
            % (mean, len(errors)),
        )
    else:
        worst = max(errors)
        report.record(
            "theorem-4.1-spot-check",
            worst <= 1e-9,
            "worst simple-query error %.4g (non-recursive: must be exact)" % worst,
        )
    return report


def _has_recursion(labeled) -> bool:
    """Does any root-to-leaf path repeat a tag?"""
    table = labeled.encoding_table
    for encoding in range(1, table.width + 1):
        labels = table.labels_of(encoding)
        if len(set(labels)) != len(labels):
            return True
    return False
