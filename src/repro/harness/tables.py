"""Plain-text table rendering and the benchmark results registry.

``pytest`` captures stdout of passing tests, so the benchmark modules
register their rendered tables here and a ``pytest_terminal_summary`` hook
(benchmarks/conftest.py) prints everything at the end of the run — that is
what lands in ``bench_output.txt``.  Results are also written to
``bench_results/<name>.txt`` for standalone inspection.
"""

from __future__ import annotations

import json
import os
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional, Sequence

_RESULTS: "Dict[str, str]" = {}


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells:
        lines.append("  ".join(value.ljust(widths[i]) for i, value in enumerate(row)))
    return "\n".join(lines)


def record_result(
    name: str,
    text: str,
    results_dir: Optional[str] = None,
    metrics: Optional[Dict[str, Any]] = None,
) -> None:
    """Register a rendered experiment table and persist it to disk.

    ``metrics`` additionally writes a machine-readable
    ``BENCH_<name>.json`` beside the text table (one schema across every
    bench: bench name, the metrics mapping, an ISO-8601 UTC timestamp
    and the host core count), so the perf trajectory is trackable across
    PRs without parsing rendered tables.
    """
    _RESULTS[name] = text
    directory = results_dir or os.environ.get("REPRO_RESULTS_DIR", "bench_results")
    try:
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, "%s.txt" % name)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        if metrics is not None:
            record_metrics(name, metrics, results_dir=directory)
    except OSError:
        pass  # persisting is best-effort; the registry still has the text


def record_metrics(
    name: str,
    metrics: Dict[str, Any],
    results_dir: Optional[str] = None,
) -> Optional[str]:
    """Write ``BENCH_<name>.json``; returns its path (None on failure)."""
    directory = results_dir or os.environ.get("REPRO_RESULTS_DIR", "bench_results")
    document = {
        "bench": name,
        "metrics": metrics,
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "host_cores": os.cpu_count(),
    }
    try:
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, "BENCH_%s.json" % name)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path
    except (OSError, TypeError, ValueError):
        return None


def rendered_results() -> str:
    """Every recorded table, in registration order."""
    blocks = []
    for name, text in _RESULTS.items():
        blocks.append("=" * 72)
        blocks.append(name)
        blocks.append("=" * 72)
        blocks.append(text)
        blocks.append("")
    return "\n".join(blocks)


def clear_results() -> None:
    _RESULTS.clear()
