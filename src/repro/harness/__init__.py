"""Experiment harness: error metrics, sweep runner, table formatting.

Everything the benchmark modules share: the paper's average-relative-error
metric, a runner that evaluates an estimator over a workload, variance
sweeps for the Figure 9/10/12/13 series, and plain-text table rendering
for the terminal reports.
"""

from repro.harness.factory import SystemFactory
from repro.harness.metrics import ErrorSummary, average_relative_error, relative_error
from repro.harness.runner import (
    AccuracyPoint,
    evaluate_estimator,
    sweep_o_variance,
    sweep_p_variance,
)
from repro.harness.tables import (
    format_table,
    record_metrics,
    record_result,
    rendered_results,
)

__all__ = [
    "SystemFactory",
    "relative_error",
    "average_relative_error",
    "ErrorSummary",
    "evaluate_estimator",
    "AccuracyPoint",
    "sweep_p_variance",
    "sweep_o_variance",
    "format_table",
    "record_metrics",
    "record_result",
    "rendered_results",
]
