"""Assemble a single experiment report from ``bench_results/``.

``pytest benchmarks/ --benchmark-only`` persists each regenerated table
and figure as ``bench_results/<name>.txt``; this module stitches them into
one document (the order follows the paper's evaluation section) so the
full reproduction can be read or archived as a single file.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

# Paper order first, extras after.
PREFERRED_ORDER = [
    "table1_datasets",
    "table2_workload",
    "table3_space",
    "table4_construction",
    "table5_order_construction",
    "fig9_memory",
    "fig10_no_order_error",
    "fig11_vs_xsketch",
    "fig12_order_branch",
    "fig13_order_trunk",
    "ablation_bucketing",
    "ablation_trunk_min",
    "ablation_pathjoin",
    "ablation_depth_refined",
    "baselines_panorama",
    "throughput",
    "build_throughput",
    "service_throughput",
    "obs_overhead",
    "structural_join_pruning",
    "scoped_axes",
    "planner",
    "cluster_scaling",
    "cluster_delta",
    "traffic_capacity",
    "semcache_qps",
    "semcache_bit_identity",
    "semcache_bump",
]

HEADER = """\
REPRODUCTION REPORT — An Estimation System for XPath Expressions (ICDE 2006)

Regenerated tables and figures follow, in the paper's order (extras last).
See EXPERIMENTS.md for the paper-vs-measured commentary and DESIGN.md for
the substitutions and resolved ambiguities.
"""


def collect_results(directory: str) -> Dict[str, str]:
    """Read every ``<name>.txt`` under ``directory``."""
    results: Dict[str, str] = {}
    if not os.path.isdir(directory):
        return results
    for filename in sorted(os.listdir(directory)):
        if not filename.endswith(".txt"):
            continue
        path = os.path.join(directory, filename)
        with open(path, "r", encoding="utf-8") as handle:
            results[filename[:-4]] = handle.read().rstrip()
    return results


def ordered_names(results: Dict[str, str]) -> List[str]:
    known = [name for name in PREFERRED_ORDER if name in results]
    extras = sorted(name for name in results if name not in PREFERRED_ORDER)
    return known + extras


def build_report(directory: str = "bench_results") -> str:
    """The full stitched report; notes missing experiments explicitly."""
    results = collect_results(directory)
    sections: List[str] = [HEADER]
    if not results:
        sections.append(
            "No results found in %r — run `pytest benchmarks/ "
            "--benchmark-only` first." % directory
        )
        return "\n".join(sections)
    for name in ordered_names(results):
        sections.append("=" * 72)
        sections.append(name)
        sections.append("=" * 72)
        sections.append(results[name])
        sections.append("")
    missing = [name for name in PREFERRED_ORDER if name not in results]
    if missing:
        sections.append("Missing experiments (bench not run?): %s" % ", ".join(missing))
    return "\n".join(sections)


def write_report(directory: str = "bench_results", output: Optional[str] = None) -> str:
    """Build the report and optionally write it to ``output``."""
    text = build_report(directory)
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return text
