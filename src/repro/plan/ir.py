"""The plan intermediate representation.

A :class:`Plan` is an ordered list of :class:`PlanStep`\\ s — one per
semijoin the executor will run — annotated with the cost model's
expected cardinalities.  After execution each step additionally carries
the *observed* cardinalities, so a plan doubles as its own execution
report (``EXPLAIN`` and ``EXPLAIN ANALYZE`` are the same object before
and after running).

The wire shape (``Plan.as_dict``) is versioned independently of the
estimate-result format: consumers check ``plan["version"]``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.result import EstimateResult

__all__ = [
    "PLAN_FORMAT_VERSION",
    "PlanStep",
    "Plan",
    "ExecutionResult",
    "PlannerStats",
]

#: Version of the ``plan`` wire object.
PLAN_FORMAT_VERSION = 1

#: Phases a step can belong to, in execution order.
PHASE_UP = "up"
PHASE_ROOT = "root"
PHASE_DOWN = "down"


@dataclass
class PlanStep:
    """One semijoin step.

    Each step filters one candidate list (the *filtered* pattern node)
    against another (the *partner*): in the up phase the edge's upper
    node is filtered against its already-reduced lower subtree, in the
    down phase the lower node is filtered against its surviving upper.
    The ``root`` step is the absolute-query constraint (filtered list
    pinned to the document root) and has no partner node.

    ``est_*`` fields come from the cost model at planning time;
    ``observed_*``/``predicted_out`` are filled in by the executor.
    ``predicted_out`` is the *calibrated* runtime prediction
    (``observed_in`` × the estimated marginal filter factor) — drift is
    judged against it, not against the uncalibrated ``est_out``.
    """

    index: int
    phase: str
    axis: str
    node_id: int
    node_tag: str
    partner_id: Optional[int] = None
    partner_tag: Optional[str] = None
    est_in: float = 0.0
    est_out: float = 0.0
    est_partner: float = 0.0
    est_cost: float = 0.0
    observed_in: Optional[int] = None
    observed_out: Optional[int] = None
    observed_partner: Optional[int] = None
    predicted_out: Optional[float] = None
    replanned: bool = False
    skipped: bool = False

    def drift(self) -> Optional[float]:
        """Observed/predicted divergence factor (``>= 1``), if executed."""
        if self.observed_out is None or self.predicted_out is None:
            return None
        ratio = (self.observed_out + 1.0) / (self.predicted_out + 1.0)
        return max(ratio, 1.0 / ratio)

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "index": self.index,
            "phase": self.phase,
            "axis": self.axis,
            "node": {"id": self.node_id, "tag": self.node_tag},
            "est_in": self.est_in,
            "est_out": self.est_out,
            "est_partner": self.est_partner,
            "est_cost": self.est_cost,
        }
        if self.partner_id is not None:
            payload["partner"] = {"id": self.partner_id, "tag": self.partner_tag}
        if self.replanned:
            payload["replanned"] = True
        if self.skipped:
            payload["skipped"] = True
        if self.observed_in is not None:
            payload["observed_in"] = self.observed_in
            payload["observed_out"] = self.observed_out
            payload["observed_partner"] = self.observed_partner
            payload["predicted_out"] = self.predicted_out
            drift = self.drift()
            if drift is not None:
                payload["drift"] = drift
        return payload


@dataclass
class Plan:
    """An ordered semijoin program for one query.

    ``est_cost`` is the cost model's total for the chosen order;
    ``naive_cost`` the same total for the authored (unplanned) order, so
    ``naive_cost / est_cost`` is the predicted plan-quality win.  The
    execution fields (``replans``, ``replanned_at``, ``max_drift``,
    ``early_exit``, ``observed_work``) stay at their defaults until an
    executor runs the plan.
    """

    query_text: str
    ordering: str  # "enumerated" | "greedy" | "naive"
    steps: List[PlanStep] = field(default_factory=list)
    est_cost: float = 0.0
    naive_cost: float = 0.0
    est_cardinality: float = 0.0
    drift_threshold: float = 0.0
    use_path_ids: bool = True
    executed: bool = False
    replans: int = 0
    replanned_at: List[int] = field(default_factory=list)
    max_drift: float = 0.0
    early_exit: Optional[int] = None
    observed_work: int = 0

    @property
    def reordered(self) -> bool:
        """Did cost-based ordering change anything vs. the authored order?"""
        return self.ordering != "naive" and self.est_cost < self.naive_cost

    def up_steps(self) -> List[PlanStep]:
        return [step for step in self.steps if step.phase == PHASE_UP]

    def as_dict(self) -> Dict[str, Any]:
        """The versioned wire object (the service's ``plan`` field)."""
        payload: Dict[str, Any] = {
            "version": PLAN_FORMAT_VERSION,
            "query": self.query_text,
            "ordering": self.ordering,
            "est_cost": self.est_cost,
            "naive_cost": self.naive_cost,
            "est_cardinality": self.est_cardinality,
            "drift_threshold": self.drift_threshold,
            "use_path_ids": self.use_path_ids,
            "executed": self.executed,
            "steps": [step.as_dict() for step in self.steps],
        }
        if self.executed:
            payload["replans"] = self.replans
            payload["replanned_at"] = list(self.replanned_at)
            payload["max_drift"] = self.max_drift
            payload["observed_work"] = self.observed_work
            if self.early_exit is not None:
                payload["early_exit"] = self.early_exit
        return payload

    def render(self) -> str:
        """Human-readable plan listing (docs examples, CLI debugging)."""
        lines = [
            "plan %s  ordering=%s  est_cost=%.1f  naive_cost=%.1f"
            % (self.query_text, self.ordering, self.est_cost, self.naive_cost)
        ]
        for step in self.steps:
            mark = "*" if step.replanned else " "
            partner = (
                "" if step.partner_tag is None else " ~ %s#%d" % (step.partner_tag, step.partner_id)
            )
            line = "%s %2d %-4s %-7s %s#%d%s  est %.1f -> %.1f" % (
                mark, step.index, step.phase, step.axis,
                step.node_tag, step.node_id, partner, step.est_in, step.est_out,
            )
            if step.observed_in is not None:
                line += "  obs %d -> %s" % (step.observed_in, step.observed_out)
            elif step.skipped:
                line += "  (skipped)"
            lines.append(line)
        if self.executed:
            lines.append(
                "  replans=%d at=%r max_drift=%.2f work=%d"
                % (self.replans, self.replanned_at, self.max_drift, self.observed_work)
            )
        return "\n".join(lines)


@dataclass
class ExecutionResult:
    """What :meth:`EstimationSystem.execute` returns.

    matches:
        Pre-order numbers of the document elements matching the query
        target — exactly what
        :meth:`~repro.queryproc.processor.StructuralJoinProcessor.matching_pres`
        would return (pinned by tests).
    estimate:
        The structured estimate for the same query (the planner's
        expected target cardinality, with route and timing).
    plan:
        The executed :class:`Plan`, steps annotated with observed
        cardinalities.
    elapsed_ms:
        Wall time of planning + execution.
    """

    matches: List[int]
    estimate: EstimateResult
    plan: Plan
    elapsed_ms: float = 0.0

    @property
    def match_count(self) -> int:
        return len(self.matches)

    def __len__(self) -> int:
        return len(self.matches)


class PlannerStats:
    """Thread-safe planner/executor counters for one system.

    The service aggregates these into the ``planner`` block of
    ``/metrics``; they answer "is adaptivity earning its keep" in
    production: how often plans deviate from the authored order, how
    often drift forces a replan, and the worst drift seen.
    """

    __slots__ = ("_lock", "plans", "executions", "naive_plans",
                 "reordered_plans", "replans", "replanned_executions",
                 "max_drift")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.plans = 0
        self.executions = 0
        self.naive_plans = 0
        self.reordered_plans = 0
        self.replans = 0
        self.replanned_executions = 0
        self.max_drift = 0.0

    def record_plan(self, plan: Plan) -> None:
        with self._lock:
            self.plans += 1
            if plan.ordering == "naive":
                self.naive_plans += 1
            elif plan.reordered:
                self.reordered_plans += 1

    def record_execution(self, plan: Plan) -> None:
        with self._lock:
            self.executions += 1
            self.replans += plan.replans
            if plan.replans:
                self.replanned_executions += 1
            if plan.max_drift > self.max_drift:
                self.max_drift = plan.max_drift

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "plans": self.plans,
                "executions": self.executions,
                "naive_plans": self.naive_plans,
                "reordered_plans": self.reordered_plans,
                "replans": self.replans,
                "replanned_executions": self.replanned_executions,
                "max_drift": self.max_drift,
            }
