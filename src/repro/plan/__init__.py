"""Cost-based structural-join planning (:mod:`repro.plan`).

This package closes the loop the estimator exists for: it turns kernel
selectivity estimates into an explicit execution :class:`Plan` — an
ordered list of semijoin steps with expected cardinalities — and runs
that plan through :mod:`repro.queryproc` with **adaptive
re-optimization**: every step records observed vs. predicted
cardinality, and when the divergence exceeds a drift threshold the
remaining steps are re-planned against the corrected sizes.

Layout:

* :mod:`repro.plan.ir` — the plan intermediate representation
  (:class:`PlanStep`, :class:`Plan`, :class:`ExecutionResult`) and the
  thread-safe :class:`PlannerStats` counters the service aggregates;
* :mod:`repro.plan.cost` — the cost model: memoized sub-pattern
  estimates, per-axis join weights, filter factors;
* :mod:`repro.plan.planner` — :class:`CostBasedPlanner`, which
  enumerates per-node join orders (exhaustive for small fan-out, greedy
  beyond) and emits the plan;
* :mod:`repro.plan.executor` — :class:`AdaptivePlanExecutor`, which
  runs a plan and re-plans mid-flight on drift.

Most callers never import this package directly:
:meth:`EstimationSystem.execute` and :meth:`EstimationSystem.explain`
are the front doors.
"""

from repro.plan.cost import AXIS_WEIGHTS, CostModel
from repro.plan.executor import AdaptivePlanExecutor
from repro.plan.ir import (
    PLAN_FORMAT_VERSION,
    ExecutionResult,
    Plan,
    PlannerStats,
    PlanStep,
)
from repro.plan.planner import CostBasedPlanner

__all__ = [
    "AXIS_WEIGHTS",
    "AdaptivePlanExecutor",
    "CostBasedPlanner",
    "CostModel",
    "ExecutionResult",
    "PLAN_FORMAT_VERSION",
    "Plan",
    "PlanStep",
    "PlannerStats",
]
