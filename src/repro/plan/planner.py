"""Cost-based join-order selection over the pattern tree.

The semijoin full reducer fixes the *phase* structure (children before
parents going up, parents before children coming down) but leaves one
degree of freedom: the order in which a node's outgoing edges are
applied.  Because an up-step for edge ``(u, c)`` only runs after ``c``'s
subtree is fully reduced, ``c``'s list at that point does not depend on
how ``u`` interleaves its other edges — so the global join-ordering
problem decomposes into independent per-node orderings, and each node's
optimum can be found by enumerating the ``k!`` permutations of its ``k``
edges (``k ≤ 4`` covers every workload query; beyond that a greedy
most-selective-first order is used).

The chosen order changes only cost, never the result set: the full
reduction converges to the same candidate lists under any valid order
(pinned by tests against the naive processor).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Sequence, Tuple, Union

from repro.core.options import DEFAULT_DRIFT_THRESHOLD
from repro.plan.cost import CostModel, PatternCost, step_cost
from repro.plan.ir import Plan, PlanStep
from repro.xpath.ast import Query, QueryAxis, QueryNode

__all__ = ["CostBasedPlanner"]

#: Enumerate all permutations up to this fan-out; greedy beyond (5! = 120
#: cost evaluations per node starts to rival the joins being ordered).
ENUMERATE_LIMIT = 4


class CostBasedPlanner:
    """Emits :class:`~repro.plan.ir.Plan` programs for pattern queries.

    One planner (and its memoized :class:`CostModel`) is meant to live
    as long as its system: repeated sub-patterns across queries and
    replans then cost one estimate each.
    """

    def __init__(self, system, *, enumerate_limit: int = ENUMERATE_LIMIT):
        self.system = system
        self.cost_model = CostModel(system)
        self.enumerate_limit = enumerate_limit

    # ------------------------------------------------------------------

    def plan(
        self,
        query: Union[str, Query],
        *,
        use_path_ids: bool = True,
        naive_order: bool = False,
        drift_threshold: float = DEFAULT_DRIFT_THRESHOLD,
    ) -> Plan:
        """Build the semijoin program for ``query``.

        ``naive_order=True`` keeps every node's edges in authored order —
        the baseline the benchmarks (and the drift-relative cost figures)
        compare against; estimates are still annotated.
        """
        from repro.core.system import _coerce_query

        parsed = _coerce_query(query)
        pattern = self.cost_model.prepare(parsed, use_path_ids)
        authored = {
            node.node_id: list(range(len(node.edges))) for node in parsed.nodes()
        }
        ordering = "naive"
        orders = authored
        if not naive_order:
            orders = {}
            methods = set()
            for node in parsed.nodes():
                if len(node.edges) < 2:
                    orders[node.node_id] = authored[node.node_id]
                    continue
                positions, method = self.order_positions(
                    pattern,
                    node,
                    applied=(),
                    positions=authored[node.node_id],
                    in_size=pattern.initial(node),
                    partner_size_of=lambda p, _node=node: pattern.partner(
                        _node.edges[p].node
                    ),
                )
                orders[node.node_id] = positions
                methods.add(method)
            ordering = "greedy" if "greedy" in methods else "enumerated"
        steps = self._emit_steps(pattern, parsed, orders)
        est_cost = sum(step.est_cost for step in steps)
        naive_cost = (
            est_cost
            if naive_order
            else sum(s.est_cost for s in self._emit_steps(pattern, parsed, authored))
        )
        return Plan(
            query_text=parsed.to_string(),
            ordering=ordering,
            steps=steps,
            est_cost=est_cost,
            naive_cost=naive_cost,
            est_cardinality=pattern.final(parsed.target),
            drift_threshold=drift_threshold,
            use_path_ids=use_path_ids,
        )

    # ------------------------------------------------------------------
    # Per-node ordering
    # ------------------------------------------------------------------

    def order_positions(
        self,
        pattern: PatternCost,
        node: QueryNode,
        applied: Tuple[int, ...],
        positions: Sequence[int],
        in_size: float,
        partner_size_of: Callable[[int], float],
    ) -> Tuple[List[int], str]:
        """Cheapest order for ``positions`` given branches already applied.

        ``in_size`` is the node's current list size (estimated at plan
        time, observed at replan time); sizes along a candidate sequence
        scale by the *conditional* filter factors beyond ``applied``, so
        the same routine serves initial planning (``applied=()``) and
        mid-plan replanning.
        """
        positions = list(positions)
        if len(positions) < 2:
            return positions, "enumerated"
        if len(positions) > self.enumerate_limit:
            ranked = sorted(
                positions,
                key=lambda p: (
                    pattern.marginal(node, applied, p),
                    partner_size_of(p),
                ),
            )
            return ranked, "greedy"
        base = pattern.factor(node, applied)
        best: Tuple[float, List[int]] = (float("inf"), positions)
        for perm in itertools.permutations(positions):
            total = 0.0
            taken = tuple(applied)
            for p in perm:
                size = in_size * (
                    pattern.factor(node, taken) / base if base > 0.0 else 1.0
                )
                total += step_cost(node.edges[p].axis, size, partner_size_of(p))
                taken += (p,)
            if total < best[0]:
                best = (total, list(perm))
        return best[1], "enumerated"

    # ------------------------------------------------------------------
    # Step emission
    # ------------------------------------------------------------------

    def _emit_steps(
        self, pattern: PatternCost, query: Query, orders: Dict[int, List[int]]
    ) -> List[PlanStep]:
        steps: List[PlanStep] = []
        dfs = query.nodes()
        # Up phase: children-first node order, chosen edge order per node.
        for node in reversed(dfs):
            applied: Tuple[int, ...] = ()
            for p in orders[node.node_id]:
                edge = node.edges[p]
                est_in = pattern.initial(node) * pattern.factor(node, applied)
                applied += (p,)
                est_out = pattern.initial(node) * pattern.factor(node, applied)
                est_partner = pattern.partner(edge.node)
                steps.append(
                    PlanStep(
                        index=len(steps),
                        phase="up",
                        axis=edge.axis.value,
                        node_id=node.node_id,
                        node_tag=node.tag,
                        partner_id=edge.node.node_id,
                        partner_tag=edge.node.tag,
                        est_in=est_in,
                        est_out=est_out,
                        est_partner=est_partner,
                        est_cost=step_cost(edge.axis, est_in, est_partner),
                    )
                )
        # Root constraint for absolute queries.
        if query.root_axis is QueryAxis.CHILD:
            est_in = pattern.partner(query.root)
            steps.append(
                PlanStep(
                    index=len(steps),
                    phase="root",
                    axis="root",
                    node_id=query.root.node_id,
                    node_tag=query.root.tag,
                    est_in=est_in,
                    est_out=min(est_in, 1.0),
                    est_partner=1.0,
                    est_cost=est_in,
                )
            )
        # Down phase: parents-first; order within a node cannot matter
        # (each step filters a different child), kept for readability.
        for node in dfs:
            for p in orders[node.node_id]:
                edge = node.edges[p]
                est_in = pattern.partner(edge.node)
                est_partner = pattern.final(node)
                steps.append(
                    PlanStep(
                        index=len(steps),
                        phase="down",
                        axis=edge.axis.value,
                        node_id=edge.node.node_id,
                        node_tag=edge.node.tag,
                        partner_id=node.node_id,
                        partner_tag=node.tag,
                        est_in=est_in,
                        est_out=pattern.final(edge.node),
                        est_partner=est_partner,
                        est_cost=step_cost(edge.axis, est_in, est_partner),
                    )
                )
        return steps
