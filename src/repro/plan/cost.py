"""The planner's cost model: estimates in, step costs out.

Every quantity the planner needs reduces to selectivity estimates of
*sub-patterns* of the query:

* the **initial size** of a pattern node's candidate list — the path
  join's pid-pruned frequency ``f_Q(n)`` when path-id pruning is on,
  the tag's total frequency otherwise;
* the **filter factor** of a branch set ``S`` at node ``u`` — how much
  of ``u``'s list survives semijoining against those branches:
  ``est(spine(u) + S) / est(spine(u))``;
* the **reduced size** of a node after its whole subtree has filtered
  it — ``initial × factor(all edges)``.

A semijoin step sweeps both of its input lists, so its cost is
``weight(axis) × (E[filtered list] + E[partner list])`` with per-axis
weights reflecting the primitives' constants (descendant semijoins pay
a binary search per element, sibling semijoins a per-parent map).

Sub-pattern estimates are memoized by rendered query text in a
:class:`CostModel` shared across queries (and service threads — a
duplicated compute is wasted work, never a wrong answer), which is also
what fixes the old planner's quadratic re-estimation on bushy queries:
every distinct sub-pattern is estimated exactly once per synopsis.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.xpath.ast import Edge, Query, QueryAxis, QueryNode

__all__ = ["AXIS_WEIGHTS", "CostModel", "PatternCost", "step_cost"]

#: Relative per-item sweep cost of the semijoin primitives by axis.
#: CHILD is the O(n + m) hash sweep baseline; DESCENDANT pays a binary
#: search per candidate; the sibling-order axes build a per-parent
#: extremum map.
AXIS_WEIGHTS = {
    QueryAxis.CHILD: 1.0,
    QueryAxis.DESCENDANT: 1.25,
    QueryAxis.FOLLS: 1.1,
    QueryAxis.PRES: 1.1,
}

#: Weight for axes outside the table (scoped order, future axes).
DEFAULT_AXIS_WEIGHT = 1.5


def step_cost(axis: QueryAxis, filtered_size: float, partner_size: float) -> float:
    """Expected cost of one semijoin step over the two input lists."""
    return AXIS_WEIGHTS.get(axis, DEFAULT_AXIS_WEIGHT) * (filtered_size + partner_size)


class CostModel:
    """Memoized sub-pattern estimates over one estimation system.

    The memo is keyed by rendered sub-query text, so repeated
    sub-patterns — across edges of one query, across queries, across
    replans — cost one estimate total.  ``None`` entries record
    sub-patterns the estimator cannot handle (e.g. more than one order
    axis after slicing); the planner treats those as neutral.
    """

    def __init__(self, system) -> None:
        self.system = system
        self._estimates: Dict[str, Optional[float]] = {}
        self._tag_totals: Dict[str, float] = {}
        self._freq_maps: Dict[str, Dict[int, float]] = {}
        self.hits = 0
        self.misses = 0

    # -- caching -------------------------------------------------------

    def cache_info(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._estimates),
        }

    def clear(self) -> None:
        """Drop all memoized estimates (synopsis replaced or mutated)."""
        self._estimates.clear()
        self._tag_totals.clear()
        self._freq_maps.clear()

    # -- primitive quantities ------------------------------------------

    def subpattern_estimate(self, subquery: Query) -> Optional[float]:
        """Estimated target cardinality of ``subquery`` (memoized)."""
        key = subquery.to_string()
        if key in self._estimates:
            self.hits += 1
            return self._estimates[key]
        self.misses += 1
        try:
            value: Optional[float] = float(self.system.estimate(subquery))
        except Exception:
            value = None  # unestimable slice: neutral for planning
        self._estimates[key] = value
        return value

    def tag_total(self, tag: str) -> float:
        """Total frequency of ``tag`` in the synopsis (memoized)."""
        cached = self._tag_totals.get(tag)
        if cached is None:
            kernel = self.system.kernel() if self.system.kernel_active() else None
            if kernel is not None:
                cached = kernel.tag_total(tag)
            else:
                cached = float(
                    sum(f for _, f in self.system.path_provider.frequency_pairs(tag))
                )
            self._tag_totals[tag] = cached
        return cached

    def frequency_map(self, tag: str) -> Dict[int, float]:
        """Raw per-pid frequencies of ``tag`` (memoized)."""
        cached = self._freq_maps.get(tag)
        if cached is None:
            cached = dict(self.system.path_provider.frequency_map(tag))
            self._freq_maps[tag] = cached
        return cached

    # -- per-query view ------------------------------------------------

    def prepare(self, query: Query, use_path_ids: bool = True) -> "PatternCost":
        return PatternCost(self, query, use_path_ids)


class PatternCost:
    """Cost-model quantities for one query pattern.

    Holds the one path join the initial sizes come from and the per-node
    factor memos; the underlying sub-pattern estimates live in the
    shared :class:`CostModel`.
    """

    def __init__(self, model: CostModel, query: Query, use_path_ids: bool):
        self.model = model
        self.query = query
        self.use_path_ids = use_path_ids
        self._join = None
        if use_path_ids:
            try:
                self._join = model.system.join(query)
            except Exception:
                self._join = None  # fall back to tag totals
        self._factors: Dict[Tuple[int, Tuple[int, ...]], float] = {}
        self._finals: Dict[int, float] = {}

    # -- sizes ---------------------------------------------------------

    def initial(self, node: QueryNode) -> float:
        """Expected initial candidate-list size of ``node``.

        With path-id pruning: the *raw* frequency summed over the pids
        the path join keeps — exactly the pruned list length under exact
        statistics.  Without pruning, the tag's total frequency.
        """
        if self._join is not None:
            freqs = self.model.frequency_map(node.tag)
            return float(
                sum(freqs.get(pid, 0.0) for pid in self._join.pids(node))
            )
        return self.model.tag_total(node.tag)

    def factor(self, node: QueryNode, positions: Sequence[int]) -> float:
        """Fraction of ``node``'s list surviving the branch subset.

        ``positions`` index into ``node.edges``; each branch is taken
        with its *full* subtree, so ``factor(node, all)`` prices the
        node's entire downstream reduction.

        With path-id pruning active the factors are neutral (``1.0``):
        the path join has already applied every constraint the synopsis
        can see, so the estimator predicts no further pid-level
        reduction — any element-level shrink the semijoins still achieve
        shows up as (legitimate) drift only when the statistics and the
        document disagree.
        """
        if self._join is not None:
            return 1.0
        key = (node.node_id, tuple(sorted(positions)))
        cached = self._factors.get(key)
        if cached is not None:
            return cached
        if not key[1]:
            value = 1.0
        else:
            base = self.model.subpattern_estimate(self._subquery(node, ()))
            kept = self.model.subpattern_estimate(self._subquery(node, key[1]))
            if base is None or kept is None or base <= 0.0:
                value = 1.0
            else:
                value = min(1.0, kept / base)
        self._factors[key] = value
        return value

    def marginal(self, node: QueryNode, applied: Sequence[int], position: int) -> float:
        """Incremental filter factor of one more branch after ``applied``."""
        before = self.factor(node, applied)
        after = self.factor(node, tuple(applied) + (position,))
        if before <= 0.0:
            return 1.0
        return min(1.0, after / before)

    def reduced(self, node: QueryNode) -> float:
        """Expected size of ``node``'s list once its subtree reduced it."""
        return self.initial(node) * self.factor(node, range(len(node.edges)))

    def partner(self, node: QueryNode) -> float:
        """Expected size of ``node``'s list when its parent edge joins it.

        With path-id pruning this is the joined ``f_Q(n)`` — the
        constraint-propagated frequency, the sharpest size signal the
        synopsis offers; without pruning it is the factor-model
        :meth:`reduced` size.
        """
        if self._join is not None:
            return float(self._join.frequency(node))
        return self.reduced(node)

    def final(self, node: QueryNode) -> float:
        """Expected size of ``node``'s list in the fully reduced pattern."""
        cached = self._finals.get(node.node_id)
        if cached is None:
            estimate = self.model.subpattern_estimate(self._retarget(node))
            cached = self.reduced(node) if estimate is None else estimate
            self._finals[node.node_id] = cached
        return cached

    # -- sub-query construction ----------------------------------------

    def _subquery(self, node: QueryNode, positions: Tuple[int, ...]) -> Query:
        """Spine root→``node`` plus the selected branches, target ``node``."""
        query = self.query
        spine = query.spine_to(node)
        clones: Dict[int, QueryNode] = {}

        def clone_chain(index: int) -> QueryNode:
            original = spine[index]
            copy = QueryNode(original.tag)
            clones[original.node_id] = copy
            if index + 1 < len(spine):
                link = query.parent_link(spine[index + 1])
                assert link is not None
                copy.edges.append(Edge(link[0], clone_chain(index + 1), False))
            else:
                for position in positions:
                    edge = node.edges[position]
                    copy.edges.append(
                        Edge(edge.axis, copy_subtree(edge.node), edge.is_predicate)
                    )
            return copy

        root = clone_chain(0)
        return Query(root, query.root_axis, target=clones[node.node_id])

    def _retarget(self, node: QueryNode) -> Query:
        """A clone of the full pattern with ``node`` as the target."""
        query = self.query
        clones: Dict[int, QueryNode] = {}

        def clone(original: QueryNode) -> QueryNode:
            copy = QueryNode(original.tag)
            clones[original.node_id] = copy
            for edge in original.edges:
                copy.edges.append(Edge(edge.axis, clone(edge.node), edge.is_predicate))
            return copy

        root = clone(query.root)
        return Query(root, query.root_axis, target=clones[node.node_id])


def copy_subtree(node: QueryNode) -> QueryNode:
    """Deep copy of a pattern subtree (ids re-assigned on finalize)."""
    copy = QueryNode(node.tag)
    for edge in node.edges:
        copy.edges.append(Edge(edge.axis, copy_subtree(edge.node), edge.is_predicate))
    return copy
