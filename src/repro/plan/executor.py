"""Adaptive plan execution: run the steps, watch the cardinalities.

The executor runs a :class:`~repro.plan.ir.Plan` against a
:class:`~repro.queryproc.processor.StructuralJoinProcessor`'s candidate
lists using the same semijoin primitives as the naive evaluation — the
result set is therefore always exact; only the work done to reach it
depends on the plan.

**Calibration.**  Estimates are absolute predictions from the synopsis;
the candidate lists are real.  Rather than comparing a step's observed
output against its plan-time ``est_out`` (which would fire on any
synopsis/document scale mismatch), the executor predicts each step's
output as ``observed_in × marginal filter factor`` — the estimate's
*shape* applied to the *actual* input — and judges drift against that.

**Re-optimization.**  When ``max(observed/predicted,
predicted/observed)`` exceeds the plan's drift threshold and some node
still has two or more unapplied edges, the remaining up-phase steps are
re-ordered: current list lengths replace the plan-time sizes, fully
reduced partners are priced exactly, and the planner's per-node
ordering routine re-runs conditioned on the branches already applied.
Replans are capped (``max_replans``) so estimation pathologies cannot
turn execution into planning.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.transform import UnsupportedQueryError
from repro.obs.trace import NULL_TRACER
from repro.plan.cost import PatternCost, step_cost
from repro.plan.ir import Plan, PlanStep
from repro.queryproc.structural import reduce_lower, reduce_upper
from repro.xpath.ast import Query, QueryAxis, QueryNode

__all__ = ["AdaptivePlanExecutor"]


class AdaptivePlanExecutor:
    """Runs plans with observed-cardinality feedback.

    Parameters
    ----------
    planner:
        The :class:`~repro.plan.planner.CostBasedPlanner` whose cost
        model prices replans (shared memo with initial planning).
    processor:
        The structural-join processor owning the document's interval
        index and candidate machinery.
    adaptive:
        Re-plan on drift.  ``False`` still records observed
        cardinalities (the ``EXPLAIN ANALYZE`` path without feedback).
    max_replans:
        Hard cap on mid-plan replans per execution.
    """

    def __init__(self, planner, processor, *, adaptive: bool = True, max_replans: int = 3):
        self.planner = planner
        self.processor = processor
        self.adaptive = adaptive
        self.max_replans = max_replans

    # ------------------------------------------------------------------

    def run(self, plan: Plan, query: Query, tracer=NULL_TRACER) -> List[int]:
        """Execute ``plan`` and return the target's matching pre-orders.

        ``plan.steps`` are annotated in place with observed/predicted
        cardinalities; on drift the remaining steps are replaced (the
        substitutes carry ``replanned=True``).
        """
        if any(axis.is_scoped_order for axis, _, _ in query.iter_edges()):
            raise UnsupportedQueryError(
                "rewrite scoped foll/pre axes before structural-join evaluation"
            )
        processor = self.processor
        pattern = self.planner.cost_model.prepare(query, plan.use_path_ids)
        with tracer.span("candidates") as cand_span:
            candidates = processor.initial_candidates(
                query, plan.use_path_ids, tracer
            )
            processor.last_candidate_count = sum(len(c) for c in candidates)
            cand_span.incr("candidates", processor.last_candidate_count)
        nodes_by_id: Dict[int, QueryNode] = {
            node.node_id: node for node in query.nodes()
        }
        applied: Dict[int, Tuple[int, ...]] = {
            node_id: () for node_id in nodes_by_id
        }
        position_of: Dict[Tuple[int, int], int] = {}
        for node in query.nodes():
            for position, edge in enumerate(node.edges):
                position_of[(node.node_id, edge.node.node_id)] = position
        plan.executed = True
        plan.observed_work = 0
        matches: List[int] = []
        if any(not c for c in candidates):
            plan.early_exit = -1  # dead before the first step
            for step in plan.steps:
                step.skipped = True
            processor.last_semijoin_work = 0
            return matches
        span = tracer.span("plan_execute")
        span.__enter__()
        try:
            matches = self._run_steps(
                plan, query, pattern, candidates, nodes_by_id, applied, position_of
            )
        finally:
            span.incr("items_swept", plan.observed_work)
            span.incr("replans", plan.replans)
            span.__exit__(None, None, None)
        processor.last_semijoin_work = plan.observed_work
        return matches

    # ------------------------------------------------------------------

    def _run_steps(
        self,
        plan: Plan,
        query: Query,
        pattern: PatternCost,
        candidates: List[List[int]],
        nodes_by_id: Dict[int, QueryNode],
        applied: Dict[int, Tuple[int, ...]],
        position_of: Dict[Tuple[int, int], int],
    ) -> List[int]:
        index = self.processor.index
        i = 0
        while i < len(plan.steps):
            step = plan.steps[i]
            if step.phase == "up":
                node = nodes_by_id[step.node_id]
                position = position_of[(step.node_id, step.partner_id)]
                upper = candidates[step.node_id]
                lower = candidates[step.partner_id]
                step.observed_in = len(upper)
                step.observed_partner = len(lower)
                step.predicted_out = len(upper) * pattern.marginal(
                    node, applied[step.node_id], position
                )
                plan.observed_work += len(upper) + len(lower)
                upper = reduce_upper(index, QueryAxis(step.axis), upper, lower)
                candidates[step.node_id] = upper
                step.observed_out = len(upper)
                applied[step.node_id] += (position,)
                drift = step.drift() or 0.0
                if drift > plan.max_drift:
                    plan.max_drift = drift
                if not upper:
                    return self._early_exit(plan, i)
                if (
                    self.adaptive
                    and drift > plan.drift_threshold
                    and plan.replans < self.max_replans
                ):
                    self._replan_remaining(
                        plan, query, pattern, candidates, applied, i
                    )
            elif step.phase == "root":
                upper = candidates[step.node_id]
                step.observed_in = len(upper)
                plan.observed_work += len(upper)
                root_pre = self.processor.document.root.pre
                upper = [pre for pre in upper if pre == root_pre]
                candidates[step.node_id] = upper
                step.observed_out = len(upper)
                step.predicted_out = step.est_out
                if not upper:
                    return self._early_exit(plan, i)
            else:  # down
                lower = candidates[step.node_id]
                upper = candidates[step.partner_id]
                step.observed_in = len(lower)
                step.observed_partner = len(upper)
                step.predicted_out = step.est_out
                plan.observed_work += len(lower) + len(upper)
                lower = reduce_lower(index, QueryAxis(step.axis), lower, upper)
                candidates[step.node_id] = lower
                step.observed_out = len(lower)
                if not lower:
                    return self._early_exit(plan, i)
            i += 1
        return candidates[query.target.node_id]

    @staticmethod
    def _early_exit(plan: Plan, at: int) -> List[int]:
        plan.early_exit = plan.steps[at].index
        for later in plan.steps[at + 1:]:
            later.skipped = True
        return []

    # ------------------------------------------------------------------
    # Mid-plan re-optimization
    # ------------------------------------------------------------------

    def _replan_remaining(
        self,
        plan: Plan,
        query: Query,
        pattern: PatternCost,
        candidates: List[List[int]],
        applied: Dict[int, Tuple[int, ...]],
        at: int,
    ) -> None:
        """Re-order the up steps after ``at`` against observed sizes."""
        remaining: Dict[int, List[int]] = {}
        for node in query.nodes():
            pending = [
                p for p in range(len(node.edges)) if p not in applied[node.node_id]
            ]
            if pending:
                remaining[node.node_id] = pending
        # Nothing left to reorder → drift noted, order already forced.
        if not any(len(pending) > 1 for pending in remaining.values()):
            return

        def predicted_size(node: QueryNode) -> float:
            """Current length scaled by the node's unapplied filtering."""
            current = float(len(candidates[node.node_id]))
            done = pattern.factor(node, applied[node.node_id])
            full = pattern.factor(node, range(len(node.edges)))
            return current * (full / done if done > 0.0 else 1.0)

        new_up: List[PlanStep] = []
        for node in reversed(query.nodes()):
            pending = remaining.get(node.node_id)
            if not pending:
                continue
            in_size = float(len(candidates[node.node_id]))
            order, _ = self.planner.order_positions(
                pattern,
                node,
                applied=applied[node.node_id],
                positions=pending,
                in_size=in_size,
                partner_size_of=lambda p, _node=node: predicted_size(
                    _node.edges[p].node
                ),
            )
            taken = applied[node.node_id]
            base = pattern.factor(node, taken)
            for p in order:
                edge = node.edges[p]
                est_in = in_size * (
                    pattern.factor(node, taken) / base if base > 0.0 else 1.0
                )
                taken = taken + (p,)
                est_out = in_size * (
                    pattern.factor(node, taken) / base if base > 0.0 else 1.0
                )
                est_partner = predicted_size(edge.node)
                new_up.append(
                    PlanStep(
                        index=0,  # renumbered below
                        phase="up",
                        axis=edge.axis.value,
                        node_id=node.node_id,
                        node_tag=node.tag,
                        partner_id=edge.node.node_id,
                        partner_tag=edge.node.tag,
                        est_in=est_in,
                        est_out=est_out,
                        est_partner=est_partner,
                        est_cost=step_cost(edge.axis, est_in, est_partner),
                        replanned=True,
                    )
                )
        tail = [
            step for step in plan.steps[at + 1:] if step.phase != "up"
        ]
        plan.replans += 1
        plan.replanned_at.append(plan.steps[at].index)
        plan.steps = plan.steps[: at + 1] + new_up + tail
        for offset, step in enumerate(plan.steps[at + 1:], start=at + 1):
            step.index = offset
