"""Typed metrics: counters, gauges, fixed-bound histograms, exposition.

A :class:`MetricsRegistry` owns named metric *families*; a family has a
type, a help string and a fixed label-name tuple, and holds one child
metric per distinct label-value combination::

    registry = MetricsRegistry()
    requests = registry.counter(
        "repro_requests_total", "Estimate requests served.", labels=("synopsis",)
    )
    requests.labels(synopsis="SSPlays").inc()
    latency = registry.histogram(
        "repro_request_latency_seconds", "Request latency.",
        buckets=(0.001, 0.005, 0.025, 0.1, 1.0),
    )
    latency.observe(0.004)

Families with no labels proxy ``inc``/``set``/``observe`` straight to
their single child, so scalar metrics read naturally.

Two expositions render the same registry:

* :meth:`MetricsRegistry.snapshot` — a JSON-ready dict (the service's
  legacy ``GET /metrics`` document builds on it);
* :meth:`MetricsRegistry.render_prom` — Prometheus text format 0.0.4
  (``GET /metrics?format=prom``): ``# HELP`` / ``# TYPE`` comments,
  ``name{label="value"} value`` samples, and for histograms the
  cumulative ``_bucket{le=...}`` series plus ``_sum`` / ``_count``.

Misuse (bad metric or label names, re-registering a name under a
different type or label set) raises
:class:`repro.errors.ObservabilityError` — observability code must fail
at registration time, never midway through a request.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ObservabilityError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_LATENCY_BUCKETS"]

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default request-latency bounds, in seconds (sub-ms estimates up to
#: multi-second stalls).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return "%d" % int(value)
    return repr(float(value))


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError("counters only go up; got %r" % (amount,))
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def expose(self) -> float:
        return self.value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def expose(self) -> float:
        return self.value


class Histogram:
    """Fixed-bound histogram: per-bucket counts, sum and count.

    ``bounds`` are the *upper* bucket bounds, strictly increasing; an
    implicit ``+Inf`` bucket catches everything above the last bound.
    """

    __slots__ = ("bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(self, bounds: Sequence[float]):
        ordered = tuple(float(b) for b in bounds)
        if not ordered:
            raise ObservabilityError("histogram needs at least one bucket bound")
        if any(b >= c for b, c in zip(ordered, ordered[1:])):
            raise ObservabilityError(
                "histogram bounds must be strictly increasing: %r" % (ordered,)
            )
        self.bounds = ordered
        self._counts = [0] * (len(ordered) + 1)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def expose(self) -> Dict[str, Any]:
        """Cumulative (le, count) pairs plus sum/count, as one snapshot."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
            acc = self._sum
        cumulative: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket_count in zip(self.bounds, counts):
            running += bucket_count
            cumulative.append((bound, running))
        cumulative.append((math.inf, total))
        return {"buckets": cumulative, "sum": acc, "count": total}


_FACTORIES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """One named metric family: type + help + labelled children."""

    def __init__(
        self,
        name: str,
        help_text: str,
        metric_type: str,
        label_names: Tuple[str, ...],
        buckets: Optional[Sequence[float]] = None,
    ):
        self.name = name
        self.help = help_text
        self.type = metric_type
        self.label_names = label_names
        self._buckets = tuple(buckets) if buckets is not None else None
        self._children: Dict[Tuple[str, ...], Any] = {}
        self._lock = threading.Lock()

    def _make_child(self) -> Any:
        if self.type == "histogram":
            return Histogram(self._buckets or DEFAULT_LATENCY_BUCKETS)
        return _FACTORIES[self.type]()

    def labels(self, **labels: str) -> Any:
        """The child metric for one label-value combination."""
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ObservabilityError(
                "metric %r takes labels %r, got %r"
                % (self.name, self.label_names, tuple(sorted(labels)))
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
        return child

    def _scalar(self) -> Any:
        if self.label_names:
            raise ObservabilityError(
                "metric %r is labelled (%r); address a child via .labels()"
                % (self.name, self.label_names)
            )
        return self.labels()

    # Scalar conveniences: a label-free family acts like its only child.
    def inc(self, amount: float = 1.0) -> None:
        self._scalar().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._scalar().dec(amount)

    def set(self, value: float) -> None:
        self._scalar().set(value)

    def observe(self, value: float) -> None:
        self._scalar().observe(value)

    @property
    def value(self) -> float:
        return self._scalar().value

    def children(self) -> List[Tuple[Dict[str, str], Any]]:
        with self._lock:
            items = sorted(self._children.items())
        return [
            (dict(zip(self.label_names, key)), child) for key, child in items
        ]

    def total(self) -> float:
        """Summed value over all children (counters/gauges only)."""
        return sum(child.value for _, child in self.children())


class MetricsRegistry:
    """A process-local registry of typed metric families."""

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()

    # -- registration --------------------------------------------------

    def _register(
        self,
        name: str,
        help_text: str,
        metric_type: str,
        labels: Tuple[str, ...],
        buckets: Optional[Sequence[float]] = None,
    ) -> _Family:
        if not _METRIC_NAME.match(name):
            raise ObservabilityError("invalid metric name %r" % (name,))
        for label in labels:
            if not _LABEL_NAME.match(label) or label.startswith("__"):
                raise ObservabilityError("invalid label name %r" % (label,))
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.type != metric_type or family.label_names != labels:
                    raise ObservabilityError(
                        "metric %r already registered as %s%r; cannot re-register "
                        "as %s%r" % (name, family.type, family.label_names,
                                     metric_type, labels)
                    )
                return family
            family = _Family(name, help_text, metric_type, labels, buckets)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", labels: Iterable[str] = ()
    ) -> _Family:
        return self._register(name, help_text, "counter", tuple(labels))

    def gauge(
        self, name: str, help_text: str = "", labels: Iterable[str] = ()
    ) -> _Family:
        return self._register(name, help_text, "gauge", tuple(labels))

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Iterable[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> _Family:
        return self._register(name, help_text, "histogram", tuple(labels), buckets)

    def get(self, name: str) -> Optional[_Family]:
        with self._lock:
            return self._families.get(name)

    def families(self) -> List[_Family]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    # -- exposition ----------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready dump: name -> {type, help, values}."""
        document: Dict[str, Any] = {}
        for family in self.families():
            values = []
            for labels, child in family.children():
                entry: Dict[str, Any] = {"labels": labels}
                exposed = child.expose()
                if family.type == "histogram":
                    entry["buckets"] = [
                        ["+Inf" if bound == math.inf else bound, count]
                        for bound, count in exposed["buckets"]
                    ]
                    entry["sum"] = exposed["sum"]
                    entry["count"] = exposed["count"]
                else:
                    entry["value"] = exposed
                values.append(entry)
            document[family.name] = {
                "type": family.type,
                "help": family.help,
                "values": values,
            }
        return document

    def render_prom(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append("# HELP %s %s" % (family.name, family.help))
            lines.append("# TYPE %s %s" % (family.name, family.type))
            for labels, child in family.children():
                if family.type == "histogram":
                    exposed = child.expose()
                    for bound, count in exposed["buckets"]:
                        bucket_labels = dict(labels)
                        bucket_labels["le"] = _format_value(bound)
                        lines.append(
                            "%s_bucket%s %d"
                            % (family.name, self._label_block(bucket_labels), count)
                        )
                    lines.append(
                        "%s_sum%s %s"
                        % (family.name, self._label_block(labels),
                           _format_value(exposed["sum"]))
                    )
                    lines.append(
                        "%s_count%s %d"
                        % (family.name, self._label_block(labels), exposed["count"])
                    )
                else:
                    lines.append(
                        "%s%s %s"
                        % (family.name, self._label_block(labels),
                           _format_value(child.expose()))
                    )
        return "\n".join(lines) + "\n"

    @staticmethod
    def _label_block(labels: Dict[str, str]) -> str:
        if not labels:
            return ""
        inner = ",".join(
            '%s="%s"' % (name, _escape_label_value(str(labels[name])))
            for name in sorted(labels)
        )
        return "{%s}" % inner
