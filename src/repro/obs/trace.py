"""Request-scoped tracing: nested spans, counters, deterministic ids.

One :class:`Tracer` lives for one request (or one build).  Code under
trace opens spans::

    tracer = Tracer("estimate", seed=("SSPlays", "//A/$B"))
    with tracer.span("parse"):
        ...
    with tracer.aggregate("p-hist lookup") as span:
        span.incr("cells_read", len(pairs))
    trace = tracer.finish()          # JSON-ready dict

``span`` creates a fresh child of the current span every time;
``aggregate`` merges repeated sections of the same name under the same
parent into *one* span with a ``count`` (the right shape for per-lookup
instrumentation, where a single estimate may read hundreds of histogram
cells).  Every span records wall time (``perf_counter``) and per-thread
CPU time (``thread_time``), plus arbitrary integer counters.

Thread-safety: the active-span stack is thread-local, so worker threads
can open spans concurrently without corrupting each other's nesting; a
thread with no open span attaches its spans under the tracer's root.
Child lists and aggregates are guarded by one tracer lock.

Trace-off fast path
-------------------

:data:`NULL_TRACER` is the tracer every hot path holds by default.  Its
``span``/``aggregate`` return one shared, immutable :data:`NULL_SPAN`
singleton — entering, exiting and counting on it are no-ops and **no
object is ever allocated**, so leaving the hooks compiled into the
estimator costs a few attribute lookups per span site (the ≤2%% overhead
budget of the service benchmark).

Trace ids are *deterministic*: a hash of the caller-supplied seed parts
and a process-wide sequence number, so the same process serving the same
request sequence mints the same ids (reproducible tests, stable
slow-query-log joins).  They are not globally unique across processes.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
import time
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "make_trace_id",
    "TRACE_FORMAT_VERSION",
]

#: Version of the serialized trace payload (``Tracer.finish()``).
TRACE_FORMAT_VERSION = 1

_trace_seq = itertools.count(1)


def make_trace_id(*parts: Any) -> str:
    """A 16-hex-digit deterministic trace id.

    Hashes ``parts`` plus a process-wide sequence number: the n-th call
    with the same parts yields the same id in every run.
    """
    digest = hashlib.blake2b(digest_size=8)
    for part in parts:
        digest.update(str(part).encode("utf-8", "replace"))
        digest.update(b"\x1f")
    digest.update(str(next(_trace_seq)).encode("ascii"))
    return digest.hexdigest()


def _reset_trace_ids() -> None:
    """Restart the id sequence (test isolation only)."""
    global _trace_seq
    _trace_seq = itertools.count(1)


class Span:
    """One timed section of a trace, with counters and child spans."""

    __slots__ = (
        "name",
        "start_ms",
        "wall_ms",
        "cpu_ms",
        "count",
        "counters",
        "children",
        "_wall0",
        "_cpu0",
        "_tracer",
    )

    def __init__(self, name: str, tracer: "Tracer"):
        self.name = name
        self.start_ms = 0.0
        self.wall_ms = 0.0
        self.cpu_ms = 0.0
        #: How many sections were merged into this span (1 for plain
        #: spans, >= 1 for aggregates).
        self.count = 0
        self.counters: Dict[str, int] = {}
        self.children: List["Span"] = []
        self._wall0 = 0.0
        self._cpu0 = 0.0
        self._tracer = tracer

    # -- context manager -----------------------------------------------

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self._wall0 = time.perf_counter()
        self._cpu0 = time.thread_time()
        if self.count == 0:
            self.start_ms = (self._wall0 - self._tracer._epoch) * 1000.0
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        wall = time.perf_counter() - self._wall0
        cpu = time.thread_time() - self._cpu0
        with self._tracer._lock:
            self.wall_ms += wall * 1000.0
            self.cpu_ms += cpu * 1000.0
            self.count += 1
        self._tracer._pop(self)
        return False

    # -- counters ------------------------------------------------------

    def incr(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the span counter ``name``."""
        with self._tracer._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "start_ms": round(self.start_ms, 6),
            "wall_ms": round(self.wall_ms, 6),
            "cpu_ms": round(self.cpu_ms, 6),
            "count": self.count,
        }
        if self.counters:
            payload["counters"] = dict(self.counters)
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Span %s wall=%.3fms count=%d>" % (self.name, self.wall_ms, self.count)


class Tracer:
    """Collects one request's spans under a root span.

    ``seed`` feeds the deterministic trace id; ``name`` labels the trace
    (``"estimate"``, ``"build"``, ...).  The root span opens at
    construction and closes at :meth:`finish`.
    """

    enabled = True

    def __init__(self, name: str = "trace", seed: Iterable[Any] = ()):
        self.name = name
        self.trace_id = make_trace_id(name, *seed)
        self._lock = threading.RLock()
        self._local = threading.local()
        self._epoch = time.perf_counter()
        self._aggregates: Dict[tuple, Span] = {}
        self.root = Span(name, self)
        self.root._wall0 = self._epoch
        self.root._cpu0 = time.thread_time()
        self._local.stack = [self.root]
        self._finished: Optional[Dict[str, Any]] = None

    # -- span stack (thread-local) -------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            # A thread the tracer has never seen: its spans nest under
            # the root.
            stack = [self.root]
            self._local.stack = stack
        return stack

    def current(self) -> Span:
        """The innermost open span on the calling thread."""
        return self._stack()[-1]

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if span.count == 0 and span not in stack[-1].children:
            with self._lock:
                if span not in stack[-1].children:
                    stack[-1].children.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    # -- public span constructors --------------------------------------

    def span(self, name: str) -> Span:
        """A fresh child span of the current span."""
        return Span(name, self)

    def aggregate(self, name: str) -> Span:
        """The merged span ``name`` under the current span.

        Repeated ``with tracer.aggregate("p-hist lookup")`` sections in
        the same parent accumulate into one span; ``count`` records how
        many sections merged.
        """
        parent = self.current()
        key = (id(parent), name)
        with self._lock:
            span = self._aggregates.get(key)
            if span is None:
                span = Span(name, self)
                self._aggregates[key] = span
        return span

    def incr(self, name: str, value: int = 1) -> None:
        """Bump a counter on the current span."""
        self.current().incr(name, value)

    # -- lifecycle -----------------------------------------------------

    def finish(self) -> Dict[str, Any]:
        """Close the root span and return the JSON-ready trace document.

        Idempotent: repeated calls return the same document.
        """
        if self._finished is None:
            now = time.perf_counter()
            with self._lock:
                self.root.wall_ms = (now - self._epoch) * 1000.0
                self.root.cpu_ms = (time.thread_time() - self.root._cpu0) * 1000.0
                self.root.count = 1
            self._finished = {
                "version": TRACE_FORMAT_VERSION,
                "trace_id": self.trace_id,
                "name": self.name,
                "root": self.root.to_dict(),
            }
        return self._finished

    def to_dict(self) -> Dict[str, Any]:
        return self.finish()

    def span_names(self) -> List[str]:
        """Every span name in the trace, preorder (tests, debugging)."""
        names: List[str] = []

        def walk(span: Span) -> None:
            names.append(span.name)
            for child in span.children:
                walk(child)

        walk(self.root)
        return names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Tracer %s %s>" % (self.name, self.trace_id)


class _NullSpan:
    """The shared no-op span: entering, exiting and counting do nothing.

    A single immutable instance backs every trace-off span site, so the
    trace-off path allocates nothing per span.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False

    def incr(self, name: str, value: int = 1) -> None:
        pass

    def to_dict(self) -> None:
        return None


NULL_SPAN = _NullSpan()


class NullTracer:
    """The trace-off tracer: every method is a no-op returning singletons."""

    __slots__ = ()

    enabled = False
    trace_id = ""
    name = ""

    def span(self, name: str) -> _NullSpan:
        return NULL_SPAN

    def aggregate(self, name: str) -> _NullSpan:
        return NULL_SPAN

    def incr(self, name: str, value: int = 1) -> None:
        pass

    def current(self) -> _NullSpan:
        return NULL_SPAN

    def finish(self) -> None:
        return None

    def to_dict(self) -> None:
        return None

    def span_names(self) -> List[str]:
        return []


NULL_TRACER = NullTracer()
