"""Ring-buffer slow-query log with top-K retention.

Three views over one ``observe`` stream:

* **recent** — a bounded ring of the latest records at or above
  ``threshold_ms`` (the operator's "what was slow just now");
* **top by latency** — the all-time K slowest queries (min-heap, so a
  new record only displaces a faster one);
* **top by relative error** — the K worst-estimated queries *when truth
  is known*: records carrying an ``actual`` value rank by
  ``|estimate - actual| / max(actual, 1)``.

Records optionally carry the trace id (and, for sampled requests, the
whole trace document) so a slow entry links straight to its span tree.

Everything is thread-safe and O(capacity + K) in memory, so a long-lived
server can observe every request forever.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["SlowQueryLog", "SlowQueryRecord"]

DEFAULT_CAPACITY = 256
DEFAULT_TOP_K = 32


@dataclass(frozen=True)
class SlowQueryRecord:
    """One observed query, ready for the wire."""

    seq: int
    query: str
    elapsed_ms: float
    synopsis: str = ""
    route: str = ""
    estimate: Optional[float] = None
    actual: Optional[float] = None
    rel_error: Optional[float] = None
    trace_id: str = ""
    trace: Optional[Dict[str, Any]] = field(default=None, compare=False)

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "seq": self.seq,
            "query": self.query,
            "elapsed_ms": self.elapsed_ms,
        }
        if self.synopsis:
            payload["synopsis"] = self.synopsis
        if self.route:
            payload["route"] = self.route
        if self.estimate is not None:
            payload["estimate"] = self.estimate
        if self.actual is not None:
            payload["actual"] = self.actual
        if self.rel_error is not None:
            payload["rel_error"] = self.rel_error
        if self.trace_id:
            payload["trace_id"] = self.trace_id
        if self.trace is not None:
            payload["trace"] = self.trace
        return payload


def relative_error(estimate: float, actual: float) -> float:
    """The harness's error metric: ``|est - act| / max(act, 1)``."""
    return abs(estimate - actual) / max(actual, 1.0)


class SlowQueryLog:
    """Bounded slow-query accounting (see module docstring)."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        threshold_ms: float = 0.0,
        top_k: int = DEFAULT_TOP_K,
    ):
        if capacity < 1:
            capacity = 1
        self.capacity = capacity
        self.threshold_ms = max(0.0, threshold_ms)
        self.top_k = max(1, top_k)
        self._seq = itertools.count(1)
        self._lock = threading.Lock()
        self._recent: "deque[SlowQueryRecord]" = deque(maxlen=capacity)
        # Min-heaps of (key, seq, record): the root is the *least*
        # interesting retained record and is evicted first.
        self._top_latency: List[tuple] = []
        self._top_error: List[tuple] = []
        self._observed = 0

    # ------------------------------------------------------------------

    def observe(
        self,
        query: str,
        elapsed_ms: float,
        synopsis: str = "",
        route: str = "",
        estimate: Optional[float] = None,
        actual: Optional[float] = None,
        trace_id: str = "",
        trace: Optional[Dict[str, Any]] = None,
    ) -> Optional[SlowQueryRecord]:
        """Record one query; returns the record when it was retained.

        Every observation competes for the top-K boards; only those at
        or above ``threshold_ms`` enter the recent ring.
        """
        rel_error = None
        if estimate is not None and actual is not None:
            rel_error = relative_error(float(estimate), float(actual))
        record = SlowQueryRecord(
            seq=next(self._seq),
            query=query,
            elapsed_ms=float(elapsed_ms),
            synopsis=synopsis,
            route=route,
            estimate=estimate,
            actual=actual,
            rel_error=rel_error,
            trace_id=trace_id,
            trace=trace,
        )
        retained = False
        with self._lock:
            self._observed += 1
            if record.elapsed_ms >= self.threshold_ms:
                self._recent.append(record)
                retained = True
            retained |= self._push_top(
                self._top_latency, record.elapsed_ms, record
            )
            if rel_error is not None:
                retained |= self._push_top(self._top_error, rel_error, record)
        return record if retained else None

    def _push_top(self, heap: List[tuple], key: float, record: SlowQueryRecord) -> bool:
        entry = (key, record.seq, record)
        if len(heap) < self.top_k:
            heapq.heappush(heap, entry)
            return True
        if key > heap[0][0]:
            heapq.heapreplace(heap, entry)
            return True
        return False

    # ------------------------------------------------------------------

    def recent(self, limit: Optional[int] = None) -> List[SlowQueryRecord]:
        """Newest retained records first."""
        with self._lock:
            records = list(self._recent)
        records.reverse()
        return records[:limit] if limit is not None else records

    def top_by_latency(self, limit: Optional[int] = None) -> List[SlowQueryRecord]:
        """All-time slowest queries, slowest first."""
        with self._lock:
            ordered = sorted(self._top_latency, reverse=True)
        records = [record for _, _, record in ordered]
        return records[:limit] if limit is not None else records

    def top_by_error(self, limit: Optional[int] = None) -> List[SlowQueryRecord]:
        """Worst relative error among truth-carrying queries, worst first."""
        with self._lock:
            ordered = sorted(self._top_error, reverse=True)
        records = [record for _, _, record in ordered]
        return records[:limit] if limit is not None else records

    def __len__(self) -> int:
        with self._lock:
            return len(self._recent)

    @property
    def observed(self) -> int:
        """Total observations (retained or not)."""
        with self._lock:
            return self._observed

    def clear(self) -> None:
        with self._lock:
            self._recent.clear()
            self._top_latency.clear()
            self._top_error.clear()

    # ------------------------------------------------------------------

    def snapshot(self, limit: Optional[int] = None) -> Dict[str, Any]:
        """The ``/debug/slowlog`` document."""
        return {
            "threshold_ms": self.threshold_ms,
            "capacity": self.capacity,
            "top_k": self.top_k,
            "observed": self.observed,
            "recent": [r.as_dict() for r in self.recent(limit)],
            "top_latency": [r.as_dict() for r in self.top_by_latency(limit)],
            "top_error": [r.as_dict() for r in self.top_by_error(limit)],
        }
