"""Tracing decorators for the statistics providers.

The estimator reads statistics through two tiny protocols
(:class:`~repro.core.providers.PathStatsProvider`,
:class:`~repro.core.providers.OrderStatsProvider`).  When a request is
traced, :meth:`EstimationSystem.query` wraps the system's providers in
these decorators; every lookup then accrues into one aggregate span per
kind (``p-hist lookup`` / ``o-hist lookup``) carrying wall/CPU time and
the counters the paper's cost model cares about:

* ``cells_read`` — (path id, frequency) pairs (p) or grid cells (o)
  returned;
* ``buckets_scanned`` — histogram buckets backing those reads (0 for the
  exact-table providers, which have no buckets).

The wrappers are allocated per traced request and deliberately carry
``__slots__``: the path join's per-provider init cache
(:func:`repro.core.pathjoin._initial_state`) probes ``setattr`` and
skips caching on slotted objects, so traced requests observe the *real*
lookup traffic instead of a warm cache's.

Untraced requests never see these classes — the trace-off fast path uses
the raw providers and :data:`~repro.obs.trace.NULL_TRACER`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.obs.trace import Tracer

__all__ = ["TracingPathStats", "TracingOrderStats"]

P_HIST_SPAN = "p-hist lookup"
O_HIST_SPAN = "o-hist lookup"


def _bucket_count(provider: object, tag: str) -> int:
    """Buckets backing one tag's statistics (0 for bucketless providers)."""
    histogram = getattr(provider, "histogram", None)
    if histogram is None:
        return 0
    try:
        tag_histogram = histogram(tag)
    except TypeError:
        return 0
    return getattr(tag_histogram, "bucket_count", 0) if tag_histogram else 0


class TracingPathStats:
    """PathStatsProvider decorator: counts p-histogram traffic."""

    __slots__ = ("_inner", "_tracer")

    def __init__(self, inner: object, tracer: Tracer):
        self._inner = inner
        self._tracer = tracer

    def frequency_pairs(self, tag: str) -> List[Tuple[int, float]]:
        with self._tracer.aggregate(P_HIST_SPAN) as span:
            pairs = self._inner.frequency_pairs(tag)
            span.incr("cells_read", len(pairs))
            buckets = _bucket_count(self._inner, tag)
            if buckets:
                span.incr("buckets_scanned", buckets)
        return pairs

    def frequency_map(self, tag: str) -> Dict[int, float]:
        return dict(self.frequency_pairs(tag))

    def __getattr__(self, name: str):
        # Forward introspection (histogram(), depth_frequency_map, ...)
        # so the wrapper is substitutable anywhere the inner provider is.
        # Private state (the join init cache above all) is NOT forwarded:
        # a traced request must observe real lookups, not a warm cache.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._inner, name)


class TracingOrderStats:
    """OrderStatsProvider decorator: counts o-histogram traffic."""

    __slots__ = ("_inner", "_tracer")

    def __init__(self, inner: object, tracer: Tracer):
        self._inner = inner
        self._tracer = tracer

    def order_count(self, tag: str, pid: int, other_tag: str, before: bool) -> float:
        with self._tracer.aggregate(O_HIST_SPAN) as span:
            value = self._inner.order_count(tag, pid, other_tag, before)
            span.incr("cells_read")
            histogram = getattr(self._inner, "histogram", None)
            if histogram is not None:
                # Region labels follow the o-histogram's own constants.
                from repro.histograms.ohistogram import AFTER, BEFORE

                try:
                    tag_histogram = histogram(tag, BEFORE if before else AFTER)
                except TypeError:
                    tag_histogram = None
                if tag_histogram is not None:
                    span.incr(
                        "buckets_scanned",
                        getattr(tag_histogram, "bucket_count", 0),
                    )
        return value

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._inner, name)
