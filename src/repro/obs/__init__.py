"""Observability: request tracing, typed metrics, slow-query log.

Dependency-free (stdlib only) and import-cycle-free: nothing in this
package imports from :mod:`repro.core`, :mod:`repro.build` or
:mod:`repro.service` — those layers import *us* and thread the hooks
through their hot paths.

* :mod:`repro.obs.trace` — request-scoped :class:`Tracer` producing
  nested spans with wall/CPU time and counters, plus the zero-allocation
  :data:`NULL_TRACER` used when tracing is off;
* :mod:`repro.obs.providers` — tracing decorators for the statistics
  providers (p-/o-histogram lookup spans with bucket/cell counters);
* :mod:`repro.obs.registry` — typed :class:`MetricsRegistry`
  (counter / gauge / histogram with fixed bucket bounds) with JSON and
  Prometheus text exposition;
* :mod:`repro.obs.slowlog` — ring-buffer :class:`SlowQueryLog` keeping
  the slowest (and, when truth is known, worst-estimated) queries.
"""

from repro.obs.providers import TracingOrderStats, TracingPathStats
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.slowlog import SlowQueryLog, SlowQueryRecord
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    make_trace_id,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "SlowQueryLog",
    "SlowQueryRecord",
    "Span",
    "Tracer",
    "TracingOrderStats",
    "TracingPathStats",
    "make_trace_id",
]
