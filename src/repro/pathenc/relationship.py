"""Path-id compatibility tests used by the path join (Section 2, Cases 1-2).

Given two (tag, path id) groups the join asks whether nodes of the first
group can be ancestors (or parents) of nodes of the second.  Two cases:

* **Case 1** — equal path ids: decompose the id into root-to-leaf paths and
  check the tag relationship on any one of them.
* **Case 2** — strict containment ``PidX ⊋ PidY``: every ``x`` occurs on the
  paths where some ``y`` occurs; check the tag relationship on the common
  paths (the bits of ``PidY``).

A descendant's path id is always a subset of its ancestor's (the ancestor
bit-ors over at least the descendant's leaves), so ``PidY ⊆ PidX`` is also a
necessary condition — any other bit pattern is incompatible.
"""

from __future__ import annotations

import enum

from repro.pathenc.encoding import EncodingTable
from repro.pathenc.pathid import encodings_of


class Axis(enum.Enum):
    """Structural axes understood by the compatibility test."""

    CHILD = "child"
    DESCENDANT = "descendant"


def pids_compatible(
    table: EncodingTable,
    upper_tag: str,
    upper_pid: int,
    lower_tag: str,
    lower_pid: int,
    axis: Axis,
) -> bool:
    """Can a ``(upper_tag, upper_pid)`` node reach a ``(lower_tag,
    lower_pid)`` node via ``axis``?

    Implements the paper's Case 1 (equal ids) and Case 2 (containment) with
    the tag-relationship check against the encoding table.
    """
    if (upper_pid & lower_pid) != lower_pid:
        return False  # not a subset: impossible for any ancestor relation
    immediate = axis is Axis.CHILD
    # Common paths = the bits of the lower pid (equals both for Case 1).
    for encoding in encodings_of(lower_pid, table.width):
        if table.tag_below(encoding, upper_tag, lower_tag, immediate):
            return True
    return False


def pid_is_root(table: EncodingTable, tag: str, pid: int) -> bool:
    """Is a ``(tag, pid)`` group the document root of its paths?

    Used for absolute ``/step`` queries: the first step must match the root
    label of every path the node covers (the root covers all paths, so
    checking one bit suffices; we check them all for robustness).
    """
    encs = encodings_of(pid, table.width)
    return bool(encs) and all(table.tag_at_root(e, tag) for e in encs)
