"""The encoding table: distinct root-to-leaf label paths ↔ integer encodings.

Besides the mapping itself the table answers the question the path join
keeps asking (Section 2, Examples 2.2/2.3): *given one encoded path and two
element tags, how are the tags related along that path?*
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.xmltree.document import XmlDocument


class EncodingTable:
    """Bidirectional map between root-to-leaf label paths and encodings.

    Encodings are consecutive integers starting at 1, assigned in order of
    first occurrence in the document (matching Figure 1(b)).
    """

    def __init__(self, paths: Sequence[str]):
        if not paths:
            raise ValueError("encoding table needs at least one path")
        self._paths: List[str] = list(paths)
        self._labels: List[Tuple[str, ...]] = [tuple(p.split("/")) for p in self._paths]
        self._by_path: Dict[str, int] = {}
        for index, path in enumerate(self._paths):
            if path in self._by_path:
                raise ValueError("duplicate root-to-leaf path %r" % path)
            self._by_path[path] = index + 1
        # (tag, pathid) -> feasible depth set; see tag_depths().
        self._depth_cache: Dict[Tuple[str, int], Tuple[int, ...]] = {}

    @classmethod
    def from_document(cls, document: XmlDocument) -> "EncodingTable":
        return cls(document.distinct_root_to_leaf_paths())

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of distinct root-to-leaf paths (= path-id width)."""
        return len(self._paths)

    @property
    def width(self) -> int:
        return len(self._paths)

    def encoding_of(self, path: str) -> int:
        """Integer encoding of a path string; raises KeyError if unknown."""
        return self._by_path[path]

    def path_of(self, encoding: int) -> str:
        """Path string for an encoding (1-based)."""
        if not 1 <= encoding <= len(self._paths):
            raise KeyError("encoding %d out of range" % encoding)
        return self._paths[encoding - 1]

    def labels_of(self, encoding: int) -> Tuple[str, ...]:
        """The label sequence of an encoded path, root first."""
        if not 1 <= encoding <= len(self._labels):
            raise KeyError("encoding %d out of range" % encoding)
        return self._labels[encoding - 1]

    def all_paths(self) -> List[str]:
        return list(self._paths)

    # ------------------------------------------------------------------
    # Tag relationships along one path
    # ------------------------------------------------------------------

    def tag_below(self, encoding: int, upper: str, lower: str, immediate: bool) -> bool:
        """Does ``lower`` occur below ``upper`` along the encoded path?

        ``immediate=True`` asks for a parent/child adjacency, otherwise any
        ancestor/descendant pair.  Tags may repeat along a path (recursive
        schemas); any occurrence pair qualifies.
        """
        labels = self.labels_of(encoding)
        upper_positions = [i for i, label in enumerate(labels) if label == upper]
        if not upper_positions:
            return False
        if immediate:
            return any(
                i + 1 < len(labels) and labels[i + 1] == lower for i in upper_positions
            )
        first_upper = upper_positions[0]
        return lower in labels[first_upper + 1:]

    def tag_at_root(self, encoding: int, tag: str) -> bool:
        """Is ``tag`` the document root of the encoded path?"""
        return self.labels_of(encoding)[0] == tag

    def tags_between(self, encoding: int, upper: str, lower: str) -> Optional[Tuple[str, ...]]:
        """Labels strictly between the first ``upper`` and the next ``lower``.

        Used by the preceding/following axis rewrite (Example 5.3): the
        intermediate chain from the context node down to the axis node.
        Returns ``None`` when the pair does not occur in that order.
        """
        labels = self.labels_of(encoding)
        for i, label in enumerate(labels):
            if label != upper:
                continue
            for j in range(i + 1, len(labels)):
                if labels[j] == lower:
                    return labels[i + 1:j]
        return None

    # ------------------------------------------------------------------
    # Depth-consistent placement (DESIGN.md §5, recursion handling)
    # ------------------------------------------------------------------

    def tag_depths(self, tag: str, pathid: int) -> Tuple[int, ...]:
        """Feasible depths of a ``(tag, pathid)`` node group.

        A document node lies on *every* root-to-leaf path of its path id at
        its own depth, so a node tagged ``tag`` with id ``pathid`` can only
        exist at depths where **all** of the id's paths carry ``tag``.
        With non-recursive schemas this set is a singleton; under recursion
        it prunes the cross-level matches that break Theorem 4.1.
        """
        key = (tag, pathid)
        cached = self._depth_cache.get(key)
        if cached is not None:
            return cached
        depths: Optional[set] = None
        remaining = pathid
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            encoding = len(self._paths) - low.bit_length() + 1
            labels = self._labels[encoding - 1]
            here = {i for i, label in enumerate(labels) if label == tag}
            depths = here if depths is None else (depths & here)
            if not depths:
                break
        result = tuple(sorted(depths or ()))
        self._depth_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Size accounting (Table 3)
    # ------------------------------------------------------------------

    def size_bytes(self) -> int:
        """Cost model: each entry stores its path string + a 4-byte encoding."""
        return sum(len(path) + 4 for path in self._paths)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<EncodingTable %d paths>" % len(self._paths)
