"""Bit-vector operations on path ids.

A path id is a plain Python ``int`` interpreted as a bit vector of a known
``width`` (the number of distinct root-to-leaf paths).  Following the paper,
the *i*-th bit **from the left** corresponds to path encoding ``i``
(encodings start at 1), so encoding ``e`` maps to the integer bit position
``width - e``.
"""

from __future__ import annotations

from typing import Iterator, List


def bit_for_encoding(encoding: int, width: int) -> int:
    """The path id with exactly the bit of ``encoding`` set.

    >>> bin(bit_for_encoding(1, 4))
    '0b1000'
    """
    if not 1 <= encoding <= width:
        raise ValueError("encoding %d out of range 1..%d" % (encoding, width))
    return 1 << (width - encoding)


def encodings_of(pathid: int, width: int) -> List[int]:
    """Decompose a path id into its path encodings, ascending.

    >>> encodings_of(0b1100, 4)
    [1, 2]
    """
    return [e for e in range(1, width + 1) if pathid & (1 << (width - e))]


def bits_of(pathid: int) -> Iterator[int]:
    """Yield the raw set-bit masks of ``pathid`` (low to high)."""
    while pathid:
        low = pathid & -pathid
        yield low
        pathid ^= low


def popcount(pathid: int) -> int:
    """Number of root-to-leaf paths covered by the path id."""
    return bin(pathid).count("1")


def contains(pid_a: int, pid_b: int) -> bool:
    """Strict path-id containment: ``pid_a`` ⊋ ``pid_b`` (Section 2, Case 2).

    ``pid_a`` contains ``pid_b`` iff they differ and ``pid_a & pid_b ==
    pid_b``.
    """
    return pid_a != pid_b and (pid_a & pid_b) == pid_b


def covers(pid_a: int, pid_b: int) -> bool:
    """Non-strict containment: equal or containing."""
    return (pid_a & pid_b) == pid_b


def format_pathid(pathid: int, width: int) -> str:
    """Render as the fixed-width bit string used in the paper's figures.

    >>> format_pathid(0b0011, 4)
    '0011'
    """
    return format(pathid, "0%db" % width)


def parse_pathid(bits: str) -> int:
    """Inverse of :func:`format_pathid` (width implied by the string)."""
    if not bits or any(c not in "01" for c in bits):
        raise ValueError("bit string must be non-empty over {0,1}: %r" % bits)
    return int(bits, 2)


def pathid_byte_size(width: int) -> int:
    """Bytes needed to store one path id (Table 3's "Pid Size")."""
    return (width + 7) // 8
