"""Assign path ids to every node of a document (Section 2).

The labeler performs one bottom-up pass:

* a leaf's path id has exactly the bit of its root-to-leaf path encoding;
* an internal node's path id is the bit-or of its children's path ids.

The resulting :class:`LabeledDocument` also materializes the *path id table*
(Figure 1(c)): the distinct path ids sorted ascending by bit sequence and
named ``p1..pk``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.pathenc.encoding import EncodingTable
from repro.pathenc.pathid import format_pathid, pathid_byte_size
from repro.xmltree.document import XmlDocument
from repro.xmltree.node import XmlNode


class LabeledDocument:
    """A document whose every element carries a path id.

    Attributes
    ----------
    document:
        The underlying :class:`~repro.xmltree.document.XmlDocument`.
    encoding_table:
        The distinct root-to-leaf path encodings.
    pathids:
        ``pathids[node.pre]`` is the path id (int bit vector) of the node.
    """

    def __init__(self, document: XmlDocument, encoding_table: EncodingTable, pathids: List[int]):
        self.document = document
        self.encoding_table = encoding_table
        self.pathids = pathids
        distinct = sorted(set(pathids))
        self._ordinal_by_pid: Dict[int, int] = {pid: i + 1 for i, pid in enumerate(distinct)}
        self._distinct_pids: List[int] = distinct

    @classmethod
    def from_summary(
        cls, encoding_table: EncodingTable, distinct_pathids: List[int]
    ) -> "LabeledDocument":
        """A document-free labeled view over summary data alone.

        The streaming builder (:mod:`repro.build`) and the synopsis loader
        (:mod:`repro.persist`) never materialize the tree, yet the
        estimation system still needs the encoding table, the distinct
        path-id table and the size accounting this class carries.
        ``document`` is ``None`` and ``pathids`` is empty on the result.
        """
        summary = cls.__new__(cls)
        summary.document = None  # type: ignore[assignment]
        summary.encoding_table = encoding_table
        summary.pathids = []
        distinct = sorted(set(distinct_pathids))
        summary._ordinal_by_pid = {pid: i + 1 for i, pid in enumerate(distinct)}
        summary._distinct_pids = distinct
        return summary

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    @property
    def width(self) -> int:
        """Path-id bit width = number of distinct root-to-leaf paths."""
        return self.encoding_table.width

    def pathid_of(self, node: XmlNode) -> int:
        return self.pathids[node.pre]

    def distinct_pathids(self) -> List[int]:
        """All distinct path ids, ascending (the p1..pk order)."""
        return list(self._distinct_pids)

    def ordinal_of(self, pathid: int) -> int:
        """The 1-based ordinal of a path id (``p3`` → 3)."""
        return self._ordinal_by_pid[pathid]

    def name_of(self, pathid: int) -> str:
        """The paper-style name, e.g. ``"p3"``."""
        return "p%d" % self.ordinal_of(pathid)

    def format_pathid(self, pathid: int) -> str:
        return format_pathid(pathid, self.width)

    # ------------------------------------------------------------------
    # Size accounting (Table 3)
    # ------------------------------------------------------------------

    def pathid_size_bytes(self) -> int:
        """Bytes per stored path id."""
        return pathid_byte_size(self.width)

    def pathid_table_size_bytes(self) -> int:
        """Cost of the distinct-path-id table: one bit vector per entry."""
        return len(self._distinct_pids) * self.pathid_size_bytes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        source = "<summary>"
        if self.document is not None:
            source = self.document.name or self.document.root.tag
        return "<LabeledDocument %s: %d distinct pids, width %d>" % (
            source,
            len(self._distinct_pids),
            self.width,
        )


def label_document(
    document: XmlDocument, encoding_table: Optional[EncodingTable] = None
) -> LabeledDocument:
    """Label every element of ``document`` with its path id.

    The pass is iterative (explicit stack) so that deep documents do not hit
    the Python recursion limit.
    """
    table = encoding_table or EncodingTable.from_document(document)
    width = table.width
    pathids = [0] * len(document)
    # Children have larger pre-order numbers than parents, so a reverse
    # document-order sweep sees every child before its parent.
    for node in reversed(list(document)):
        if node.is_leaf:
            encoding = table.encoding_of(node.label_path())
            pathids[node.pre] = 1 << (width - encoding)
        # else: already accumulated from children below.
        parent = node.parent
        if parent is not None:
            pathids[parent.pre] |= pathids[node.pre]
    return LabeledDocument(document, table, pathids)
