"""Path encoding scheme (Section 2 of the paper, after [Li/Lee/Hsu, XSym'05]).

Every distinct root-to-leaf *label path* of a document receives an integer
encoding; every element node receives a **path id** — a bit vector over the
distinct paths.  The package provides:

* :class:`~repro.pathenc.encoding.EncodingTable` — path-string ↔ encoding
  mapping plus tag-relationship tests inside a single path.
* :mod:`~repro.pathenc.pathid` — bit-vector helpers (containment, bit
  decomposition, formatting).
* :class:`~repro.pathenc.labeler.LabeledDocument` — a document with path ids
  assigned to every node and the distinct-path-id table (p1..pk).
* :mod:`~repro.pathenc.relationship` — the Case 1 / Case 2 compatibility
  tests used by the path join.
* :class:`~repro.pathenc.bintree.PathIdBinaryTree` — the Section 6 index
  over path-id bit sequences with lossless chain compression.
"""

from repro.pathenc.bintree import PathIdBinaryTree
from repro.pathenc.encoding import EncodingTable
from repro.pathenc.labeler import LabeledDocument, label_document
from repro.pathenc.pathid import (
    bit_for_encoding,
    bits_of,
    contains,
    encodings_of,
    format_pathid,
)
from repro.pathenc.relationship import Axis, pids_compatible

__all__ = [
    "EncodingTable",
    "LabeledDocument",
    "label_document",
    "PathIdBinaryTree",
    "bit_for_encoding",
    "bits_of",
    "encodings_of",
    "contains",
    "format_pathid",
    "Axis",
    "pids_compatible",
]
