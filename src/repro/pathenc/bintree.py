"""The path-id binary tree (Section 6 of the paper).

The tree indexes path-id bit sequences:

* the left/right edge out of a node represents bit 0/1;
* a leaf (at depth = bit width) holds a path-id ordinal;
* an internal node holds the largest ordinal of its left subtree (or, when
  the left subtree is empty, one less than the least ordinal of its right
  subtree) so that ordinal-comparison navigation finds any stored id.

Because ordinals are assigned in ascending bit-sequence order, an in-order
walk of the leaves yields ordinals ``1..k`` consecutively — which is what
makes the paper's **chain compression** lossless: a subtree containing only
left (right) edges encodes an all-0 (all-1) bit suffix with a single leaf
whose ordinal is recoverable from the ordinal range of the descent.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


class _TrieNode:
    """One node of the (possibly compressed) binary trie."""

    __slots__ = ("zero", "one", "node_id", "trimmed_zero", "trimmed_one")

    def __init__(self) -> None:
        self.zero: Optional[_TrieNode] = None
        self.one: Optional[_TrieNode] = None
        self.node_id = 0
        self.trimmed_zero = False
        self.trimmed_one = False

    @property
    def is_leaf(self) -> bool:
        return (
            self.zero is None
            and self.one is None
            and not self.trimmed_zero
            and not self.trimmed_one
        )


class PathIdBinaryTree:
    """Index over the distinct path ids of a labeled document.

    Parameters
    ----------
    pathids:
        Distinct path ids in ascending order (ordinal ``i+1`` is assigned to
        ``pathids[i]``, matching the path-id table).
    width:
        Bit width of the ids.
    """

    def __init__(self, pathids: Sequence[int], width: int):
        if not pathids:
            raise ValueError("need at least one path id")
        if list(pathids) != sorted(set(pathids)):
            raise ValueError("path ids must be distinct and ascending")
        if pathids[-1] >= (1 << width):
            raise ValueError("path id wider than declared width")
        self.width = width
        self.count = len(pathids)
        self._root = self._build(list(pathids), width)
        self.full_node_count = self._count_nodes(self._root)
        self.compressed = False
        self.compressed_node_count = self.full_node_count

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @staticmethod
    def _build(pathids: List[int], width: int) -> _TrieNode:
        root = _TrieNode()
        for ordinal, pid in enumerate(pathids, start=1):
            node = root
            for depth in range(width):
                bit = (pid >> (width - 1 - depth)) & 1
                if bit:
                    if node.one is None:
                        node.one = _TrieNode()
                    node = node.one
                else:
                    if node.zero is None:
                        node.zero = _TrieNode()
                    node = node.zero
            node.node_id = ordinal
        PathIdBinaryTree._assign_internal_ids(root)
        return root

    @staticmethod
    def _assign_internal_ids(root: _TrieNode) -> Tuple[int, int]:
        """Post-order pass returning (min, max) ordinal of each subtree."""

        def visit(node: _TrieNode) -> Tuple[int, int]:
            if node.is_leaf:
                return node.node_id, node.node_id
            lo = hi = None
            if node.zero is not None:
                zlo, zhi = visit(node.zero)
                node.node_id = zhi
                lo, hi = zlo, zhi
            if node.one is not None:
                olo, ohi = visit(node.one)
                if node.zero is None:
                    node.node_id = olo - 1
                    lo = olo
                hi = ohi
            assert lo is not None and hi is not None
            return lo, hi

        return visit(root)

    @staticmethod
    def _count_nodes(node: _TrieNode) -> int:
        total = 1
        if node.zero is not None:
            total += PathIdBinaryTree._count_nodes(node.zero)
        if node.one is not None:
            total += PathIdBinaryTree._count_nodes(node.one)
        return total

    # ------------------------------------------------------------------
    # Compression
    # ------------------------------------------------------------------

    def compress(self) -> "PathIdBinaryTree":
        """Apply the paper's lossless chain compression in place.

        A left (right) subtree that contains only left (right) edges — i.e.
        a pure 0-chain (1-chain) down to a single leaf — is removed together
        with its incoming edge and replaced by a ``trimmed`` flag.
        Returns ``self`` for chaining.
        """

        def pure_chain(node: _TrieNode, want_one: bool) -> bool:
            while True:
                if node.is_leaf:
                    return True
                branch = node.one if want_one else node.zero
                other = node.zero if want_one else node.one
                if other is not None or branch is None:
                    return False
                node = branch

        def walk(node: _TrieNode) -> None:
            if node.zero is not None:
                if pure_chain(node.zero, want_one=False):
                    node.zero = None
                    node.trimmed_zero = True
                else:
                    walk(node.zero)
            if node.one is not None:
                if pure_chain(node.one, want_one=True):
                    node.one = None
                    node.trimmed_one = True
                else:
                    walk(node.one)

        if not self.compressed:
            walk(self._root)
            self.compressed = True
            self.compressed_node_count = self._count_nodes(self._root)
        return self

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def bits_of_ordinal(self, ordinal: int) -> int:
        """Return the path id stored under ``ordinal`` (1-based).

        Navigates by ordinal comparison; on a trimmed edge the remaining
        suffix is all 0s (left) or all 1s (right).
        """
        if not 1 <= ordinal <= self.count:
            raise KeyError("ordinal %d out of range 1..%d" % (ordinal, self.count))
        node = self._root
        value = 0
        depth = 0
        while True:
            if node.is_leaf:
                if depth != self.width:
                    raise AssertionError("leaf at wrong depth; tree corrupt")
                return value
            go_left = ordinal <= node.node_id
            remaining = self.width - depth - 1
            if go_left:
                if node.zero is None:
                    if not node.trimmed_zero:
                        raise KeyError("ordinal %d not stored" % ordinal)
                    return value << (remaining + 1)  # all-0 suffix
                node = node.zero
                value <<= 1
            else:
                if node.one is None:
                    if not node.trimmed_one:
                        raise KeyError("ordinal %d not stored" % ordinal)
                    return (value << (remaining + 1)) | ((1 << (remaining + 1)) - 1)
                node = node.one
                value = (value << 1) | 1
            depth += 1

    def ordinal_of_bits(self, pathid: int) -> int:
        """Return the ordinal of a stored path id; KeyError if absent.

        Descends by bits while tracking the ordinal range ``[low, high]`` of
        the current subtree so that trimmed chains stay resolvable.
        """
        node = self._root
        low, high = 1, self.count
        for depth in range(self.width):
            bit = (pathid >> (self.width - 1 - depth)) & 1
            if node.is_leaf:
                raise KeyError("path id not stored")
            if bit == 0:
                high = node.node_id
                if node.zero is None:
                    if node.trimmed_zero and pathid & ((1 << (self.width - depth)) - 1) == 0:
                        # Wholly-zero suffix: the single trimmed leaf.
                        return high
                    raise KeyError("path id not stored")
                node = node.zero
            else:
                low = node.node_id + 1
                if node.one is None:
                    suffix_mask = (1 << (self.width - depth)) - 1
                    if node.trimmed_one and (pathid & suffix_mask) == suffix_mask:
                        return high
                    raise KeyError("path id not stored")
                node = node.one
        if not node.is_leaf:
            raise KeyError("path id not stored")
        return node.node_id

    # ------------------------------------------------------------------
    # Size accounting (Table 3)
    # ------------------------------------------------------------------

    NODE_BYTES = 6  # 2-byte ordinal + two 2-byte child references

    def size_bytes(self) -> int:
        """Cost-model size of the (possibly compressed) tree."""
        count = self.compressed_node_count if self.compressed else self.full_node_count
        return count * self.NODE_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "compressed" if self.compressed else "full"
        return "<PathIdBinaryTree %d ids, width %d, %s, %d nodes>" % (
            self.count,
            self.width,
            state,
            self.compressed_node_count if self.compressed else self.full_node_count,
        )
