"""Deadlines and retry policies: the time-budget vocabulary of the system.

Production path-summary services treat a request's time budget as a
first-class value that travels with the work (client call, server
handler, pool job).  Two small immutable-ish objects model it:

* :class:`Deadline` — an absolute point on a monotonic clock; everything
  downstream asks ``remaining()`` instead of carrying its own timeout;
* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  optional deterministic-by-seed jitter; it *yields* sleep durations and
  leaves the sleeping to the caller, so tests can run it with a fake
  clock and zero wall time.

Both take an injectable ``clock`` (default :func:`time.monotonic`) — the
same convention as :class:`repro.service.metrics.ServiceMetrics`.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Iterator, Optional

from repro.errors import ReliabilityError


class DeadlineExceededError(ReliabilityError):
    """The work's time budget ran out before it completed."""

    kind = "deadline_exceeded"


class Deadline:
    """An absolute expiry on a monotonic clock.

    ``Deadline.after(0.5)`` expires half a second from now; ``None`` as a
    budget means "no deadline" and every query returns the infinite
    answer.  Comparisons use the injected clock, so tests can advance
    time explicitly.
    """

    __slots__ = ("expires_at", "_clock")

    def __init__(
        self,
        expires_at: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ):
        self.expires_at = expires_at
        self._clock = clock

    @classmethod
    def after(
        cls,
        budget_s: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline":
        """A deadline ``budget_s`` seconds from now (None = unbounded)."""
        if budget_s is None:
            return cls(None, clock)
        return cls(clock() + budget_s, clock)

    def remaining(self) -> float:
        """Seconds left (``inf`` when unbounded; never negative)."""
        if self.expires_at is None:
            return float("inf")
        return max(0.0, self.expires_at - self._clock())

    def expired(self) -> bool:
        return self.expires_at is not None and self._clock() >= self.expires_at

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        if self.expired():
            raise DeadlineExceededError("%s exceeded its deadline" % what)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.expires_at is None:
            return "<Deadline unbounded>"
        return "<Deadline %.3fs remaining>" % self.remaining()


class RetryPolicy:
    """Bounded retries with exponential backoff.

    ``backoffs()`` yields the sleep to take *before* each retry —
    ``max_attempts - 1`` values for ``base * multiplier**n`` capped at
    ``max_backoff_s``.  With ``jitter > 0`` each value is scaled by a
    uniform factor in ``[1 - jitter, 1]`` drawn from a policy-owned
    :class:`random.Random` (seedable, so fault-injection tests are
    deterministic).

    The policy is stateless across calls; every ``backoffs()`` iterator
    is an independent attempt sequence.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_backoff_s: float = 0.05,
        multiplier: float = 2.0,
        max_backoff_s: float = 2.0,
        jitter: float = 0.0,
        seed: Optional[int] = None,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1, got %r" % (max_attempts,))
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1], got %r" % (jitter,))
        self.max_attempts = max_attempts
        self.base_backoff_s = base_backoff_s
        self.multiplier = multiplier
        self.max_backoff_s = max_backoff_s
        self.jitter = jitter
        self._random = random.Random(seed)

    def backoffs(self) -> Iterator[float]:
        """The sleep durations between attempts (empty when attempts=1)."""
        delay = self.base_backoff_s
        for _ in range(self.max_attempts - 1):
            value = min(delay, self.max_backoff_s)
            if self.jitter:
                value *= 1.0 - self.jitter * self._random.random()
            yield value
            delay *= self.multiplier

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<RetryPolicy attempts=%d base=%gs x%g cap=%gs>" % (
            self.max_attempts,
            self.base_backoff_s,
            self.multiplier,
            self.max_backoff_s,
        )


#: A sensible client-side default: 4 attempts, 50ms doubling to 400ms.
DEFAULT_RETRY_POLICY = RetryPolicy(max_attempts=4)

#: A policy that never retries (single attempt, no sleeps).
NO_RETRY = RetryPolicy(max_attempts=1)
