"""A circuit breaker: stop hammering a dependency that keeps failing.

Classic three-state machine (closed → open → half-open), sized for the
estimation client: after ``failure_threshold`` *consecutive* failures the
circuit opens and every call is refused instantly with
:class:`CircuitOpenError` (no connection attempt, no backoff sleep) until
``recovery_after_s`` has passed; then exactly one probe call is let
through (half-open).  A successful probe closes the circuit, a failed one
re-opens it for another full recovery window.

Thread-safe; the clock is injectable for tests.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.errors import ReliabilityError

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"


class CircuitOpenError(ReliabilityError):
    """The breaker is open: the dependency is presumed down; not calling."""

    kind = "circuit_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with timed half-open probes."""

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_after_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(
                "failure_threshold must be >= 1, got %r" % (failure_threshold,)
            )
        self.failure_threshold = failure_threshold
        self.recovery_after_s = recovery_after_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._sync_state()

    def _sync_state(self) -> str:
        """(Holding the lock.)  Promote open → half-open when due."""
        if self._state == STATE_OPEN and (
            self._clock() - self._opened_at >= self.recovery_after_s
        ):
            self._state = STATE_HALF_OPEN
            self._probing = False
        return self._state

    # ------------------------------------------------------------------

    def allow(self) -> bool:
        """May a call proceed right now?  (Half-open admits one probe.)"""
        with self._lock:
            state = self._sync_state()
            if state == STATE_CLOSED:
                return True
            if state == STATE_HALF_OPEN and not self._probing:
                self._probing = True
                return True
            return False

    def check(self, what: str = "dependency") -> None:
        """Raise :class:`CircuitOpenError` unless a call may proceed."""
        if not self.allow():
            raise CircuitOpenError(
                "circuit for %s is open after %d consecutive failure(s)"
                % (what, self._consecutive_failures)
            )

    def record_success(self) -> None:
        with self._lock:
            self._state = STATE_CLOSED
            self._consecutive_failures = 0
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            state = self._sync_state()
            if state == STATE_HALF_OPEN or (
                state == STATE_CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = STATE_OPEN
                self._opened_at = self._clock()
                self._probing = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<CircuitBreaker %s failures=%d/%d>" % (
            self.state,
            self._consecutive_failures,
            self.failure_threshold,
        )
