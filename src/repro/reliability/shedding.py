"""Admission control: bounded in-flight work, load shedding, draining.

An overloaded estimation server must refuse work it cannot finish in
time; queueing unboundedly just converts overload into timeouts for
*everyone*.  :class:`AdmissionGate` is the one object the HTTP handler
consults:

* at most ``max_inflight`` requests execute concurrently; up to
  ``max_queue`` more may *briefly* wait (``queue_timeout_s``) for a slot;
* anything beyond that is **shed** immediately —
  :meth:`enter` raises :class:`OverloadedError`, which the server maps to
  ``503`` with a ``Retry-After`` header;
* :meth:`close` flips the gate to reject-everything (graceful shutdown),
  and :meth:`drain` blocks until the last in-flight request leaves.

The gate is a condition variable around two integers — no per-request
allocation on the hot path.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

import time

from repro.errors import ReliabilityError

DEFAULT_MAX_INFLIGHT = 64
DEFAULT_MAX_QUEUE = 0
DEFAULT_QUEUE_TIMEOUT_S = 0.05


class OverloadedError(ReliabilityError):
    """The server is saturated (or closing); the request was shed.

    ``retry_after_s`` is the client-facing backoff hint carried on the
    ``Retry-After`` response header.
    """

    kind = "overloaded"

    def __init__(self, message: str, retry_after_s: float = 1.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class AdmissionGate:
    """Bounded-concurrency admission with shedding and graceful drain."""

    def __init__(
        self,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        max_queue: int = DEFAULT_MAX_QUEUE,
        queue_timeout_s: float = DEFAULT_QUEUE_TIMEOUT_S,
        retry_after_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1, got %r" % (max_inflight,))
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0, got %r" % (max_queue,))
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.queue_timeout_s = queue_timeout_s
        self.retry_after_s = retry_after_s
        self._clock = clock
        self._condition = threading.Condition(threading.Lock())
        self._inflight = 0
        self._queued = 0
        self._shed_total = 0
        self._admitted_total = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def enter(self) -> None:
        """Claim an execution slot or raise :class:`OverloadedError`.

        Every successful ``enter`` must be paired with :meth:`leave`
        (use ``try/finally`` — the request handler owns the pairing).
        """
        with self._condition:
            if self._closed:
                self._shed_total += 1
                raise OverloadedError(
                    "server is shutting down", self.retry_after_s
                )
            if self._inflight < self.max_inflight:
                self._inflight += 1
                self._admitted_total += 1
                return
            if self._queued >= self.max_queue:
                self._shed_total += 1
                raise OverloadedError(
                    "server at capacity (%d in flight, %d queued)"
                    % (self._inflight, self._queued),
                    self.retry_after_s,
                )
            # Briefly wait for a slot; shed if none frees up in time.
            self._queued += 1
            try:
                deadline = self._clock() + self.queue_timeout_s
                while self._inflight >= self.max_inflight and not self._closed:
                    budget = deadline - self._clock()
                    if budget <= 0 or not self._condition.wait(timeout=budget):
                        break
                if self._closed or self._inflight >= self.max_inflight:
                    self._shed_total += 1
                    raise OverloadedError(
                        "server at capacity (queued %.0fms without a slot)"
                        % (self.queue_timeout_s * 1000.0),
                        self.retry_after_s,
                    )
                self._inflight += 1
                self._admitted_total += 1
            finally:
                self._queued -= 1

    def leave(self) -> None:
        with self._condition:
            self._inflight -= 1
            self._condition.notify_all()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Reject all future admissions (in-flight work is unaffected)."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Wait for in-flight work to finish; True if fully drained."""
        deadline = None if timeout_s is None else self._clock() + timeout_s
        with self._condition:
            while self._inflight > 0:
                budget = None if deadline is None else deadline - self._clock()
                if budget is not None and budget <= 0:
                    return False
                self._condition.wait(timeout=budget)
            return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def inflight(self) -> int:
        with self._condition:
            return self._inflight

    @property
    def shed_total(self) -> int:
        with self._condition:
            return self._shed_total

    @property
    def admitted_total(self) -> int:
        with self._condition:
            return self._admitted_total

    @property
    def closed(self) -> bool:
        with self._condition:
            return self._closed

    def stats(self) -> dict:
        with self._condition:
            return {
                "inflight": self._inflight,
                "queued": self._queued,
                "max_inflight": self.max_inflight,
                "admitted_total": self._admitted_total,
                "shed_total": self._shed_total,
                "closed": self._closed,
            }
