"""Admission control: bounded in-flight work, load shedding, draining.

An overloaded estimation server must refuse work it cannot finish in
time; queueing unboundedly just converts overload into timeouts for
*everyone*.  :class:`AdmissionGate` is the one object the HTTP handler
consults:

* at most ``max_inflight`` requests execute concurrently; up to
  ``max_queue`` more may *briefly* wait (``queue_timeout_s``) for a slot;
* anything beyond that is **shed** immediately —
  :meth:`enter` raises :class:`OverloadedError`, which the server maps to
  ``503`` with a ``Retry-After`` header;
* :meth:`close` flips the gate to reject-everything (graceful shutdown),
  and :meth:`drain` blocks until the last in-flight request leaves.

The gate is a condition variable around two integers — no per-request
allocation on the hot path.

:class:`TieredAdmissionGate` generalizes the same contract to **named
QoS lanes** (:class:`TierPolicy`): each tier gets its own in-flight cap,
queue depth, queue timeout, ``Retry-After`` hint and deadline budget,
all sharing one global ``max_total`` slot pool.  Priority ordering is
enforced at admission time — a lower-priority arrival or waiter never
takes a freed slot while a higher-priority request that could use it is
queued — and cooperatively mid-request through :meth:`~
TieredAdmissionGate.checkpoint`, which lets a long bulk batch yield its
slot between queries whenever interactive work is waiting.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, Optional, Tuple

import time

from repro.errors import ReliabilityError

DEFAULT_MAX_INFLIGHT = 64
DEFAULT_MAX_QUEUE = 0
DEFAULT_QUEUE_TIMEOUT_S = 0.05

#: Canonical tier names used across the service, router and client.
INTERACTIVE_TIER = "interactive"
STANDARD_TIER = "standard"
BULK_TIER = "bulk"


class OverloadedError(ReliabilityError):
    """The server is saturated (or closing); the request was shed.

    ``retry_after_s`` is the client-facing backoff hint carried on the
    ``Retry-After`` response header.  ``reason`` distinguishes *why* the
    request was refused: ``"capacity"`` (no slot in time — the overload
    signal brownout controllers feed on), ``"brownout"`` (the tier is
    administratively shed while the server degrades) or ``"closing"``
    (graceful shutdown).  ``tier`` names the lane that shed, when the
    gate is tiered.
    """

    kind = "overloaded"

    def __init__(
        self,
        message: str,
        retry_after_s: float = 1.0,
        reason: str = "capacity",
        tier: Optional[str] = None,
    ):
        super().__init__(message)
        self.retry_after_s = retry_after_s
        self.reason = reason
        self.tier = tier


class AdmissionGate:
    """Bounded-concurrency admission with shedding and graceful drain."""

    def __init__(
        self,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        max_queue: int = DEFAULT_MAX_QUEUE,
        queue_timeout_s: float = DEFAULT_QUEUE_TIMEOUT_S,
        retry_after_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1, got %r" % (max_inflight,))
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0, got %r" % (max_queue,))
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.queue_timeout_s = queue_timeout_s
        self.retry_after_s = retry_after_s
        self._clock = clock
        self._condition = threading.Condition(threading.Lock())
        self._inflight = 0
        self._queued = 0
        self._shed_total = 0
        self._admitted_total = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def enter(self) -> None:
        """Claim an execution slot or raise :class:`OverloadedError`.

        Every successful ``enter`` must be paired with :meth:`leave`
        (use ``try/finally`` — the request handler owns the pairing).
        """
        with self._condition:
            if self._closed:
                self._shed_total += 1
                raise OverloadedError(
                    "server is shutting down", self.retry_after_s
                )
            if self._inflight < self.max_inflight:
                self._inflight += 1
                self._admitted_total += 1
                return
            if self._queued >= self.max_queue:
                self._shed_total += 1
                raise OverloadedError(
                    "server at capacity (%d in flight, %d queued)"
                    % (self._inflight, self._queued),
                    self.retry_after_s,
                )
            # Briefly wait for a slot; shed if none frees up in time.
            self._queued += 1
            try:
                deadline = self._clock() + self.queue_timeout_s
                while self._inflight >= self.max_inflight and not self._closed:
                    budget = deadline - self._clock()
                    if budget <= 0 or not self._condition.wait(timeout=budget):
                        break
                if self._closed or self._inflight >= self.max_inflight:
                    self._shed_total += 1
                    raise OverloadedError(
                        "server at capacity (queued %.0fms without a slot)"
                        % (self.queue_timeout_s * 1000.0),
                        self.retry_after_s,
                    )
                self._inflight += 1
                self._admitted_total += 1
            finally:
                self._queued -= 1

    def leave(self) -> None:
        with self._condition:
            self._inflight -= 1
            self._condition.notify_all()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Reject all future admissions (in-flight work is unaffected)."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Wait for in-flight work to finish; True if fully drained."""
        deadline = None if timeout_s is None else self._clock() + timeout_s
        with self._condition:
            while self._inflight > 0:
                budget = None if deadline is None else deadline - self._clock()
                if budget is not None and budget <= 0:
                    return False
                self._condition.wait(timeout=budget)
            return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def inflight(self) -> int:
        with self._condition:
            return self._inflight

    @property
    def shed_total(self) -> int:
        with self._condition:
            return self._shed_total

    @property
    def admitted_total(self) -> int:
        with self._condition:
            return self._admitted_total

    @property
    def closed(self) -> bool:
        with self._condition:
            return self._closed

    def stats(self) -> dict:
        with self._condition:
            return {
                "inflight": self._inflight,
                "queued": self._queued,
                "max_inflight": self.max_inflight,
                "admitted_total": self._admitted_total,
                "shed_total": self._shed_total,
                "closed": self._closed,
            }


# ----------------------------------------------------------------------
# QoS tiers
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TierPolicy:
    """Admission policy for one named QoS lane.

    priority:
        Smaller numbers are more important; priority-0 waiters are
        admitted before any freed slot reaches a lower lane.
    max_inflight:
        Concurrent requests this tier may hold (its share of the gate's
        ``max_total`` pool; the sum may over-commit — the pool is the
        hard bound, the per-tier cap limits how much of it one class of
        work can monopolize).
    max_queue / queue_timeout_s:
        Bounded wait replacing an instant 503: up to ``max_queue``
        requests wait up to ``queue_timeout_s`` for a slot before they
        are shed.
    retry_after_s:
        Client backoff hint (``Retry-After``) when this tier sheds.
    deadline_s:
        Per-request time budget for this tier (``None`` = the server
        default); the serving layer maps overruns to 504.
    brownout_sheddable:
        Whether a brownout controller may stop admitting this tier
        entirely while the server degrades (bulk lanes, not interactive
        ones).
    """

    name: str
    priority: int
    max_inflight: int
    max_queue: int = 0
    queue_timeout_s: float = DEFAULT_QUEUE_TIMEOUT_S
    retry_after_s: float = 1.0
    deadline_s: Optional[float] = None
    brownout_sheddable: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tier name must be non-empty")
        if self.max_inflight < 1:
            raise ValueError(
                "tier %r max_inflight must be >= 1, got %r"
                % (self.name, self.max_inflight)
            )
        if self.max_queue < 0:
            raise ValueError(
                "tier %r max_queue must be >= 0, got %r"
                % (self.name, self.max_queue)
            )


def default_tiers(
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    bulk_max_inflight: Optional[int] = None,
    standard_queue: int = 32,
    request_deadline_s: Optional[float] = None,
) -> Tuple[TierPolicy, ...]:
    """The stock three-lane layout over a ``max_inflight`` slot pool.

    * ``interactive`` — full pool access, a short queue, fast shed;
      point lookups a cost optimizer is blocking on.
    * ``standard`` — most of the pool, a real bounded-wait queue (mid
      tier work queues briefly instead of bouncing off a 503).
    * ``bulk`` — a quarter of the pool, nearly no queue, a long
      ``Retry-After``; batch estimation that should soak idle capacity
      only, and the first thing a brownout stops admitting.
    """
    bulk = bulk_max_inflight if bulk_max_inflight is not None else max(
        1, max_inflight // 4
    )
    return (
        TierPolicy(
            INTERACTIVE_TIER,
            priority=0,
            max_inflight=max_inflight,
            max_queue=max(4, max_inflight // 4),
            queue_timeout_s=0.25,
            retry_after_s=0.5,
            deadline_s=request_deadline_s,
        ),
        TierPolicy(
            STANDARD_TIER,
            priority=1,
            max_inflight=max(1, (max_inflight * 3) // 4),
            max_queue=standard_queue,
            queue_timeout_s=1.0,
            retry_after_s=1.0,
            deadline_s=request_deadline_s,
        ),
        TierPolicy(
            BULK_TIER,
            priority=2,
            max_inflight=min(bulk, max_inflight),
            max_queue=2,
            queue_timeout_s=0.05,
            retry_after_s=2.0,
            deadline_s=request_deadline_s,
            brownout_sheddable=True,
        ),
    )


class TieredAdmissionGate:
    """Priority-laned admission over one shared slot pool.

    The same contract as :class:`AdmissionGate` — ``enter``/``leave``
    pairing, ``close``/``drain`` lifecycle, :class:`OverloadedError` on
    shed — with a tier name threaded through.  ``enter()`` without a
    tier uses ``default_tier`` so flat call sites keep working.

    Priority semantics:

    * a request is admitted when the pool has a slot, its tier is under
      its own cap, **and** no strictly-higher-priority request that
      could take a pool slot is waiting;
    * freed slots therefore reach queued interactive work before queued
      bulk work, regardless of arrival order;
    * :meth:`checkpoint` lets an *admitted* long request (a bulk batch
      between queries) yield its slot to waiting higher-priority work
      and re-acquire afterwards — cooperative preemption without
      killing in-flight work.  On timeout/shutdown the slot is retaken
      regardless (bounded oversubscription) so an admitted request
      never fails mid-flight at the gate; per-request deadlines bound
      the total wait.
    """

    def __init__(
        self,
        tiers: Optional[Iterable[TierPolicy]] = None,
        max_total: int = DEFAULT_MAX_INFLIGHT,
        default_tier: Optional[str] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        policies = tuple(tiers) if tiers is not None else default_tiers(max_total)
        if not policies:
            raise ValueError("at least one TierPolicy is required")
        if max_total < 1:
            raise ValueError("max_total must be >= 1, got %r" % (max_total,))
        names = [policy.name for policy in policies]
        if len(set(names)) != len(names):
            raise ValueError("duplicate tier names: %r" % (names,))
        # Kept sorted most-important-first; `_waiting_above` walks it.
        self._policies: Tuple[TierPolicy, ...] = tuple(
            sorted(policies, key=lambda p: p.priority)
        )
        self._by_name: Dict[str, TierPolicy] = {p.name: p for p in self._policies}
        self.max_total = max_total
        self.default_tier = (
            default_tier if default_tier is not None else self._policies[0].name
        )
        if self.default_tier not in self._by_name:
            raise ValueError("default tier %r is not a tier" % (self.default_tier,))
        self._clock = clock
        self._condition = threading.Condition(threading.Lock())
        self._inflight: Dict[str, int] = {name: 0 for name in self._by_name}
        self._queued: Dict[str, int] = {name: 0 for name in self._by_name}
        self._admitted: Dict[str, int] = {name: 0 for name in self._by_name}
        self._shed: Dict[str, int] = {name: 0 for name in self._by_name}
        self._yields: Dict[str, int] = {name: 0 for name in self._by_name}
        self._shed_tiers: FrozenSet[str] = frozenset()
        self._closed = False

    # -- introspection helpers (names, policies) -----------------------

    @property
    def tier_names(self) -> Tuple[str, ...]:
        return tuple(policy.name for policy in self._policies)

    def policy(self, tier: Optional[str] = None) -> TierPolicy:
        return self._by_name[tier if tier is not None else self.default_tier]

    def brownout_sheddable_tiers(self) -> Tuple[str, ...]:
        return tuple(
            policy.name for policy in self._policies if policy.brownout_sheddable
        )

    # -- admission -----------------------------------------------------

    def _resolve(self, tier: Optional[str]) -> TierPolicy:
        name = tier if tier is not None else self.default_tier
        try:
            return self._by_name[name]
        except KeyError:
            raise ValueError(
                "unknown tier %r (have %s)" % (name, ", ".join(self.tier_names))
            )

    def _total_inflight_locked(self) -> int:
        return sum(self._inflight.values())

    def _waiting_above_locked(self, priority: int) -> bool:
        """A higher-priority request is queued *and could take a pool
        slot* (its own lane is not the bottleneck)."""
        for policy in self._policies:
            if policy.priority >= priority:
                return False
            if (
                self._queued[policy.name] > 0
                and self._inflight[policy.name] < policy.max_inflight
            ):
                return True
        return False

    def _admittable_locked(self, policy: TierPolicy) -> bool:
        return (
            self._total_inflight_locked() < self.max_total
            and self._inflight[policy.name] < policy.max_inflight
            and not self._waiting_above_locked(policy.priority)
        )

    def enter(self, tier: Optional[str] = None) -> str:
        """Claim a slot on ``tier``'s lane (or raise
        :class:`OverloadedError`); returns the resolved tier name to pass
        back to :meth:`leave`."""
        policy = self._resolve(tier)
        name = policy.name
        with self._condition:
            if self._closed:
                self._shed[name] += 1
                raise OverloadedError(
                    "server is shutting down",
                    policy.retry_after_s,
                    reason="closing",
                    tier=name,
                )
            if name in self._shed_tiers:
                self._shed[name] += 1
                raise OverloadedError(
                    "tier %r is browned out (overload degradation active)" % name,
                    policy.retry_after_s,
                    reason="brownout",
                    tier=name,
                )
            if self._admittable_locked(policy):
                self._inflight[name] += 1
                self._admitted[name] += 1
                return name
            if self._queued[name] >= policy.max_queue:
                self._shed[name] += 1
                raise OverloadedError(
                    "tier %r at capacity (%d in flight, %d queued)"
                    % (name, self._inflight[name], self._queued[name]),
                    policy.retry_after_s,
                    tier=name,
                )
            # Bounded wait for a slot, priority-ordered on wake-up.
            self._queued[name] += 1
            try:
                deadline = self._clock() + policy.queue_timeout_s
                while not self._closed and not self._admittable_locked(policy):
                    budget = deadline - self._clock()
                    if budget <= 0 or not self._condition.wait(timeout=budget):
                        break
                if self._closed or not self._admittable_locked(policy):
                    self._shed[name] += 1
                    raise OverloadedError(
                        "tier %r at capacity (queued %.0fms without a slot)"
                        % (name, policy.queue_timeout_s * 1000.0),
                        policy.retry_after_s,
                        reason="closing" if self._closed else "capacity",
                        tier=name,
                    )
                self._inflight[name] += 1
                self._admitted[name] += 1
                return name
            finally:
                self._queued[name] -= 1
                # A shed waiter may have been the reason lower-priority
                # waiters held back; let them re-check.
                self._condition.notify_all()

    def leave(self, tier: Optional[str] = None) -> None:
        name = self._resolve(tier).name
        with self._condition:
            self._inflight[name] -= 1
            self._condition.notify_all()

    def checkpoint(self, tier: Optional[str] = None, max_wait_s: float = 5.0) -> bool:
        """Cooperative mid-request preemption point.

        Called by an *admitted* request between units of work (a bulk
        batch between queries).  If no higher-priority work is waiting
        this is one lock acquire and returns ``False``.  Otherwise the
        slot is released, waiting work is admitted, and this request
        re-acquires — after at most ``max_wait_s`` it retakes the slot
        unconditionally (never fails).  Returns ``True`` when it
        yielded.
        """
        policy = self._resolve(tier)
        name = policy.name
        with self._condition:
            if self._closed or not self._waiting_above_locked(policy.priority):
                return False
            self._inflight[name] -= 1
            self._yields[name] += 1
            self._queued[name] += 1
            self._condition.notify_all()
            try:
                deadline = self._clock() + max_wait_s
                while not self._closed and not self._reacquirable_locked(policy):
                    budget = deadline - self._clock()
                    if budget <= 0 or not self._condition.wait(timeout=budget):
                        break
            finally:
                self._queued[name] -= 1
                # Retake the slot no matter what: an admitted request is
                # never shed at a checkpoint (oversubscription is bounded
                # by the number of concurrently yielded requests).
                self._inflight[name] += 1
            return True

    def _reacquirable_locked(self, policy: TierPolicy) -> bool:
        """Like admittable, but exempt from queue-depth limits (the
        request was already admitted once)."""
        return (
            self._total_inflight_locked() < self.max_total
            and self._inflight[policy.name] < policy.max_inflight
            and not self._waiting_above_locked(policy.priority)
        )

    # -- brownout ------------------------------------------------------

    def set_shed_tiers(self, tiers: Iterable[str]) -> None:
        """Administratively stop admitting the named tiers (brownout);
        pass an empty iterable to restore them."""
        names = frozenset(tiers)
        unknown = names - set(self._by_name)
        if unknown:
            raise ValueError("unknown tier(s): %s" % ", ".join(sorted(unknown)))
        with self._condition:
            self._shed_tiers = names
            self._condition.notify_all()

    @property
    def shed_tiers(self) -> FrozenSet[str]:
        with self._condition:
            return self._shed_tiers

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    def drain(self, timeout_s: Optional[float] = None) -> bool:
        deadline = None if timeout_s is None else self._clock() + timeout_s
        with self._condition:
            while self._total_inflight_locked() > 0:
                budget = None if deadline is None else deadline - self._clock()
                if budget is not None and budget <= 0:
                    return False
                self._condition.wait(timeout=budget)
            return True

    # -- introspection -------------------------------------------------

    @property
    def inflight(self) -> int:
        with self._condition:
            return self._total_inflight_locked()

    @property
    def shed_total(self) -> int:
        with self._condition:
            return sum(self._shed.values())

    @property
    def admitted_total(self) -> int:
        with self._condition:
            return sum(self._admitted.values())

    @property
    def closed(self) -> bool:
        with self._condition:
            return self._closed

    def stats(self) -> dict:
        """Superset of :meth:`AdmissionGate.stats`: the flat keys report
        pool-wide totals, ``tiers`` breaks them down per lane."""
        with self._condition:
            tiers = {
                policy.name: {
                    "priority": policy.priority,
                    "inflight": self._inflight[policy.name],
                    "queued": self._queued[policy.name],
                    "max_inflight": policy.max_inflight,
                    "max_queue": policy.max_queue,
                    "admitted_total": self._admitted[policy.name],
                    "shed_total": self._shed[policy.name],
                    "yields_total": self._yields[policy.name],
                    "browned_out": policy.name in self._shed_tiers,
                }
                for policy in self._policies
            }
            return {
                "inflight": self._total_inflight_locked(),
                "queued": sum(self._queued.values()),
                "max_inflight": self.max_total,
                "admitted_total": sum(self._admitted.values()),
                "shed_total": sum(self._shed.values()),
                "closed": self._closed,
                "tiers": tiers,
            }
