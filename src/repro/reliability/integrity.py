"""Snapshot integrity primitives: CRC32 checksums and atomic file writes.

Synopsis snapshots are rewritten underneath a serving daemon (hot
reload), so two failure modes are routine, not exotic: a *partial* write
observed mid-rename, and silent corruption of bytes at rest.  The two
helpers here close both holes:

* :func:`checksum_text` / :func:`checksum_payload` — CRC32 rendered as
  ``"crc32:%08x"``, the checksum format embedded in snapshot envelopes
  (CRC32 is plenty for torn/truncated-write detection and is stdlib);
* :func:`atomic_write_text` — write to a same-directory temp file,
  flush + fsync, then :func:`os.replace`, so readers only ever observe
  the old bytes or the complete new bytes, never a prefix.

Both write stages are fault-injection points (``"persist.write"``
transforms the text — truncation faults use it — and
``"persist.replace"`` fires just before the rename), so the test suite
can produce torn snapshots deterministically.
"""

from __future__ import annotations

import json
import os
import tempfile
import zlib
from typing import Any, Dict

from repro.reliability import faults

CHECKSUM_PREFIX = "crc32:"


def checksum_text(text: str) -> str:
    """``"crc32:%08x"`` of the UTF-8 bytes of ``text``."""
    return "%s%08x" % (CHECKSUM_PREFIX, zlib.crc32(text.encode("utf-8")))


def checksum_payload(payload: Dict[str, Any]) -> str:
    """Checksum of a JSON payload under its canonical rendering.

    Canonical = ``json.dumps(payload, sort_keys=True)`` with default
    separators; both the writer and the verifier render the same dict to
    the same string, so the checksum survives re-indentation and key
    reordering of the file on disk.
    """
    return checksum_text(json.dumps(payload, sort_keys=True))


def verify_payload(payload: Dict[str, Any], expected: str) -> bool:
    """Does ``payload`` hash to ``expected``?  (Unknown schemes fail.)"""
    if not expected.startswith(CHECKSUM_PREFIX):
        return False
    return checksum_payload(payload) == expected


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` so readers never see a partial file.

    The temp file lives in the destination directory (``os.replace`` must
    not cross filesystems) and is fsynced before the rename; on any
    failure the temp file is removed and the destination is untouched.
    """
    text = faults.fire("persist.write", text)
    directory = os.path.dirname(os.path.abspath(path))
    descriptor, temp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        faults.fire("persist.replace")
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
