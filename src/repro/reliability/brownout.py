"""Brownout: graceful degradation under sustained overload.

A saturated server has two bad options — keep doing everything slowly,
or fall over.  Brownout is the third: shed *optional* work first, in a
fixed order, and advertise the degraded state so operators and load
balancers can see it.  The degradation ladder here:

* **level 0 — ``ok``**: everything on.
* **level 1 — ``shed_observability``**: per-request tracing and
  slow-query logging are suspended (they cost allocations and lock
  traffic exactly when the server can least afford them); estimates are
  unaffected.
* **level 2 — ``shed_bulk``**: additionally, brownout-sheddable tiers
  (bulk batch estimation) stop being admitted at all, reserving the
  whole slot pool for interactive/standard work.

:class:`BrownoutController` is a pure, clock-injectable state machine.
The serving layer calls :meth:`record` with the outcome of every
admission attempt (``shed=True`` for *capacity* sheds only — brownout
sheds and shutdown sheds are policy outcomes, not pressure, and feeding
them back would latch the brownout on forever).  Pressure is the shed
fraction over a sliding window; escalation requires the breach to be
*sustained* (``dwell_s``) and recovery requires calm to be sustained
(``cooloff_s``), so a single burst neither trips nor clears it.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Dict, Optional, Tuple

__all__ = ["BrownoutController", "BROWNOUT_STATES"]

#: level -> advertised state string (wire + /healthz stable values).
BROWNOUT_STATES: Tuple[str, ...] = ("ok", "shed_observability", "shed_bulk")


class BrownoutController:
    """Sliding-window overload detector with hysteresis.

    enter_threshold / escalate_threshold:
        Shed fraction that (sustained for ``dwell_s``) moves the level
        to 1 / 2 respectively.
    exit_threshold:
        Shed fraction below which (sustained for ``cooloff_s``) the
        level steps back down one notch.
    min_events:
        Admission attempts the window must hold before any fraction is
        trusted (a lone early shed is not 100% overload).
    """

    def __init__(
        self,
        window_s: float = 5.0,
        enter_threshold: float = 0.10,
        escalate_threshold: float = 0.30,
        exit_threshold: float = 0.02,
        dwell_s: float = 1.0,
        cooloff_s: float = 3.0,
        min_events: int = 20,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not 0.0 < enter_threshold <= escalate_threshold <= 1.0:
            raise ValueError(
                "need 0 < enter_threshold <= escalate_threshold <= 1, got %r / %r"
                % (enter_threshold, escalate_threshold)
            )
        if not 0.0 <= exit_threshold < enter_threshold:
            raise ValueError(
                "need 0 <= exit_threshold < enter_threshold, got %r"
                % (exit_threshold,)
            )
        self.window_s = window_s
        self.enter_threshold = enter_threshold
        self.escalate_threshold = escalate_threshold
        self.exit_threshold = exit_threshold
        self.dwell_s = dwell_s
        self.cooloff_s = cooloff_s
        self.min_events = max(1, min_events)
        self._clock = clock
        self._lock = threading.Lock()
        # (timestamp, shed) admission outcomes inside the window.
        self._events: "deque[Tuple[float, bool]]" = deque()
        self._shed_in_window = 0
        self._level = 0
        self._breach_since: Optional[float] = None
        self._clear_since: Optional[float] = None
        self._transitions = 0

    # ------------------------------------------------------------------

    def _trim_locked(self, now: float) -> None:
        horizon = now - self.window_s
        events = self._events
        while events and events[0][0] < horizon:
            _, shed = events.popleft()
            if shed:
                self._shed_in_window -= 1

    def _fraction_locked(self) -> float:
        total = len(self._events)
        if total < self.min_events:
            return 0.0
        return self._shed_in_window / total

    def record(self, shed: bool) -> int:
        """Record one admission outcome; returns the (possibly changed)
        level.  ``shed`` must be True only for capacity sheds."""
        now = self._clock()
        with self._lock:
            self._events.append((now, shed))
            if shed:
                self._shed_in_window += 1
            self._trim_locked(now)
            fraction = self._fraction_locked()

            # Escalation: breach of the *next* level's threshold,
            # sustained for dwell_s.  One level per dwell period.
            next_threshold = (
                self.enter_threshold if self._level == 0 else self.escalate_threshold
            )
            if self._level < 2 and fraction >= next_threshold:
                if self._breach_since is None:
                    self._breach_since = now
                elif now - self._breach_since >= self.dwell_s:
                    self._level += 1
                    self._transitions += 1
                    self._breach_since = None
            else:
                self._breach_since = None

            # Recovery: calm below exit_threshold sustained for
            # cooloff_s steps down one level at a time.
            if self._level > 0 and fraction <= self.exit_threshold:
                if self._clear_since is None:
                    self._clear_since = now
                elif now - self._clear_since >= self.cooloff_s:
                    self._level -= 1
                    self._transitions += 1
                    self._clear_since = None
            else:
                self._clear_since = None
            return self._level

    # ------------------------------------------------------------------

    @property
    def level(self) -> int:
        with self._lock:
            return self._level

    @property
    def state(self) -> str:
        return BROWNOUT_STATES[self.level]

    def allows_tracing(self) -> bool:
        return self.level < 1

    def allows_slowlog(self) -> bool:
        return self.level < 1

    def allows_bulk(self) -> bool:
        return self.level < 2

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            self._trim_locked(self._clock())
            return {
                "state": BROWNOUT_STATES[self._level],
                "level": self._level,
                "shed_fraction": round(self._fraction_locked(), 4),
                "window_events": len(self._events),
                "transitions_total": self._transitions,
            }
