"""Reliability subsystem: the system's answer to a fault-full world.

The serving and build layers assume snapshots can be torn, workers can
die, handlers can stall and clients can stampede — and keep producing
correct estimates anyway.  This package holds the shared primitives:

* :mod:`repro.reliability.policy` — :class:`Deadline` time budgets and
  :class:`RetryPolicy` exponential backoff (used by the service client
  and the build supervisor);
* :mod:`repro.reliability.breaker` — a consecutive-failure
  :class:`CircuitBreaker` with timed half-open probes;
* :mod:`repro.reliability.shedding` — :class:`AdmissionGate`: bounded
  in-flight concurrency, load shedding with ``Retry-After``, graceful
  drain for shutdown; :class:`TieredAdmissionGate` adds named QoS lanes
  (:class:`TierPolicy`) with priority-ordered admission and cooperative
  mid-request preemption;
* :mod:`repro.reliability.brownout` — :class:`BrownoutController`:
  sustained-overload detection with hysteresis driving staged
  degradation (shed tracing/slowlog first, then bulk admission);
* :mod:`repro.reliability.integrity` — CRC32 snapshot checksums and
  atomic temp-file+rename writes;
* :mod:`repro.reliability.faults` — the deterministic fault-injection
  harness behind ``tests/reliability/`` (IO errors, truncated snapshots,
  slow handlers, crashed pool workers).

See docs/OPERATIONS.md for the operator-facing runbook: failure modes,
degraded-health semantics and tuning guidance.
"""

from repro.errors import ReliabilityError
from repro.reliability.breaker import CircuitBreaker, CircuitOpenError
from repro.reliability.brownout import BROWNOUT_STATES, BrownoutController
from repro.reliability.policy import (
    DEFAULT_RETRY_POLICY,
    NO_RETRY,
    Deadline,
    DeadlineExceededError,
    RetryPolicy,
)
from repro.reliability.shedding import (
    BULK_TIER,
    INTERACTIVE_TIER,
    STANDARD_TIER,
    AdmissionGate,
    OverloadedError,
    TieredAdmissionGate,
    TierPolicy,
    default_tiers,
)

__all__ = [
    "AdmissionGate",
    "BROWNOUT_STATES",
    "BULK_TIER",
    "BrownoutController",
    "CircuitBreaker",
    "CircuitOpenError",
    "DEFAULT_RETRY_POLICY",
    "Deadline",
    "DeadlineExceededError",
    "INTERACTIVE_TIER",
    "NO_RETRY",
    "OverloadedError",
    "ReliabilityError",
    "RetryPolicy",
    "STANDARD_TIER",
    "TieredAdmissionGate",
    "TierPolicy",
    "default_tiers",
]
