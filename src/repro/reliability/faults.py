"""Deterministic fault injection for the reliability test suite.

Production code is sprinkled with cheap *fault points* —
``faults.fire("persist.write", text)`` — that are no-ops (one global
read) unless a :class:`FaultInjector` is installed with
:func:`inject`.  An injector carries *plans*: per-site fault objects that
fire on a deterministic schedule (the first ``times`` matching calls,
every ``every``-th call) and either raise, delay, or transform the
payload flowing through the point.  No randomness anywhere — a test that
plans "fail the first two writes" sees exactly the first two writes fail,
on every run, on every platform.

Sites currently wired in::

    persist.write      payload = snapshot text about to be written
    persist.replace    fired just before the atomic rename
    registry.load      fired before a snapshot file is read for (re)load
    server.handle      fired at the top of every estimate request
    build.scan         fired at the start of every in-process shard scan

Pool workers live in other processes, where the in-process injector is
invisible; :func:`worker_faults` covers them with an environment-variable
plan plus an exclusive-create marker directory, so "crash the first N
worker scans" is exact even across ``fork``/``spawn`` and across retries.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple, Type


class Fault:
    """One planned fault: schedule (``times``/``every``) plus an effect.

    ``times=None`` never exhausts; ``every=k`` fires on the k-th, 2k-th,
    ... matching call of the site (1-based).  Subclasses override
    :meth:`apply`, which runs *outside* the injector lock (it may sleep).
    """

    def __init__(self, times: Optional[int] = 1, every: int = 1):
        if every < 1:
            raise ValueError("every must be >= 1, got %r" % (every,))
        self.times = times
        self.every = every
        self.fired = 0

    def matches(self, call_number: int) -> bool:
        """(Holding the injector lock.)  Claim this call if scheduled."""
        if self.times is not None and self.fired >= self.times:
            return False
        if call_number % self.every != 0:
            return False
        self.fired += 1
        return True

    def apply(self, payload: Any) -> Any:
        return payload


class FailFault(Fault):
    """Raise ``exc_type(*args)`` — a fresh instance per firing."""

    def __init__(
        self,
        exc_type: Type[BaseException] = OSError,
        *args: Any,
        times: Optional[int] = 1,
        every: int = 1,
    ):
        super().__init__(times=times, every=every)
        self.exc_type = exc_type
        self.args = args or ("injected fault",)

    def apply(self, payload: Any) -> Any:
        raise self.exc_type(*self.args)


class DelayFault(Fault):
    """Sleep ``delay_s`` (a slow disk, a stalled handler, a long GC)."""

    def __init__(self, delay_s: float, times: Optional[int] = 1, every: int = 1):
        super().__init__(times=times, every=every)
        self.delay_s = delay_s

    def apply(self, payload: Any) -> Any:
        time.sleep(self.delay_s)
        return payload


class TruncateFault(Fault):
    """Keep only a prefix of a str/bytes payload (a torn write)."""

    def __init__(self, keep: int, times: Optional[int] = 1, every: int = 1):
        super().__init__(times=times, every=every)
        self.keep = keep

    def apply(self, payload: Any) -> Any:
        if payload is None:
            return payload
        return payload[: self.keep]


class CorruptFault(Fault):
    """Flip a byte in the middle of a str payload (silent corruption)."""

    def apply(self, payload: Any) -> Any:
        if not payload:
            return payload
        middle = len(payload) // 2
        flipped = chr((ord(payload[middle]) ^ 0x01) or 0x31)
        return payload[:middle] + flipped + payload[middle + 1 :]


class FaultInjector:
    """Site → planned faults, with per-site call counting (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._plans: Dict[str, List[Fault]] = {}
        self._calls: Dict[str, int] = {}
        self.log: List[Tuple[str, int, str]] = []  # (site, call#, fault class)

    def plan(self, site: str, fault: Fault) -> "FaultInjector":
        with self._lock:
            self._plans.setdefault(site, []).append(fault)
        return self

    def fire(self, site: str, payload: Any = None) -> Any:
        with self._lock:
            number = self._calls.get(site, 0) + 1
            self._calls[site] = number
            due = [
                fault
                for fault in self._plans.get(site, ())
                if fault.matches(number)
            ]
            for fault in due:
                self.log.append((site, number, type(fault).__name__))
        # Effects run unlocked: a DelayFault must not serialize the world.
        for fault in due:
            payload = fault.apply(payload)
        return payload

    def calls(self, site: str) -> int:
        with self._lock:
            return self._calls.get(site, 0)

    def fired(self, site: str) -> int:
        with self._lock:
            return sum(1 for logged_site, _, _ in self.log if logged_site == site)


#: The process-wide active injector (None = every fault point is a no-op).
_active: Optional[FaultInjector] = None


def fire(site: str, payload: Any = None) -> Any:
    """The production-side fault point: free when nothing is injected."""
    injector = _active
    if injector is None:
        return payload
    return injector.fire(site, payload)


@contextmanager
def inject(injector: Optional[FaultInjector] = None) -> Iterator[FaultInjector]:
    """Install ``injector`` (or a fresh one) for the duration of a block."""
    global _active
    if injector is None:
        injector = FaultInjector()
    previous = _active
    _active = injector
    try:
        yield injector
    finally:
        _active = previous


# ----------------------------------------------------------------------
# Cross-process worker faults
# ----------------------------------------------------------------------

#: Environment plan consumed by pool workers (inherited by fork *and*
#: spawn children).  JSON: {"dir", "kind", "times", "delay_s"}.
WORKER_FAULT_ENV = "REPRO_WORKER_FAULTS"

#: Exit code of a deliberately crashed worker (distinguishable from a
#: Python traceback's exit 1 when debugging the supervisor).
WORKER_CRASH_EXIT = 3


@contextmanager
def worker_faults(
    kind: str = "crash", times: int = 1, delay_s: float = 0.0
) -> Iterator[str]:
    """Plan faults inside pool worker processes for the enclosed block.

    ``kind="crash"`` hard-kills the worker (``os._exit``) at the top of a
    shard scan; ``kind="delay"`` sleeps ``delay_s`` there instead (a hung
    worker, from the supervisor's point of view).  Exactly ``times``
    scans fault, fleet-wide: each firing claims a marker file with
    ``O_CREAT | O_EXCL``, which is atomic across processes.
    """
    if kind not in ("crash", "delay"):
        raise ValueError("unknown worker fault kind %r" % (kind,))
    directory = tempfile.mkdtemp(prefix="repro-worker-faults-")
    spec = json.dumps(
        {"dir": directory, "kind": kind, "times": times, "delay_s": delay_s}
    )
    previous = os.environ.get(WORKER_FAULT_ENV)
    os.environ[WORKER_FAULT_ENV] = spec
    try:
        yield directory
    finally:
        if previous is None:
            os.environ.pop(WORKER_FAULT_ENV, None)
        else:
            os.environ[WORKER_FAULT_ENV] = previous
        try:
            for name in os.listdir(directory):
                os.unlink(os.path.join(directory, name))
            os.rmdir(directory)
        except OSError:
            pass


def worker_fault_point() -> None:
    """Called by every shard scan; faults if an environment plan says so."""
    spec = os.environ.get(WORKER_FAULT_ENV)
    if not spec:
        return
    try:
        config = json.loads(spec)
        directory = config["dir"]
        times = int(config["times"])
    except (ValueError, KeyError, TypeError):
        return
    for index in range(times):
        marker = os.path.join(directory, "fired-%d" % index)
        try:
            descriptor = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except (FileExistsError, OSError):
            continue
        os.close(descriptor)
        if config.get("kind") == "crash":
            os._exit(WORKER_CRASH_EXIT)
        time.sleep(float(config.get("delay_s", 0.0)))
        return
