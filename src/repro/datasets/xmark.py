"""XMark stand-in generator.

XMark (the auction-site XML benchmark) is the structurally richest of the
paper's datasets: 74 distinct tags and — crucially — recursive rich-text
(``text`` with ``bold``/``keyword``/``emph``) and ``parlist``/``listitem``
descriptions, which multiply the number of distinct root-to-leaf paths
(Table 3: 344 distinct paths, 6,811 distinct path ids for the paper's
20 MB instance).  Long path ids are what make the path-id binary tree
compression pay off.

The generator emits the full 74-tag inventory of the XMark DTD and keeps
the recursion (bounded depth) so a scaled instance still has hundreds of
distinct paths.
"""

from __future__ import annotations

import random
from typing import List

from repro.datasets._text import person_name, sentence, title_text, words
from repro.xmltree.builder import el
from repro.xmltree.document import XmlDocument
from repro.xmltree.node import XmlNode

XMARK_TAGS = frozenset(
    [
        "site", "categories", "category", "name", "description", "text",
        "bold", "keyword", "emph", "parlist", "listitem", "catgraph", "edge",
        "regions", "africa", "asia", "australia", "europe", "namerica",
        "samerica", "item", "location", "quantity", "payment", "shipping",
        "incategory", "mailbox", "mail", "from", "to", "date", "itemref",
        "personref", "people", "person", "emailaddress", "phone", "address",
        "street", "city", "country", "province", "zipcode", "homepage",
        "creditcard", "profile", "interest", "education", "gender",
        "business", "age", "watches", "watch", "open_auctions",
        "open_auction", "initial", "reserve", "bidder", "time", "increase",
        "current", "privacy", "seller", "annotation", "author", "happiness",
        "closed_auctions", "closed_auction", "buyer", "price", "type",
        "interval", "start", "end",
    ]
)

_REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")


def generate_xmark(scale: float = 1.0, seed: int = 23) -> XmlDocument:
    """Generate an XMark-like document.

    ``scale=1.0`` yields roughly 20k elements; counts grow linearly.
    """
    rng = random.Random(seed)
    site = el("site")
    site.append(_regions(rng, scale))
    site.append(_categories(rng, scale))
    site.append(_catgraph(rng, scale))
    site.append(_people(rng, scale))
    site.append(_open_auctions(rng, scale))
    site.append(_closed_auctions(rng, scale))
    return XmlDocument(site, name="xmark")


# ----------------------------------------------------------------------
# Rich text and descriptions (the recursion that multiplies paths)
# ----------------------------------------------------------------------


def _rich_text(rng: random.Random) -> XmlNode:
    """A ``text`` element with optional bold/keyword/emph markup children."""
    text = el("text", sentence(rng))
    for marker in ("bold", "keyword", "emph"):
        if rng.random() < 0.3:
            text.append(el(marker, words(rng, 1, 3)))
    return text


def _parlist(rng: random.Random, depth: int) -> XmlNode:
    parlist = el("parlist")
    for _ in range(rng.randint(1, 3)):
        item = el("listitem")
        if depth > 0 and rng.random() < 0.35:
            item.append(_parlist(rng, depth - 1))
        else:
            item.append(_rich_text(rng))
        parlist.append(item)
    return parlist


def _description(rng: random.Random) -> XmlNode:
    description = el("description")
    if rng.random() < 0.4:
        description.append(_parlist(rng, depth=2))
    else:
        description.append(_rich_text(rng))
    return description


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------


def _regions(rng: random.Random, scale: float) -> XmlNode:
    regions = el("regions")
    per_region = max(2, round(55 * scale))
    for region_tag in _REGIONS:
        region = el(region_tag)
        for _ in range(rng.randint(per_region // 2, per_region)):
            region.append(_item(rng))
        regions.append(region)
    return regions


def _item(rng: random.Random) -> XmlNode:
    item = el("item", attrs={"id": "item%d" % rng.randrange(10**6)})
    item.append(el("location", title_text(rng)))
    item.append(el("quantity", str(rng.randint(1, 5))))
    item.append(el("name", title_text(rng)))
    item.append(el("payment", words(rng, 1, 3)))
    item.append(_description(rng))
    item.append(el("shipping", words(rng, 2, 5)))
    for _ in range(rng.randint(1, 3)):
        item.append(el("incategory", attrs={"category": "category%d" % rng.randrange(500)}))
    if rng.random() < 0.6:
        mailbox = el("mailbox")
        for _ in range(rng.randint(1, 3)):
            mail = el("mail")
            mail.append(el("from", person_name(rng)))
            mail.append(el("to", person_name(rng)))
            mail.append(el("date", "%02d/%02d/%d" % (rng.randint(1, 12), rng.randint(1, 28), rng.randint(1998, 2001))))
            mail.append(_rich_text(rng))
            mailbox.append(mail)
        item.append(mailbox)
    return item


def _categories(rng: random.Random, scale: float) -> XmlNode:
    categories = el("categories")
    for _ in range(max(2, round(30 * scale))):
        category = el("category", attrs={"id": "category%d" % rng.randrange(500)})
        category.append(el("name", title_text(rng)))
        category.append(_description(rng))
        categories.append(category)
    return categories


def _catgraph(rng: random.Random, scale: float) -> XmlNode:
    catgraph = el("catgraph")
    for _ in range(max(2, round(50 * scale))):
        catgraph.append(
            el("edge", attrs={"from": "category%d" % rng.randrange(500),
                              "to": "category%d" % rng.randrange(500)})
        )
    return catgraph


def _people(rng: random.Random, scale: float) -> XmlNode:
    people = el("people")
    for _ in range(max(2, round(400 * scale))):
        people.append(_person(rng))
    return people


def _person(rng: random.Random) -> XmlNode:
    person = el("person", attrs={"id": "person%d" % rng.randrange(10**6)})
    person.append(el("name", person_name(rng)))
    person.append(el("emailaddress", "mailto:%s@example.org" % words(rng, 1, 1)))
    if rng.random() < 0.5:
        person.append(el("phone", "+%d (%d) %d" % (rng.randint(1, 99), rng.randint(10, 999), rng.randrange(10**7))))
    if rng.random() < 0.6:
        address = el("address")
        address.append(el("street", "%d %s St" % (rng.randint(1, 99), title_text(rng))))
        address.append(el("city", title_text(rng)))
        if rng.random() < 0.4:
            address.append(el("province", title_text(rng)))
        address.append(el("country", title_text(rng)))
        address.append(el("zipcode", str(rng.randrange(10**5))))
        person.append(address)
    if rng.random() < 0.3:
        person.append(el("homepage", "http://example.org/~%s" % words(rng, 1, 1)))
    if rng.random() < 0.4:
        person.append(el("creditcard", " ".join(str(rng.randrange(10**4)) for _ in range(4))))
    if rng.random() < 0.7:
        profile = el("profile", attrs={"income": str(rng.randint(10000, 100000))})
        for _ in range(rng.randint(0, 3)):
            profile.append(el("interest", attrs={"category": "category%d" % rng.randrange(500)}))
        if rng.random() < 0.6:
            profile.append(el("education", words(rng, 1, 2).title()))
        profile.append(el("gender", rng.choice(["male", "female"])))
        profile.append(el("business", rng.choice(["Yes", "No"])))
        profile.append(el("age", str(rng.randint(18, 80))))
        person.append(profile)
    if rng.random() < 0.4:
        watches = el("watches")
        for _ in range(rng.randint(1, 4)):
            watches.append(el("watch", attrs={"open_auction": "open_auction%d" % rng.randrange(10**4)}))
        person.append(watches)
    return person


def _open_auctions(rng: random.Random, scale: float) -> XmlNode:
    auctions = el("open_auctions")
    for _ in range(max(2, round(180 * scale))):
        auction = el("open_auction", attrs={"id": "open_auction%d" % rng.randrange(10**5)})
        auction.append(el("initial", "%.2f" % (rng.random() * 200)))
        if rng.random() < 0.5:
            auction.append(el("reserve", "%.2f" % (rng.random() * 400)))
        for _ in range(rng.randint(0, 4)):
            bidder = el("bidder")
            bidder.append(el("date", "%02d/%02d/2000" % (rng.randint(1, 12), rng.randint(1, 28))))
            bidder.append(el("time", "%02d:%02d:%02d" % (rng.randint(0, 23), rng.randint(0, 59), rng.randint(0, 59))))
            bidder.append(el("personref", attrs={"person": "person%d" % rng.randrange(10**4)}))
            bidder.append(el("increase", "%.2f" % (rng.random() * 20)))
            auction.append(bidder)
        auction.append(el("current", "%.2f" % (rng.random() * 500)))
        if rng.random() < 0.4:
            auction.append(el("privacy", rng.choice(["Yes", "No"])))
        auction.append(el("itemref", attrs={"item": "item%d" % rng.randrange(10**4)}))
        auction.append(el("seller", attrs={"person": "person%d" % rng.randrange(10**4)}))
        auction.append(_annotation(rng))
        auction.append(el("quantity", str(rng.randint(1, 5))))
        auction.append(el("type", rng.choice(["Regular", "Featured", "Dutch"])))
        interval = el("interval")
        interval.append(el("start", "%02d/%02d/2000" % (rng.randint(1, 6), rng.randint(1, 28))))
        interval.append(el("end", "%02d/%02d/2001" % (rng.randint(7, 12), rng.randint(1, 28))))
        auction.append(interval)
        auctions.append(auction)
    return auctions


def _annotation(rng: random.Random) -> XmlNode:
    annotation = el("annotation")
    annotation.append(el("author", attrs={"person": "person%d" % rng.randrange(10**4)}))
    annotation.append(_description(rng))
    if rng.random() < 0.5:
        annotation.append(el("happiness", str(rng.randint(1, 10))))
    return annotation


def _closed_auctions(rng: random.Random, scale: float) -> XmlNode:
    auctions = el("closed_auctions")
    for _ in range(max(2, round(120 * scale))):
        auction = el("closed_auction")
        auction.append(el("seller", attrs={"person": "person%d" % rng.randrange(10**4)}))
        auction.append(el("buyer", attrs={"person": "person%d" % rng.randrange(10**4)}))
        auction.append(el("itemref", attrs={"item": "item%d" % rng.randrange(10**4)}))
        auction.append(el("price", "%.2f" % (rng.random() * 500)))
        auction.append(el("date", "%02d/%02d/2001" % (rng.randint(1, 12), rng.randint(1, 28))))
        auction.append(el("quantity", str(rng.randint(1, 5))))
        auction.append(el("type", rng.choice(["Regular", "Featured"])))
        auction.append(_annotation(rng))
        auctions.append(auction)
    return auctions
