"""Synthetic datasets mirroring the paper's corpora (DESIGN.md §4).

The estimation system only consumes label paths, tag frequencies and
sibling order, so each generator is calibrated to reproduce those
distributions of its real counterpart:

* :func:`~repro.datasets.ssplays.generate_ssplays` — Shakespeare's Plays:
  21 distinct tags, few distinct paths, deep-ish narrow tree dominated by
  SPEECH/LINE runs.
* :func:`~repro.datasets.dblp.generate_dblp` — DBLP: 31 distinct tags,
  shallow and very wide (huge sibling groups under the root), which makes
  order information expensive — the property Figures 9 and 12 lean on.
* :func:`~repro.datasets.xmark.generate_xmark` — XMark auction site: 74
  distinct tags and recursive ``parlist``/``listitem`` descriptions that
  multiply distinct root-to-leaf paths, stressing path ids and the binary
  tree compression.

All generators are deterministic in ``seed`` and scale linearly in
``scale`` (``scale=1.0`` targets a few tens of thousands of elements so the
full benchmark suite runs in minutes in pure Python).
"""

from repro.datasets.dblp import generate_dblp
from repro.datasets.registry import (
    DATASET_NAMES,
    EXTENDED_DATASET_NAMES,
    dataset_stats_row,
    generate,
)
from repro.datasets.ssplays import generate_ssplays
from repro.datasets.temporal import generate_temporal
from repro.datasets.xmark import generate_xmark

__all__ = [
    "generate_ssplays",
    "generate_dblp",
    "generate_xmark",
    "generate_temporal",
    "generate",
    "DATASET_NAMES",
    "EXTENDED_DATASET_NAMES",
    "dataset_stats_row",
]
