"""Temporal XML generator (the paper's introduction motivation).

The introduction motivates order axes with "data with ordered time
domain (temporal XML)": documents whose sibling order *is* the time
axis.  This generator produces a contract repository where each contract
carries its revision history in chronological sibling order — queries
like "amendments after the signature" are order-axis queries by nature.

Not part of the paper's evaluation (Tables use SSPlays/DBLP/XMark); used
by examples and tests as the fourth, intro-motivated corpus.

Tag inventory (18): archive, contract, title, party, signed, revision,
author, date, summary, clause, amendment, term, witness, approval,
dispute, settlement, note, expiry.
"""

from __future__ import annotations

import random

from repro.datasets._text import person_name, sentence, title_text, words
from repro.xmltree.builder import el
from repro.xmltree.document import XmlDocument
from repro.xmltree.node import XmlNode

TEMPORAL_TAGS = frozenset(
    [
        "archive", "contract", "title", "party", "signed", "revision",
        "author", "date", "summary", "clause", "amendment", "term",
        "witness", "approval", "dispute", "settlement", "note", "expiry",
    ]
)


def generate_temporal(scale: float = 1.0, seed: int = 41) -> XmlDocument:
    """Generate a temporal contract archive.

    Sibling order within a contract is chronological: parties and the
    signature come first, then revisions in time order, then optional
    dispute/settlement, and finally the expiry.  ``scale=1.0`` yields
    roughly 10k elements.
    """
    rng = random.Random(seed)
    contracts = max(1, round(260 * scale))
    archive = el("archive")
    for _ in range(contracts):
        archive.append(_contract(rng))
    return XmlDocument(archive, name="temporal")


def _contract(rng: random.Random) -> XmlNode:
    contract = el("contract", attrs={"id": "c%d" % rng.randrange(10**6)})
    contract.append(el("title", title_text(rng)))
    for _ in range(rng.randint(2, 4)):
        contract.append(el("party", person_name(rng)))
    # The signature event: everything after it is "post-signing".
    signed = el("signed")
    signed.append(el("date", _date(rng, 2000, 2002)))
    for _ in range(rng.randint(0, 2)):
        signed.append(el("witness", person_name(rng)))
    contract.append(signed)
    # Chronologically ordered revisions.
    for year in range(2002, 2002 + rng.randint(1, 5)):
        contract.append(_revision(rng, year))
    if rng.random() < 0.2:
        dispute = el("dispute", el("date", _date(rng, 2006, 2007)), el("note", sentence(rng)))
        contract.append(dispute)
        if rng.random() < 0.7:
            contract.append(
                el("settlement", el("date", _date(rng, 2007, 2008)), el("note", sentence(rng)))
            )
    if rng.random() < 0.6:
        contract.append(el("expiry", _date(rng, 2009, 2012)))
    return contract


def _revision(rng: random.Random, year: int) -> XmlNode:
    revision = el("revision", attrs={"seq": str(year)})
    revision.append(el("date", "%d-%02d-%02d" % (year, rng.randint(1, 12), rng.randint(1, 28))))
    revision.append(el("author", person_name(rng)))
    if rng.random() < 0.6:
        revision.append(el("summary", sentence(rng)))
    for _ in range(rng.randint(1, 3)):
        clause = el("clause", el("term", words(rng, 2, 5)))
        if rng.random() < 0.4:
            clause.append(el("amendment", sentence(rng)))
        revision.append(clause)
    if rng.random() < 0.3:
        revision.append(el("approval", person_name(rng)))
    return revision


def _date(rng: random.Random, lo: int, hi: int) -> str:
    return "%d-%02d-%02d" % (rng.randint(lo, hi), rng.randint(1, 12), rng.randint(1, 28))
