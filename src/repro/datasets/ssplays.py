"""Shakespeare's Plays stand-in generator.

The real corpus (Jon Bosak's XML edition) has 21 distinct tags and 179,690
elements across 37 plays; its tree is regular — a play is front matter,
personae, then acts of scenes of speeches — and almost all mass sits in
SPEECH/SPEAKER/LINE runs.  Sibling order is meaningful (STAGEDIR
interleaves with LINEs; PROLOGUE precedes ACTs, EPILOGUE follows), which is
exactly the structure the order-axis workload probes.

Tag inventory (21): PLAYS, PLAY, TITLE, FM, P, PERSONAE, PERSONA, PGROUP,
GRPDESCR, SCNDESCR, PLAYSUBT, PROLOGUE, EPILOGUE, INDUCT, ACT, SCENE,
SPEECH, SPEAKER, LINE, STAGEDIR, SUBHEAD.
"""

from __future__ import annotations

import random

from repro.datasets._text import pick_count, sentence, title_text, words
from repro.xmltree.builder import el
from repro.xmltree.document import XmlDocument
from repro.xmltree.node import XmlNode

SSPLAYS_TAGS = frozenset(
    [
        "PLAYS", "PLAY", "TITLE", "FM", "P", "PERSONAE", "PERSONA", "PGROUP",
        "GRPDESCR", "SCNDESCR", "PLAYSUBT", "PROLOGUE", "EPILOGUE", "INDUCT",
        "ACT", "SCENE", "SPEECH", "SPEAKER", "LINE", "STAGEDIR", "SUBHEAD",
    ]
)


def generate_ssplays(scale: float = 1.0, seed: int = 7) -> XmlDocument:
    """Generate an SSPlays-like document.

    ``scale=1.0`` yields roughly 13k elements (10 plays); element counts
    grow linearly with ``scale``.
    """
    rng = random.Random(seed)
    plays = max(1, round(10 * scale))
    root = el("PLAYS")
    for _ in range(plays):
        root.append(_play(rng))
    return XmlDocument(root, name="ssplays")


def _play(rng: random.Random) -> XmlNode:
    play = el("PLAY")
    play.append(el("TITLE", title_text(rng)))
    fm = el("FM")
    for _ in range(rng.randint(2, 4)):
        fm.append(el("P", sentence(rng)))
    play.append(fm)
    play.append(_personae(rng))
    play.append(el("SCNDESCR", sentence(rng)))
    play.append(el("PLAYSUBT", title_text(rng)))
    if rng.random() < 0.3:
        play.append(_front_piece(rng, "INDUCT"))
    if rng.random() < 0.4:
        play.append(_front_piece(rng, "PROLOGUE"))
    for _ in range(5):
        play.append(_act(rng))
    if rng.random() < 0.4:
        play.append(_front_piece(rng, "EPILOGUE"))
    return play


def _personae(rng: random.Random) -> XmlNode:
    personae = el("PERSONAE", el("TITLE", "Dramatis Personae"))
    for _ in range(rng.randint(8, 18)):
        if rng.random() < 0.2:
            group = el("PGROUP")
            for _ in range(rng.randint(2, 4)):
                group.append(el("PERSONA", title_text(rng)))
            group.append(el("GRPDESCR", words(rng, 2, 5)))
            personae.append(group)
        else:
            personae.append(el("PERSONA", title_text(rng)))
    return personae


def _front_piece(rng: random.Random, tag: str) -> XmlNode:
    """A PROLOGUE/EPILOGUE/INDUCT: a title plus a short speech run."""
    piece = el(tag, el("TITLE", title_text(rng)))
    if rng.random() < 0.5:
        piece.append(el("STAGEDIR", sentence(rng)))
    for _ in range(rng.randint(1, 3)):
        piece.append(_speech(rng))
    return piece


def _act(rng: random.Random) -> XmlNode:
    act = el("ACT", el("TITLE", title_text(rng)))
    if rng.random() < 0.15:
        act.append(_front_piece(rng, "PROLOGUE"))
    for _ in range(rng.randint(2, 5)):
        act.append(_scene(rng))
    if rng.random() < 0.1:
        act.append(_front_piece(rng, "EPILOGUE"))
    return act


def _scene(rng: random.Random) -> XmlNode:
    scene = el("SCENE", el("TITLE", title_text(rng)))
    if rng.random() < 0.2:
        scene.append(el("SUBHEAD", title_text(rng)))
    scene.append(el("STAGEDIR", sentence(rng)))
    for _ in range(rng.randint(6, 14)):
        scene.append(_speech(rng))
        if rng.random() < 0.25:
            scene.append(el("STAGEDIR", sentence(rng)))
    return scene


def _speech(rng: random.Random) -> XmlNode:
    speech = el("SPEECH")
    for _ in range(1 + (rng.random() < 0.08)):
        speech.append(el("SPEAKER", title_text(rng)))
    line_count = 1 + pick_count(rng, [0, 4, 6, 5, 3, 2, 1, 1])
    for _ in range(line_count):
        speech.append(el("LINE", sentence(rng, 5, 9)))
        if rng.random() < 0.05:
            speech.append(el("STAGEDIR", words(rng, 2, 4)))
    return speech
