"""DBLP stand-in generator.

The real DBLP snapshot the paper used (65.2 MB, 31 distinct tags, 1.7M
elements) is the shallowest and widest of the three corpora: essentially
every element is a child of one of the eight publication records, and the
records themselves form one enormous sibling group under the root.  That
width is what makes DBLP's order information so much larger than its path
information (Figure 9(b) and the discussion in Section 7.1).

Tag inventory (31): dblp + 8 record types (article, inproceedings,
proceedings, book, incollection, phdthesis, mastersthesis, www) + 22
field tags (author, editor, title, booktitle, pages, year, address,
journal, volume, number, month, url, ee, cdrom, cite, publisher, note,
crossref, isbn, series, school, chapter).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

from repro.datasets._text import person_name, sentence, title_text, words, year
from repro.xmltree.builder import el
from repro.xmltree.document import XmlDocument
from repro.xmltree.node import XmlNode

RECORD_TYPES = (
    "article",
    "inproceedings",
    "proceedings",
    "book",
    "incollection",
    "phdthesis",
    "mastersthesis",
    "www",
)

FIELD_TAGS = (
    "author", "editor", "title", "booktitle", "pages", "year", "address",
    "journal", "volume", "number", "month", "url", "ee", "cdrom", "cite",
    "publisher", "note", "crossref", "isbn", "series", "school", "chapter",
)

DBLP_TAGS = frozenset(("dblp",) + RECORD_TYPES + FIELD_TAGS)

# Relative record-type mix, roughly DBLP-shaped (conferences and journals
# dominate).
_TYPE_WEIGHTS = {
    "article": 38,
    "inproceedings": 42,
    "proceedings": 4,
    "book": 3,
    "incollection": 6,
    "phdthesis": 2,
    "mastersthesis": 1,
    "www": 4,
}


def generate_dblp(scale: float = 1.0, seed: int = 11) -> XmlDocument:
    """Generate a DBLP-like document.

    ``scale=1.0`` yields roughly 30k elements (~3,400 records); counts grow
    linearly with ``scale``.
    """
    rng = random.Random(seed)
    records = max(1, round(3400 * scale))
    choices: List[str] = []
    for record_type, weight in _TYPE_WEIGHTS.items():
        choices.extend([record_type] * weight)
    root = el("dblp")
    for _ in range(records):
        record_type = rng.choice(choices)
        root.append(_BUILDERS[record_type](rng))
    return XmlDocument(root, name="dblp")


def _authors(rng: random.Random, record: XmlNode, low: int = 1, high: int = 4) -> None:
    for _ in range(rng.randint(low, high)):
        record.append(el("author", person_name(rng)))


def _common_tail(rng: random.Random, record: XmlNode) -> None:
    """Optional trailing fields shared by most record types."""
    if rng.random() < 0.7:
        record.append(el("ee", "db/%s.html" % words(rng, 1, 1)))
    if rng.random() < 0.3:
        record.append(el("url", "http://example.org/%s" % words(rng, 1, 1)))
    if rng.random() < 0.1:
        record.append(el("note", sentence(rng)))
    if rng.random() < 0.15:
        for _ in range(rng.randint(1, 3)):
            record.append(el("cite", words(rng, 1, 2)))
    if rng.random() < 0.05:
        record.append(el("cdrom", words(rng, 1, 1).upper()))


def _article(rng: random.Random) -> XmlNode:
    record = el("article", attrs={"key": "journals/x/%d" % rng.randrange(10**6)})
    _authors(rng, record)
    record.append(el("title", title_text(rng)))
    record.append(el("journal", title_text(rng)))
    record.append(el("volume", str(rng.randint(1, 60))))
    if rng.random() < 0.8:
        record.append(el("number", str(rng.randint(1, 12))))
    record.append(el("pages", "%d-%d" % (rng.randint(1, 400), rng.randint(401, 500))))
    record.append(el("year", year(rng)))
    if rng.random() < 0.2:
        record.append(el("month", words(rng, 1, 1).title()))
    _common_tail(rng, record)
    return record


def _inproceedings(rng: random.Random) -> XmlNode:
    record = el("inproceedings", attrs={"key": "conf/x/%d" % rng.randrange(10**6)})
    _authors(rng, record)
    record.append(el("title", title_text(rng)))
    record.append(el("booktitle", title_text(rng)))
    record.append(el("pages", "%d-%d" % (rng.randint(1, 400), rng.randint(401, 500))))
    record.append(el("year", year(rng)))
    if rng.random() < 0.6:
        record.append(el("crossref", "conf/x/%d" % rng.randrange(10**4)))
    _common_tail(rng, record)
    return record


def _proceedings(rng: random.Random) -> XmlNode:
    record = el("proceedings", attrs={"key": "conf/x/%d" % rng.randrange(10**6)})
    for _ in range(rng.randint(1, 3)):
        record.append(el("editor", person_name(rng)))
    record.append(el("title", title_text(rng)))
    record.append(el("booktitle", title_text(rng)))
    record.append(el("publisher", title_text(rng)))
    if rng.random() < 0.6:
        record.append(el("series", title_text(rng)))
    if rng.random() < 0.7:
        record.append(el("isbn", "%d-%d" % (rng.randrange(10**3), rng.randrange(10**6))))
    record.append(el("year", year(rng)))
    _common_tail(rng, record)
    return record


def _book(rng: random.Random) -> XmlNode:
    record = el("book", attrs={"key": "books/x/%d" % rng.randrange(10**6)})
    _authors(rng, record, 1, 3)
    record.append(el("title", title_text(rng)))
    record.append(el("publisher", title_text(rng)))
    if rng.random() < 0.5:
        record.append(el("isbn", "%d-%d" % (rng.randrange(10**3), rng.randrange(10**6))))
    record.append(el("year", year(rng)))
    _common_tail(rng, record)
    return record


def _incollection(rng: random.Random) -> XmlNode:
    record = el("incollection", attrs={"key": "books/x/%d" % rng.randrange(10**6)})
    _authors(rng, record)
    record.append(el("title", title_text(rng)))
    record.append(el("booktitle", title_text(rng)))
    record.append(el("pages", "%d-%d" % (rng.randint(1, 400), rng.randint(401, 500))))
    if rng.random() < 0.3:
        record.append(el("chapter", str(rng.randint(1, 20))))
    record.append(el("year", year(rng)))
    _common_tail(rng, record)
    return record


def _phdthesis(rng: random.Random) -> XmlNode:
    record = el("phdthesis", attrs={"key": "phd/x/%d" % rng.randrange(10**6)})
    _authors(rng, record, 1, 1)
    record.append(el("title", title_text(rng)))
    record.append(el("school", title_text(rng)))
    record.append(el("year", year(rng)))
    if rng.random() < 0.4:
        record.append(el("address", title_text(rng)))
    _common_tail(rng, record)
    return record


def _mastersthesis(rng: random.Random) -> XmlNode:
    record = el("mastersthesis", attrs={"key": "ms/x/%d" % rng.randrange(10**6)})
    _authors(rng, record, 1, 1)
    record.append(el("title", title_text(rng)))
    record.append(el("school", title_text(rng)))
    record.append(el("year", year(rng)))
    return record


def _www(rng: random.Random) -> XmlNode:
    record = el("www", attrs={"key": "www/x/%d" % rng.randrange(10**6)})
    _authors(rng, record, 1, 2)
    record.append(el("title", title_text(rng)))
    record.append(el("url", "http://example.org/%s" % words(rng, 1, 1)))
    return record


_BUILDERS: Dict[str, Callable[[random.Random], XmlNode]] = {
    "article": _article,
    "inproceedings": _inproceedings,
    "proceedings": _proceedings,
    "book": _book,
    "incollection": _incollection,
    "phdthesis": _phdthesis,
    "mastersthesis": _mastersthesis,
    "www": _www,
}
