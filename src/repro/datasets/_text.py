"""Shared text fabrication for the dataset generators.

Text content is never queried, but it makes serialized sizes (Table 1) and
parser benchmarks realistic.
"""

from __future__ import annotations

import random
from typing import List

_WORDS = (
    "the of and to a in that is was he for it with as his on be at by had "
    "not are but from or have an they which one you were her all she there "
    "would their we him been has when who will more no if out so said what "
    "up its about into than them can only other new some could time these "
    "two may then do first any my now such like our over man me even most"
).split()

_NAMES = (
    "Aaron Beatrice Cedric Dahlia Edmund Fiona Gareth Helena Ivo Jasmine "
    "Kenneth Lavinia Magnus Nerissa Osric Portia Quentin Rosalind Stefan "
    "Titania Ulric Viola Wystan Xenia Yorick Zenobia"
).split()


def words(rng: random.Random, low: int, high: int) -> str:
    """A space-joined run of common words."""
    count = rng.randint(low, high)
    return " ".join(rng.choice(_WORDS) for _ in range(count))


def sentence(rng: random.Random, low: int = 4, high: int = 12) -> str:
    text = words(rng, low, high)
    return text[:1].upper() + text[1:] + "."


def person_name(rng: random.Random) -> str:
    return "%s %s" % (rng.choice(_NAMES), rng.choice(_NAMES))


def title_text(rng: random.Random) -> str:
    return words(rng, 2, 6).title()


def year(rng: random.Random, low: int = 1936, high: int = 2005) -> str:
    return str(rng.randint(low, high))


def pick_count(rng: random.Random, weights: List[int]) -> int:
    """Draw an index-weighted small count: weights[i] = weight of count i."""
    total = sum(weights)
    draw = rng.randrange(total)
    for count, weight in enumerate(weights):
        draw -= weight
        if draw < 0:
            return count
    return len(weights) - 1
