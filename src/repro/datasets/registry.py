"""Dataset registry: the three paper corpora by name.

Benchmarks and examples look datasets up by the names the paper uses in
its tables ("SSPlays", "DBLP", "XMark"); lookup is case-insensitive.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.datasets.dblp import generate_dblp
from repro.datasets.ssplays import generate_ssplays
from repro.datasets.temporal import generate_temporal
from repro.datasets.xmark import generate_xmark
from repro.xmltree.document import XmlDocument
from repro.xmltree.stats import document_stats

_GENERATORS: Dict[str, Callable[..., XmlDocument]] = {
    "ssplays": generate_ssplays,
    "dblp": generate_dblp,
    "xmark": generate_xmark,
    "temporal": generate_temporal,
}

# The paper's three evaluation corpora; "Temporal" is the intro-motivated
# extra (EXTENDED_DATASET_NAMES includes it).
DATASET_NAMES: List[str] = ["SSPlays", "DBLP", "XMark"]
EXTENDED_DATASET_NAMES: List[str] = DATASET_NAMES + ["Temporal"]


def generate(name: str, scale: float = 1.0, seed: int = 0) -> XmlDocument:
    """Generate a dataset by (case-insensitive) name.

    ``seed=0`` uses each generator's own default seed, so two calls with
    the same (name, scale) produce identical documents.
    """
    try:
        generator = _GENERATORS[name.lower()]
    except KeyError:
        raise KeyError(
            "unknown dataset %r (expected one of %s)" % (name, DATASET_NAMES)
        )
    if seed:
        return generator(scale=scale, seed=seed)
    return generator(scale=scale)


def dataset_stats_row(name: str, scale: float = 1.0) -> Dict[str, object]:
    """The Table 1 row of one dataset at the given scale."""
    return document_stats(generate(name, scale=scale)).as_row()
