"""The Path-Order table (Section 3, Figure 2(b)).

Each distinct element tag ``X`` owns a sparse grid whose columns are the
path ids under which ``X`` occurs and whose rows are element tags, split in
two regions:

* ``+ele`` (*before*): ``g(pid, Y)`` counts ``X`` elements with ``pid``
  that occur **before** at least one sibling tagged ``Y``;
* ``ele+`` (*after*): ``g(pid, Y)`` counts ``X`` elements with ``pid``
  that occur **after** at least one sibling tagged ``Y``.

An ``X`` that has ``Y`` siblings on both sides is counted in both regions
(the paper's note after Example 3.2).

Like the PathId-Frequency table, the grids are mergeable: each sibling
group contributes its cells independently, so grids collected over
document shards reduce to the whole-document grids with
:meth:`PathOrderTable.merge` (associative and commutative), provided all
inputs share one encoding-table bit layout (:meth:`remap_pathids`).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Set, Tuple

from repro.pathenc.labeler import LabeledDocument

Cell = Tuple[int, str]  # (path id of X, other tag Y)


class TagOrderGrid:
    """The sparse path-order grid of a single element tag."""

    def __init__(self, tag: str):
        self.tag = tag
        self._before: Dict[Cell, int] = {}
        self._after: Dict[Cell, int] = {}

    # -- collection ------------------------------------------------------

    def add_before(self, pid: int, other_tag: str) -> None:
        key = (pid, other_tag)
        self._before[key] = self._before.get(key, 0) + 1

    def add_after(self, pid: int, other_tag: str) -> None:
        key = (pid, other_tag)
        self._after[key] = self._after.get(key, 0) + 1

    def add_count(self, pid: int, other_tag: str, count: int, before: bool) -> None:
        """Add ``count`` to one cell directly (shard merge bulk path)."""
        region = self._before if before else self._after
        key = (pid, other_tag)
        region[key] = region.get(key, 0) + count

    # -- lookups -----------------------------------------------------------

    def g_before(self, pid: int, other_tag: str) -> int:
        """``X`` elements with ``pid`` occurring before a ``other_tag`` sibling."""
        return self._before.get((pid, other_tag), 0)

    def g_after(self, pid: int, other_tag: str) -> int:
        """``X`` elements with ``pid`` occurring after a ``other_tag`` sibling."""
        return self._after.get((pid, other_tag), 0)

    def region(self, before: bool) -> Dict[Cell, int]:
        """The raw cells of one region (a copy)."""
        return dict(self._before if before else self._after)

    def cells(self) -> List[Tuple[Tuple[int, str, bool], int]]:
        """Every non-zero cell as ``((pid, other_tag, before), count)``,
        in a deterministic order (serialization)."""
        items = [
            ((pid, other_tag, True), count)
            for (pid, other_tag), count in self._before.items()
        ]
        items.extend(
            ((pid, other_tag, False), count)
            for (pid, other_tag), count in self._after.items()
        )
        items.sort(key=lambda cell: (cell[0][0], cell[0][1], not cell[0][2]))
        return items

    def nonzero_cell_count(self) -> int:
        return len(self._before) + len(self._after)

    def row_tags(self) -> List[str]:
        """Sorted distinct other-tags appearing in either region."""
        tags: Set[str] = {tag for _, tag in self._before}
        tags.update(tag for _, tag in self._after)
        return sorted(tags)

    def column_pids(self) -> List[int]:
        """Ascending distinct path ids appearing in either region."""
        pids: Set[int] = {pid for pid, _ in self._before}
        pids.update(pid for pid, _ in self._after)
        return sorted(pids)

    def merged_with(self, *others: "TagOrderGrid") -> "TagOrderGrid":
        """A new grid summing this grid's cells with ``others``'."""
        merged = TagOrderGrid(self.tag)
        for grid in (self,) + others:
            for (pid, other_tag), count in grid._before.items():
                merged.add_count(pid, other_tag, count, before=True)
            for (pid, other_tag), count in grid._after.items():
                merged.add_count(pid, other_tag, count, before=False)
        return merged

    def remapped(self, remap: Callable[[int], int]) -> "TagOrderGrid":
        """A new grid with every cell's path id passed through ``remap``."""
        grid = TagOrderGrid(self.tag)
        grid._before = {
            (remap(pid), other): count for (pid, other), count in self._before.items()
        }
        grid._after = {
            (remap(pid), other): count for (pid, other), count in self._after.items()
        }
        return grid

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TagOrderGrid):
            return NotImplemented
        return (
            self.tag == other.tag
            and self._before == other._before
            and self._after == other._after
        )

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    __hash__ = None  # type: ignore[assignment] - mutable collector

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<TagOrderGrid %s: %d before-cells, %d after-cells>" % (
            self.tag,
            len(self._before),
            len(self._after),
        )


class PathOrderTable:
    """All path-order grids of a document, keyed by element tag."""

    def __init__(self, grids: Dict[str, TagOrderGrid]):
        self._grids = grids

    def grid(self, tag: str) -> TagOrderGrid:
        """The grid for ``tag`` (an empty grid if the tag has no order data)."""
        existing = self._grids.get(tag)
        return existing if existing is not None else TagOrderGrid(tag)

    def tags(self) -> List[str]:
        return sorted(self._grids)

    def iter_grids(self) -> Iterator[TagOrderGrid]:
        for tag in sorted(self._grids):
            yield self._grids[tag]

    def total_nonzero_cells(self) -> int:
        return sum(grid.nonzero_cell_count() for grid in self._grids.values())

    # ------------------------------------------------------------------
    # Merging and remapping (sharded construction)
    # ------------------------------------------------------------------

    def merge(self, *others: "PathOrderTable") -> "PathOrderTable":
        """Sum this table's grids with ``others``' into a new table.

        All tables must use the same encoding-table bit layout; remap
        shard-local tables first (:meth:`remap_pathids`).  Associative and
        commutative.  Grids that exist in one input but carry no cells
        survive the merge, matching a direct whole-document collection.
        """
        merged: Dict[str, TagOrderGrid] = {}
        for table in (self,) + others:
            for tag, grid in table._grids.items():
                existing = merged.get(tag)
                merged[tag] = grid.merged_with() if existing is None else existing.merged_with(grid)
        return PathOrderTable(merged)

    def remap_pathids(self, remap: Callable[[int], int]) -> "PathOrderTable":
        """A new table with every grid's path ids passed through ``remap``."""
        return PathOrderTable(
            {tag: grid.remapped(remap) for tag, grid in self._grids.items()}
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PathOrderTable):
            return NotImplemented
        return self._grids == other._grids

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    __hash__ = None  # type: ignore[assignment] - mutable collector

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PathOrderTable %d tags, %d cells>" % (
            len(self._grids),
            self.total_nonzero_cells(),
        )


def scan_sibling_group(children, pid_of, grid_for) -> None:
    """Record the order relations of one sibling group.

    ``pid_of(node)`` returns the node's path id, ``grid_for(tag)`` the grid
    to update.  For a group of size ``n`` with ``d`` distinct tags this
    does ``O(n * d)`` work using running prefix/suffix tag multisets.
    Shared by the full scan and the incremental-maintenance extension.
    """
    if len(children) < 2:
        return
    # suffix_counts[t] = number of children tagged t strictly after the
    # current position; prefix grows as we sweep left-to-right.
    suffix_counts: Dict[str, int] = {}
    for child in children:
        suffix_counts[child.tag] = suffix_counts.get(child.tag, 0) + 1
    prefix_counts: Dict[str, int] = {}
    for child in children:
        count = suffix_counts[child.tag] - 1
        if count:
            suffix_counts[child.tag] = count
        else:
            del suffix_counts[child.tag]
        grid = grid_for(child.tag)
        pid = pid_of(child)
        for other_tag in suffix_counts:
            grid.add_before(pid, other_tag)
        for other_tag in prefix_counts:
            grid.add_after(pid, other_tag)
        prefix_counts[child.tag] = prefix_counts.get(child.tag, 0) + 1


def collect_path_order(labeled: LabeledDocument) -> PathOrderTable:
    """Scan every sibling group and build all path-order grids."""
    grids: Dict[str, TagOrderGrid] = {}
    pathids = labeled.pathids

    def grid_for(tag: str) -> TagOrderGrid:
        existing = grids.get(tag)
        if existing is None:
            existing = TagOrderGrid(tag)
            grids[tag] = existing
        return existing

    for parent in labeled.document:
        scan_sibling_group(parent.children, lambda n: pathids[n.pre], grid_for)
    return PathOrderTable(grids)
