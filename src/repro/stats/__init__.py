"""Statistics collected from a labeled document (Section 3 of the paper).

* :class:`~repro.stats.pathid_freq.PathIdFrequencyTable` — for each element
  tag, the (path id, frequency) pairs.  Drives estimation of queries
  without order axes.
* :class:`~repro.stats.path_order.PathOrderTable` — for each element tag, a
  sparse grid counting sibling-order co-occurrences.  Drives estimation of
  queries with order axes.
"""

from repro.stats.depth_refined import DepthRefinedPathStats
from repro.stats.path_order import PathOrderTable, TagOrderGrid, collect_path_order
from repro.stats.pathid_freq import PathIdFrequencyTable, collect_pathid_frequencies

__all__ = [
    "DepthRefinedPathStats",
    "PathIdFrequencyTable",
    "collect_pathid_frequencies",
    "PathOrderTable",
    "TagOrderGrid",
    "collect_path_order",
]
