"""Depth-refined path statistics (extension beyond the paper).

The residual estimation error on recursive schemas comes from ``(tag,
path id)`` groups that mix elements at *different depths* (DESIGN.md §5):
the frequency of such a group cannot be split once collected.  This
module collects frequencies keyed by ``(path id, depth)`` instead — the
natural refinement, since the depth-consistent join already propagates
per-depth survival — which removes the ambiguity entirely at the cost of
one small integer per refined entry.

The provider is exact-table only (the ablation's point is the statistics'
*information content*, not their compression); `extra_entries()` reports
how many additional entries the refinement costs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.pathenc.labeler import LabeledDocument


class DepthRefinedPathStats:
    """Path statistics keyed by (path id, depth).

    Implements the path-statistics provider protocol *plus*
    :meth:`depth_frequency_map`, which the path join consumes to compute
    per-depth surviving frequencies.
    """

    def __init__(self, table: Dict[str, Dict[int, Dict[int, int]]]):
        self._table = table

    @classmethod
    def collect(cls, labeled: LabeledDocument) -> "DepthRefinedPathStats":
        table: Dict[str, Dict[int, Dict[int, int]]] = {}
        pathids = labeled.pathids
        depths: Dict[int, int] = {}
        for node in labeled.document:
            depth = 0 if node.parent is None else depths[node.parent.pre] + 1
            depths[node.pre] = depth
            per_tag = table.setdefault(node.tag, {})
            per_pid = per_tag.setdefault(pathids[node.pre], {})
            per_pid[depth] = per_pid.get(depth, 0) + 1
        return cls(table)

    # -- provider protocol -------------------------------------------------

    def frequency_pairs(self, tag: str) -> List[Tuple[int, float]]:
        per_tag = self._table.get(tag, {})
        return sorted(
            (pid, float(sum(per_depth.values())))
            for pid, per_depth in per_tag.items()
        )

    def frequency_map(self, tag: str) -> Dict[int, float]:
        return dict(self.frequency_pairs(tag))

    # -- the refinement ----------------------------------------------------

    def depth_frequency_map(self, tag: str) -> Dict[int, Dict[int, float]]:
        """pid -> {depth: count} for one tag (a copy)."""
        per_tag = self._table.get(tag, {})
        return {
            pid: {depth: float(count) for depth, count in per_depth.items()}
            for pid, per_depth in per_tag.items()
        }

    # -- accounting ----------------------------------------------------------

    def extra_entries(self) -> int:
        """Entries beyond the plain (tag, pid) table: the refinement cost."""
        total = sum(
            len(per_depth)
            for per_tag in self._table.values()
            for per_depth in per_tag.values()
        )
        plain = sum(len(per_tag) for per_tag in self._table.values())
        return total - plain

    def tags(self) -> List[str]:
        return sorted(self._table)
