"""The PathId-Frequency table (Section 3, Figure 2(a)).

One tuple per distinct element tag, aggregating every path id under which
the tag occurs together with its frequency.  This is the exact statistic;
the p-histogram (Section 6) is its lossy, budgeted form.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.pathenc.labeler import LabeledDocument


class PathIdFrequencyTable:
    """Per-tag (path id, frequency) lists.

    The lists are kept sorted by ascending path id so equality comparisons
    and tests are deterministic.
    """

    def __init__(self, entries: Dict[str, Dict[int, int]]):
        self._entries: Dict[str, List[Tuple[int, int]]] = {
            tag: sorted(freqs.items()) for tag, freqs in entries.items()
        }

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def tags(self) -> List[str]:
        return sorted(self._entries)

    def __contains__(self, tag: str) -> bool:
        return tag in self._entries

    def pairs(self, tag: str) -> List[Tuple[int, int]]:
        """The (path id, frequency) pairs for ``tag`` (empty if unknown)."""
        return list(self._entries.get(tag, ()))

    def frequency_map(self, tag: str) -> Dict[int, int]:
        return dict(self._entries.get(tag, ()))

    def total_frequency(self, tag: str) -> int:
        """Total number of ``tag`` elements in the document."""
        return sum(freq for _, freq in self._entries.get(tag, ()))

    def distinct_pathid_count(self, tag: str) -> int:
        return len(self._entries.get(tag, ()))

    def iter_items(self) -> Iterator[Tuple[str, List[Tuple[int, int]]]]:
        for tag in sorted(self._entries):
            yield tag, list(self._entries[tag])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PathIdFrequencyTable %d tags>" % len(self._entries)


def collect_pathid_frequencies(labeled: LabeledDocument) -> PathIdFrequencyTable:
    """Single document scan building the PathId-Frequency table."""
    entries: Dict[str, Dict[int, int]] = {}
    pathids = labeled.pathids
    for node in labeled.document:
        per_tag = entries.setdefault(node.tag, {})
        pid = pathids[node.pre]
        per_tag[pid] = per_tag.get(pid, 0) + 1
    return PathIdFrequencyTable(entries)
