"""The PathId-Frequency table (Section 3, Figure 2(a)).

One tuple per distinct element tag, aggregating every path id under which
the tag occurs together with its frequency.  This is the exact statistic;
the p-histogram (Section 6) is its lossy, budgeted form.

Tables are *mergeable*: frequencies of disjoint node sets simply add, so
partial tables collected over document shards (or over many documents
sharing one encoding table) reduce to the whole-corpus table with
:meth:`PathIdFrequencyTable.merge` — the foundation of the parallel
builder in :mod:`repro.build`.  ``merge`` is associative and commutative.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Set, Tuple

from repro.pathenc.labeler import LabeledDocument


class PathIdFrequencyTable:
    """Per-tag (path id, frequency) lists.

    The lists are kept sorted by ascending path id so equality comparisons
    and tests are deterministic.
    """

    def __init__(self, entries: Dict[str, Dict[int, int]]):
        self._entries: Dict[str, List[Tuple[int, int]]] = {
            tag: sorted(freqs.items()) for tag, freqs in entries.items()
        }

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def tags(self) -> List[str]:
        return sorted(self._entries)

    def __contains__(self, tag: str) -> bool:
        return tag in self._entries

    def pairs(self, tag: str) -> List[Tuple[int, int]]:
        """The (path id, frequency) pairs for ``tag`` (empty if unknown)."""
        return list(self._entries.get(tag, ()))

    def frequency_map(self, tag: str) -> Dict[int, int]:
        return dict(self._entries.get(tag, ()))

    def total_frequency(self, tag: str) -> int:
        """Total number of ``tag`` elements in the document."""
        return sum(freq for _, freq in self._entries.get(tag, ()))

    def distinct_pathid_count(self, tag: str) -> int:
        return len(self._entries.get(tag, ()))

    def iter_items(self) -> Iterator[Tuple[str, List[Tuple[int, int]]]]:
        for tag in sorted(self._entries):
            yield tag, list(self._entries[tag])

    def distinct_pathids(self) -> List[int]:
        """All distinct path ids across every tag, ascending.

        Every element contributes exactly one (tag, pid) count, so this is
        the document's distinct-path-id set (the p1..pk table) — which lets
        a streaming build recover it without keeping per-node labels.
        """
        pids: Set[int] = set()
        for pairs in self._entries.values():
            pids.update(pid for pid, _ in pairs)
        return sorted(pids)

    def total_elements(self) -> int:
        """Total element count (each element is counted exactly once)."""
        return sum(
            freq for pairs in self._entries.values() for _, freq in pairs
        )

    # ------------------------------------------------------------------
    # Merging and remapping (sharded construction)
    # ------------------------------------------------------------------

    def merge(self, *others: "PathIdFrequencyTable") -> "PathIdFrequencyTable":
        """Sum this table with ``others`` into a new table.

        All tables must use the same encoding-table bit layout (remap
        first when they do not — see :meth:`remap_pathids`).  Associative
        and commutative, so shard reductions may group and reorder freely.
        """
        merged: Dict[str, Dict[int, int]] = {
            tag: dict(pairs) for tag, pairs in self._entries.items()
        }
        for other in others:
            for tag, pairs in other._entries.items():
                per_tag = merged.setdefault(tag, {})
                for pid, freq in pairs:
                    per_tag[pid] = per_tag.get(pid, 0) + freq
        return PathIdFrequencyTable(merged)

    def remap_pathids(self, remap: Callable[[int], int]) -> "PathIdFrequencyTable":
        """A new table with every path id passed through ``remap``.

        Used to translate a shard-local bit layout into the merged
        encoding table's layout.  ``remap`` must be injective; colliding
        ids would silently sum.
        """
        return PathIdFrequencyTable(
            {
                tag: {remap(pid): freq for pid, freq in pairs}
                for tag, pairs in self._entries.items()
            }
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PathIdFrequencyTable):
            return NotImplemented
        return self._entries == other._entries

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    __hash__ = None  # type: ignore[assignment] - mutable-by-convention

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PathIdFrequencyTable %d tags>" % len(self._entries)


def collect_pathid_frequencies(labeled: LabeledDocument) -> PathIdFrequencyTable:
    """Single document scan building the PathId-Frequency table."""
    entries: Dict[str, Dict[int, int]] = {}
    pathids = labeled.pathids
    for node in labeled.document:
        per_tag = entries.setdefault(node.tag, {})
        pid = pathids[node.pre]
        per_tag[pid] = per_tag.get(pid, 0) + 1
    return PathIdFrequencyTable(entries)
