"""Incremental maintenance of the statistics under appends.

Bibliographies and logs grow by *appending* records whose path types the
encoding table has already seen (a new DBLP article looks like the last
one).  For that common case the summaries can be maintained without a
rebuild:

* the new subtree's path ids are computed against the existing encoding
  table;
* the PathId-Frequency table gains the new (tag, pid) counts;
* the Path-Order table is patched for the one sibling group that changed
  (the parent's children) and filled in for the subtree's internal groups;
* ancestors of the insertion point keep their path ids (the subtree's
  path types must already be covered by the parent's id), so no existing
  statistic shifts.

A subtree introducing a *new* root-to-leaf path type would change the bit
width of every path id — that genuinely requires a rebuild, signalled with
:class:`RequiresRebuild` before anything is mutated.

This is an extension beyond the paper (which treats summaries as static);
``tests/stats/test_maintenance.py`` pins ``incremental ==
rebuilt-from-scratch`` on every structure.
"""

from __future__ import annotations

from typing import Dict

from repro.pathenc.labeler import LabeledDocument, label_document
from repro.stats.path_order import (
    PathOrderTable,
    TagOrderGrid,
    collect_path_order,
    scan_sibling_group,
)
from repro.stats.pathid_freq import PathIdFrequencyTable, collect_pathid_frequencies
from repro.xmltree.document import XmlDocument
from repro.xmltree.node import XmlNode


class RequiresRebuild(RuntimeError):
    """The update introduces new path types; summaries must be rebuilt."""


class MaintainedStatistics:
    """A labeled document plus statistics, maintained under appends."""

    def __init__(self, document: XmlDocument):
        self.labeled = label_document(document)
        self.pathid_table = collect_pathid_frequencies(self.labeled)
        self.order_table = collect_path_order(self.labeled)

    @property
    def document(self) -> XmlDocument:
        return self.labeled.document

    # ------------------------------------------------------------------

    def append_subtree(self, parent: XmlNode, subtree: XmlNode) -> None:
        """Attach ``subtree`` as the last child of ``parent`` and patch
        every statistic in place.

        Raises :class:`RequiresRebuild` (leaving the document unmodified)
        when the subtree carries an unknown root-to-leaf path type or adds
        path types the parent's id does not already cover.
        """
        if subtree.parent is not None:
            raise ValueError("subtree already has a parent")
        document = self.labeled.document
        new_pids = self._label_subtree(parent.label_path(), subtree)
        subtree_pid = new_pids[id(subtree)]
        parent_pid = self.labeled.pathids[parent.pre]
        if (parent_pid & subtree_pid) != subtree_pid:
            raise RequiresRebuild(
                "subtree adds path types not currently under %r" % parent.tag
            )

        # Snapshot by node identity: renumbering invalidates `pre`.
        old_pid_by_node = {
            id(node): self.labeled.pathids[node.pre] for node in document
        }
        old_group = list(parent.children)

        # ---- mutate + renumber -------------------------------------------
        parent.append(subtree)
        document.renumber()

        # ---- PathId-Frequency table ---------------------------------------
        freqs: Dict[str, Dict[int, int]] = {
            tag: self.pathid_table.frequency_map(tag)
            for tag in self.pathid_table.tags()
        }
        for node in subtree.iter_preorder():
            per_tag = freqs.setdefault(node.tag, {})
            pid = new_pids[id(node)]
            per_tag[pid] = per_tag.get(pid, 0) + 1
        self.pathid_table = PathIdFrequencyTable(freqs)

        # ---- Path-Order table -----------------------------------------------
        grids = {grid.tag: grid for grid in self.order_table.iter_grids()}

        def grid_for(tag: str) -> TagOrderGrid:
            if tag not in grids:
                grids[tag] = TagOrderGrid(tag)
            return grids[tag]

        # (a) the changed group: the new last child is after every distinct
        # old tag; an old child gains a before-relation unless it already
        # preceded a sibling with the new tag.
        if old_group:
            new_grid = grid_for(subtree.tag)
            for tag in {child.tag for child in old_group}:
                new_grid.add_after(subtree_pid, tag)
            for index, child in enumerate(old_group):
                had_one_after = any(
                    sibling.tag == subtree.tag for sibling in old_group[index + 1:]
                )
                if not had_one_after:
                    grid_for(child.tag).add_before(
                        old_pid_by_node[id(child)], subtree.tag
                    )

        # (b) sibling groups inside the new subtree.
        for node in subtree.iter_preorder():
            scan_sibling_group(
                node.children, lambda n: new_pids[id(n)], grid_for
            )
        self.order_table = PathOrderTable(grids)

        # ---- pid array ---------------------------------------------------------
        pathids = [0] * len(document)
        for node in document:
            pid = old_pid_by_node.get(id(node))
            if pid is None:
                pid = new_pids[id(node)]
            pathids[node.pre] = pid
        self.labeled = LabeledDocument(document, self.labeled.encoding_table, pathids)

    # ------------------------------------------------------------------

    def _label_subtree(self, parent_path: str, subtree: XmlNode) -> Dict[int, int]:
        """Path ids for every subtree node, keyed by ``id(node)``.

        Raises :class:`RequiresRebuild` on unknown path types; nothing is
        mutated before that check completes.
        """
        table = self.labeled.encoding_table
        width = table.width
        pids: Dict[int, int] = {}

        def walk(node: XmlNode, path: str) -> int:
            full = "%s/%s" % (path, node.tag)
            if not node.children:
                try:
                    encoding = table.encoding_of(full)
                except KeyError:
                    raise RequiresRebuild("new root-to-leaf path type %r" % full)
                pid = 1 << (width - encoding)
            else:
                pid = 0
                for child in node.children:
                    pid |= walk(child, full)
            pids[id(node)] = pid
            return pid

        walk(subtree, parent_path)
        return pids
