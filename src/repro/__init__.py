"""Reproduction of *An Estimation System for XPath Expressions* (ICDE 2006).

A selectivity estimator for XPath queries with and without order-based
axes, built on the path encoding scheme, p-/o-histograms and the join-based
estimation formulas of the paper — together with the substrates (XML tree
model and parser, path-id binary tree), baselines (XSketch-style graph
synopsis, Markov path models), synthetic datasets and the full experiment
harness.

Quickstart::

    import repro

    system = repro.build_synopsis("<Root><A><B/><C/></A></Root>")
    system.estimate("//A/$B")               # -> 1.0
    system.estimate("//A[/B/folls::$C]")    # order axis
    system.explain("//A/$B")                # -> cost-based Plan IR
    system.execute("//A/$B")                # -> matches + estimate + plan
    system.estimate(
        "//A/$B", options=repro.EstimateOptions(trace=True)
    )                                       # EstimateResult with span tree

``build_synopsis`` accepts XML text, a filesystem path, or a parsed
``XmlDocument``; pass ``workers=N`` to scan a large document in parallel
shards (the result is bit-identical either way).  See docs/API.md for the
full surface and DESIGN.md for the system inventory.

Against a running estimation service (one instance, a worker pool, or a
sharded cluster behind the scatter-gather router), the front door is
:func:`repro.connect`::

    with repro.connect("localhost:8750") as client:
        client.estimate("SSPlays", "//PLAY/ACT/$SCENE")   # EstimateResult
"""

import warnings

from repro.build.builder import SynopsisBuilder, build_synopsis
from repro.core.options import EstimateOptions, ExecuteOptions, ExplainOptions
from repro.core.result import EstimateResult
from repro.core.system import EstimationSystem
from repro.errors import (
    BuildError,
    ObservabilityError,
    ParseError,
    PersistError,
    QuerySyntaxError,
    ReproError,
)
from repro.xmltree.parser import parse_xml
from repro.xpath.parser import parse_query

__version__ = "1.2.0"

#: The supported public surface.  Anything imported from ``repro`` that is
#: not listed here still works for now but raises a DeprecationWarning —
#: import it from its home submodule instead.
__all__ = [
    "EstimateOptions",
    "EstimateResult",
    "EstimationSystem",
    "ExecuteOptions",
    "ExecutionResult",
    "ExplainOptions",
    "Plan",
    "SynopsisBuilder",
    "build_synopsis",
    "connect",
    "parse_xml",
    "parse_query",
    "ReproError",
    "ParseError",
    "QuerySyntaxError",
    "PersistError",
    "BuildError",
    "ObservabilityError",
    "__version__",
]

#: Lazily imported public names -> (module, attribute).  The plan IR sits
#: behind the execution machinery; importing it eagerly would make
#: ``import repro`` pay for the whole queryproc stack.
_LAZY = {
    "Plan": ("repro.plan.ir", "Plan"),
    "ExecutionResult": ("repro.plan.ir", "ExecutionResult"),
}

#: Legacy top-level names (pre-1.1 surface) -> (module, attribute).  Kept
#: importable through ``__getattr__`` so existing code keeps running, but
#: each emits a DeprecationWarning on first use per process.
_DEPRECATED = {
    "XmlDocument": ("repro.xmltree.document", "XmlDocument"),
    "XmlNode": ("repro.xmltree.node", "XmlNode"),
    "Evaluator": ("repro.xpath.evaluator", "Evaluator"),
    "Query": ("repro.xpath.ast", "Query"),
    "explain": ("repro.core.explain", "explain"),
    "EstimateReport": ("repro.core.explain", "EstimateReport"),
}


def connect(target=None, **kwargs):
    """Open a cluster-aware estimation client (lazy wrapper around
    :func:`repro.cluster.client.connect` so ``import repro`` does not pay
    for the service/cluster stack)."""
    from repro.cluster.client import connect as _connect

    return _connect(target, **kwargs)


def __getattr__(name):
    """PEP 562 shim: lazy public names, and legacy names with a one-time
    deprecation warning."""
    lazy = _LAZY.get(name)
    if lazy is not None:
        import importlib

        value = getattr(importlib.import_module(lazy[0]), lazy[1])
        globals()[name] = value
        return value
    target = _DEPRECATED.get(name)
    if target is None:
        raise AttributeError("module %r has no attribute %r" % (__name__, name))
    module_name, attribute = target
    warnings.warn(
        "importing %r from 'repro' is deprecated; import it from %r instead"
        % (name, module_name),
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value  # cache: warn once per process, not per access
    return value


def __dir__():
    return sorted(set(__all__) | set(_DEPRECATED) | set(globals()))
