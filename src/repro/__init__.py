"""Reproduction of *An Estimation System for XPath Expressions* (ICDE 2006).

A selectivity estimator for XPath queries with and without order-based
axes, built on the path encoding scheme, p-/o-histograms and the join-based
estimation formulas of the paper — together with the substrates (XML tree
model and parser, path-id binary tree), baselines (XSketch-style graph
synopsis, Markov path models), synthetic datasets and the full experiment
harness.

Quickstart::

    from repro import EstimationSystem
    from repro.xmltree import parse_xml

    document = parse_xml("<Root><A><B/><C/></A></Root>")
    system = EstimationSystem.build(document)
    system.estimate("//A/$B")               # -> 1.0
    system.estimate("//A[/B/folls::$C]")    # order axis

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core.explain import EstimateReport, explain
from repro.core.system import EstimationSystem
from repro.xmltree import XmlDocument, XmlNode, parse_xml
from repro.xpath import Evaluator, Query, parse_query

__version__ = "1.0.0"

__all__ = [
    "EstimationSystem",
    "explain",
    "EstimateReport",
    "XmlDocument",
    "XmlNode",
    "parse_xml",
    "Evaluator",
    "Query",
    "parse_query",
    "__version__",
]
