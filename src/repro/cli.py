"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro stats --dataset XMark --scale 0.3
    python -m repro stats --file plays.xml
    python -m repro estimate --dataset SSPlays "//PLAY[/ACT/folls::\\$EPILOGUE]"
    python -m repro estimate --file dblp.xml "//article/\\$author" --explain
    python -m repro workload --dataset DBLP --raw 200
    python -m repro paths --dataset SSPlays --limit 10
    python -m repro validate --dataset XMark
    python -m repro report --output reproduction_report.txt
    python -m repro snapshot --dataset SSPlays --output snapshots/
    python -m repro serve --snapshot-dir snapshots/ --port 8750

Every subcommand accepts either ``--file <xml>`` (parsed with the built-in
parser) or ``--dataset {SSPlays,DBLP,XMark}`` with ``--scale``/``--seed``.
"""

from __future__ import annotations

import argparse
import functools
import os
import sys
from typing import List, Optional

from repro.core.explain import explain
from repro.core.system import EstimationSystem
from repro.datasets import EXTENDED_DATASET_NAMES, generate
from repro.harness.tables import format_table
from repro.workload import WorkloadGenerator
from repro.xmltree.document import XmlDocument
from repro.xmltree.parser import parse_xml
from repro.xmltree.stats import document_stats
from repro.xpath import Evaluator, parse_query

# Repeated workload queries (estimate loops, validate sweeps) hit the
# parser with the same few hundred texts; parse each distinct text once.
_parse_cached = functools.lru_cache(maxsize=1024)(parse_query)


def _add_source_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--file", help="path to an XML document")
    source.add_argument(
        "--dataset", choices=EXTENDED_DATASET_NAMES, help="built-in synthetic dataset"
    )
    parser.add_argument("--scale", type=float, default=0.3, help="dataset scale")
    parser.add_argument("--seed", type=int, default=0, help="dataset seed (0 = default)")


def _load_document(args: argparse.Namespace) -> XmlDocument:
    if args.file:
        with open(args.file, "r", encoding="utf-8") as handle:
            return parse_xml(handle.read(), name=args.file)
    return generate(args.dataset, scale=args.scale, seed=args.seed)


def _cmd_stats(args: argparse.Namespace) -> int:
    stats = document_stats(_load_document(args))
    rows = [
        ["size", "%.2f MB" % stats.size_mb],
        ["elements", stats.total_elements],
        ["distinct tags", stats.distinct_tags],
        ["distinct root-to-leaf paths", stats.distinct_paths],
        ["max depth", stats.max_depth],
        ["max fanout", stats.max_fanout],
        ["avg fanout", "%.2f" % stats.avg_fanout],
        ["leaf elements", stats.leaf_count],
    ]
    print(format_table(["metric", "value"], rows, title="Document statistics"))
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    document = _load_document(args)
    system = EstimationSystem.build(
        document, p_variance=args.p_variance, o_variance=args.o_variance
    )
    query = _parse_cached(args.query)
    estimate = system.estimate(query)
    print("estimate: %.3f" % estimate)
    if args.actual:
        print("actual:   %d" % Evaluator(document).selectivity(query))
    if args.explain:
        print(explain(system, query).render())
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    document = _load_document(args)
    generator = WorkloadGenerator(document, seed=args.workload_seed)
    workload = generator.full_workload(args.raw, args.raw, args.raw)
    row = workload.table2_row()
    print(
        format_table(
            ["simple", "branch", "total", "with order"],
            [[row["simple"], row["branch"], row["total"], row["with_order"]]],
            title="Workload sizes (raw=%d per class)" % args.raw,
        )
    )
    if args.show:
        for item in (workload.simple + workload.branch + workload.order_branch)[: args.show]:
            print("%-8s actual=%-8d %s" % (item.kind, item.actual, item.text))
    return 0


def _cmd_paths(args: argparse.Namespace) -> int:
    document = _load_document(args)
    system = EstimationSystem.build(document)
    labeled = system.labeled
    print("distinct root-to-leaf paths: %d" % labeled.width)
    print("distinct path ids:           %d" % len(labeled.distinct_pathids()))
    print("path id size:                %d bytes" % labeled.pathid_size_bytes())
    tree = system.binary_tree
    if tree is not None:
        print(
            "binary tree:                 %d -> %d nodes after compression"
            % (tree.full_node_count, tree.compressed_node_count)
        )
    limit = args.limit if args.limit > 0 else labeled.width
    for encoding in range(1, min(limit, labeled.width) + 1):
        print("  %3d  %s" % (encoding, labeled.encoding_table.path_of(encoding)))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.harness.validation import validate_document

    report = validate_document(_load_document(args))
    print(report.render())
    return 0 if report.ok else 1


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from repro import persist
    from repro.build.builder import build_synopsis

    name = args.name
    if name is None:
        name = args.dataset or os.path.splitext(os.path.basename(args.file))[0]
    if args.incremental:
        # Delta-capable snapshot: the maintainer's exact tables are
        # embedded so 'repro delta' can merge appends without a rebuild.
        from repro.cluster.delta import IncrementalSynopsis

        source = args.file or generate(
            args.dataset, scale=args.scale, seed=args.seed
        )
        system = IncrementalSynopsis.build(
            source,
            p_variance=args.p_variance,
            o_variance=args.o_variance,
            workers=args.workers if args.file else 1,
            lenient=args.lenient,
            drift_threshold=args.drift_threshold,
            name=name,
        ).system
    elif args.file:
        # Stream (and with --workers > 1, shard) the file directly —
        # the document tree is never materialized.
        system = build_synopsis(
            args.file,
            p_variance=args.p_variance,
            o_variance=args.o_variance,
            workers=args.workers,
            lenient=args.lenient,
            name=name,
        )
    else:
        system = build_synopsis(
            generate(args.dataset, scale=args.scale, seed=args.seed),
            p_variance=args.p_variance,
            o_variance=args.o_variance,
            name=name,
        )
    output = args.output
    if output.endswith(os.sep) or os.path.isdir(output):
        os.makedirs(output, exist_ok=True)
        output = os.path.join(output, name + ".json")
    else:
        parent = os.path.dirname(output)
        if parent:
            os.makedirs(parent, exist_ok=True)
    persist.save(system, output)
    print(
        "snapshot %r written to %s (%d bytes)"
        % (name, output, os.path.getsize(output))
    )
    if args.pack and args.incremental:
        print(
            "warning: a staged kernelpack is preferred over the JSON at "
            "serve time and pack-served synopses cannot absorb deltas; "
            "re-stage the pack after each delta or skip --pack",
            file=sys.stderr,
        )
    if args.pack:
        from repro.shm import PACK_SUFFIX, KernelPackError, write_pack

        pack_path = os.path.splitext(output)[0] + PACK_SUFFIX
        try:
            size = write_pack(pack_path, system=system, name=name)
        except KernelPackError as error:
            print("warning: kernelpack not written: %s" % error, file=sys.stderr)
        else:
            print("kernelpack written to %s (%d bytes)" % (pack_path, size))
    return 0


def _cmd_pack(args: argparse.Namespace) -> int:
    from repro.shm import describe_pack, stage_packs

    if args.check:
        from repro.errors import ReproError

        status = 0
        for path in args.check:
            # Accept a pack path or a bare synopsis name (resolved in
            # --snapshot-dir): `pack --check SSPlays` and
            # `pack --check snapshots/SSPlays.kernelpack` both work.
            if not os.path.exists(path):
                named = os.path.join(args.snapshot_dir, path + ".kernelpack")
                if os.path.exists(named):
                    path = named
            try:
                info = describe_pack(path)
            except (ReproError, OSError) as error:
                print("%s: INVALID (%s)" % (path, error), file=sys.stderr)
                status = 1
                continue
            print(
                "%s: ok — %r v%d, %d tags, %d pairs, %d bytes"
                % (path, info["name"], info["version"], info["tags"],
                   info["pairs"], info["size_bytes"])
            )
        return status
    if not os.path.isdir(args.snapshot_dir):
        print("error: snapshot dir %r does not exist" % args.snapshot_dir,
              file=sys.stderr)
        return 1
    results = stage_packs(args.snapshot_dir, force=args.force)
    for name in sorted(results):
        print("%-24s %s" % (name, results[name]))
    if not results:
        print("no *.json snapshots in %r" % args.snapshot_dir, file=sys.stderr)
    return 0


def _semcache_capacity(args: argparse.Namespace) -> int:
    return 0 if args.no_semcache else max(0, args.semcache_capacity)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import (
        EstimationService,
        PlanCache,
        ServiceServer,
        SynopsisRegistry,
    )

    if not os.path.isdir(args.snapshot_dir):
        print("error: snapshot dir %r does not exist" % args.snapshot_dir,
              file=sys.stderr)
        return 1
    if args.workers > 1:
        return _serve_pool(args)
    registry = SynopsisRegistry(
        args.snapshot_dir, check_interval=args.reload_interval
    )
    names = registry.scan()
    for name, error in sorted(registry.scan_errors.items()):
        print(
            "warning: skipping snapshot %r: %s" % (name, error),
            file=sys.stderr,
        )
    if not names:
        print(
            "warning: no *.json snapshots in %r yet (write some with "
            "'python -m repro snapshot'); new files are picked up live"
            % args.snapshot_dir,
            file=sys.stderr,
        )
    from repro.obs.slowlog import SlowQueryLog
    from repro.reliability import AdmissionGate
    from repro.reliability.brownout import BrownoutController
    from repro.reliability.shedding import TieredAdmissionGate, default_tiers

    brownout = None
    if args.no_qos:
        gate = AdmissionGate(max_inflight=args.max_inflight)
    else:
        gate = TieredAdmissionGate(
            tiers=default_tiers(
                args.max_inflight,
                bulk_max_inflight=args.bulk_inflight,
                standard_queue=args.standard_queue,
                request_deadline_s=args.deadline or None,
            ),
            max_total=args.max_inflight,
        )
        if not args.no_brownout:
            brownout = BrownoutController()
    service = EstimationService(
        registry,
        plan_cache=PlanCache(args.plan_cache),
        gate=gate,
        semcache_capacity=_semcache_capacity(args),
        semcache_ttl_s=args.semcache_ttl or None,
        request_deadline_s=args.deadline or None,
        slow_log=SlowQueryLog(
            capacity=args.slowlog_capacity,
            threshold_ms=args.slowlog_threshold_ms,
            top_k=args.slowlog_top_k,
        ),
        trace_sample_rate=args.trace_sample_rate,
        brownout=brownout,
    )
    server = ServiceServer(
        service,
        host=args.host,
        port=args.port,
        read_deadline_s=args.read_deadline or None,
    )
    print(
        "serving %d synopsis(es) [%s] on http://%s:%d (plan cache %d, "
        "semcache %d)"
        % (
            len(names), ", ".join(names), server.host, server.port,
            args.plan_cache, _semcache_capacity(args),
        ),
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        # Graceful: shed new work, let in-flight estimates finish.
        service.gate.close()
        service.gate.drain(args.drain_timeout)
        server.httpd.server_close()
    return 0


def _cmd_traffic(args: argparse.Namespace) -> int:
    """``repro traffic``: capacity sweep against a temporary server."""
    from repro.service import ServerConfig, SynopsisRegistry, serve
    from repro.traffic import (
        TrafficConfig,
        TrafficDriver,
        format_curve,
        generate_schedule,
        load_trace,
        save_trace,
        summarize,
    )

    if not os.path.isdir(args.snapshot_dir):
        print("error: snapshot dir %r does not exist" % args.snapshot_dir,
              file=sys.stderr)
        return 1
    registry = SynopsisRegistry(args.snapshot_dir)
    names = registry.scan()
    if not names:
        print("error: no *.json snapshots in %r" % args.snapshot_dir,
              file=sys.stderr)
        return 1
    synopsis = args.synopsis or names[0]
    if synopsis not in names:
        print("error: synopsis %r not in %s" % (synopsis, names),
              file=sys.stderr)
        return 1
    queries = ["//%s" % tag for tag in registry.system(synopsis).path_provider.tags()]

    duration = 1.0 if args.smoke else args.duration
    levels = args.qps or ([20.0, 60.0] if args.smoke else [50.0, 100.0, 200.0])
    shape = TrafficConfig(
        seed=args.seed,
        duration_s=duration,
        base_qps=levels[0],
        diurnal_amplitude=args.diurnal_amplitude,
        diurnal_period_s=duration,
        burst_rate=args.burst_rate,
        slow_fraction=args.slow_fraction,
    )

    if args.save_trace:
        for qps in levels:
            events = generate_schedule(shape.scaled(qps), queries)
            path = "%s.%d.jsonl" % (args.save_trace, int(qps))
            save_trace(events, path)
            print("wrote %d events (%.0f qps offered) to %s"
                  % (len(events), qps, path))
        return 0

    server = serve(
        args.snapshot_dir,
        config=ServerConfig(
            port=0,
            max_inflight=args.max_inflight,
            qos=not args.no_qos,
        ),
        registry=registry,
    )
    server.start()
    try:
        driver = TrafficDriver(
            server.host, server.port, synopsis, workers=args.workers
        )
        points = []
        if args.replay_trace:
            schedules = [load_trace(args.replay_trace)]
        else:
            schedules = [
                generate_schedule(shape.scaled(qps), queries) for qps in levels
            ]
        for events in schedules:
            if not events:
                continue
            horizon = max(duration, events[-1].at_s)
            offered = len(events) / horizon
            report = driver.run(events)
            points.append(
                summarize(report.outcomes, max(report.wall_s, horizon), offered)
            )
            print(
                "offered %7.1f qps: served %d shed %d in %.2fs"
                % (offered, report.served, report.shed, report.wall_s),
                flush=True,
            )
    finally:
        server.close()
    print()
    print(
        format_curve(
            points,
            title="capacity sweep: %s (%s gate, max_inflight=%d)"
            % (synopsis, "flat" if args.no_qos else "tiered", args.max_inflight),
        )
    )
    return 0


def _serve_pool(args: argparse.Namespace) -> int:
    """``repro serve --workers N``: the pre-fork SO_REUSEPORT pool."""
    import signal
    import threading

    from repro.service import ServerConfig, serve_pool
    from repro.shm import WorkerPoolError, pool_supported

    if not pool_supported():
        print(
            "error: --workers %d needs os.fork and SO_REUSEPORT "
            "(unavailable on this platform); run --workers 1"
            % args.workers,
            file=sys.stderr,
        )
        return 1
    config = ServerConfig(
        host=args.host,
        port=args.port,
        plan_cache_capacity=args.plan_cache,
        semcache_capacity=_semcache_capacity(args),
        semcache_ttl_s=args.semcache_ttl or None,
        reload_interval_s=args.reload_interval,
        max_inflight=args.max_inflight,
        request_deadline_s=args.deadline or None,
        drain_timeout_s=args.drain_timeout,
        workers=args.workers,
        control_port=None if args.control_port < 0 else args.control_port,
        trace_sample_rate=args.trace_sample_rate,
        slowlog_capacity=args.slowlog_capacity,
        slowlog_threshold_ms=args.slowlog_threshold_ms,
        slowlog_top_k=args.slowlog_top_k,
        qos=not args.no_qos,
        bulk_max_inflight=args.bulk_inflight,
        standard_queue=args.standard_queue,
        brownout=not args.no_brownout,
        read_deadline_s=args.read_deadline or None,
    )
    try:
        pool, control = serve_pool(
            args.snapshot_dir, config=config
        )
        pool._on_event = lambda line: print(line, file=sys.stderr, flush=True)
        pool.start()
    except WorkerPoolError as error:
        print("error: %s" % error, file=sys.stderr)
        return 1
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    # SIGHUP = hot reload (classic pre-fork supervisor convention).
    if hasattr(signal, "SIGHUP"):
        signal.signal(signal.SIGHUP, lambda *_: pool.reload())
    # "staged" to the operator means "a pack backs this synopsis" —
    # whether this launch wrote it or an earlier one did ("fresh").
    staged = sum(1 for status in pool.pack_status.values()
                 if not status.startswith("skipped"))
    print(
        "serving with %d workers on http://%s:%d (%d kernelpack(s) staged%s)"
        % (
            args.workers, pool.host, pool.port, staged,
            "; control on http://%s:%d" % (control.host, control.port)
            if control is not None else "",
        ),
        flush=True,
    )
    if control is not None:
        control.start()
    try:
        stop.wait()
    except KeyboardInterrupt:
        pass
    finally:
        if control is not None:
            control.close()
        pool.stop()
    return 0


def _cmd_delta(args: argparse.Namespace) -> int:
    """``repro delta``: merge an appended XML fragment into a synopsis.

    Two modes share the flags:

    * **server mode** (default): scan the fragment locally, upload the
      partial to a running service or router (``POST /delta``) — the
      live system refreshes in place, no rebuild, no restart;
    * **offline mode** (``--snapshot-dir``): load the snapshot, apply
      the delta, write the merged snapshot back — a serving registry
      then picks it up through ordinary hot reload.
    """
    from repro.build.stream import scan_text
    from repro.errors import ReproError

    if args.fragment == "-":
        text = sys.stdin.read()
    else:
        with open(args.fragment, "r", encoding="utf-8") as handle:
            text = handle.read()

    if args.snapshot_dir:
        from repro import persist

        path = os.path.join(args.snapshot_dir, args.synopsis + ".json")
        if not os.path.exists(path):
            print("error: no snapshot %r" % path, file=sys.stderr)
            return 1
        try:
            system = persist.load(path)
            maintainer = system.incremental
            if maintainer is None:
                print(
                    "error: snapshot %r carries no incremental state; "
                    "rebuild it with 'repro snapshot --incremental'" % path,
                    file=sys.stderr,
                )
                return 1
            partial = maintainer.scan_fragment(text, lenient=args.lenient)
            # Offline there is no serving window to protect, so the
            # refresh always happens before write-back.
            outcome = maintainer.apply(partial, force_refresh=True)
        except ReproError as error:
            print("error: %s" % error, file=sys.stderr)
            return 1
        if args.dry_run:
            print(
                "dry run: +%d element(s), %d new path(s) — snapshot not written"
                % (outcome.elements_added, outcome.new_paths)
            )
            return 0
        persist.save(outcome.system, path)
        print(
            "delta applied to %s: +%d element(s), %d new path(s), %.1fms"
            % (path, outcome.elements_added, outcome.new_paths, outcome.elapsed_ms)
        )
        return 0

    if not args.root_tag:
        print(
            "error: server mode needs --root-tag (the served document's "
            "root element) to scan the fragment; or use --snapshot-dir "
            "for offline apply",
            file=sys.stderr,
        )
        return 1
    try:
        partial = scan_text(text, (args.root_tag,), lenient=args.lenient)
    except ReproError as error:
        print("error: cannot scan fragment: %s" % error, file=sys.stderr)
        return 1
    if args.dry_run:
        print(
            "dry run: fragment scans to %d element(s), %d path(s) — not uploaded"
            % (partial.element_count, len(partial.paths))
        )
        return 0
    from repro.service import EndpointClient, ServiceError

    with EndpointClient(host=args.host, port=args.port) as client:
        try:
            reply = client.apply_delta(
                args.synopsis, partial, force_refresh=args.force_refresh
            )
        except ServiceError as error:
            print("error: %s" % error, file=sys.stderr)
            return 1
    if "replicas" in reply:  # a router fanned the delta out
        print(
            "delta fanned out to %d replica(s): %d applied, %d failed"
            % (len(reply["replicas"]), reply.get("applied", 0), reply.get("failed", 0))
        )
        for item in reply["replicas"]:
            status = (
                "error: %s" % item["error"]["message"]
                if "error" in item
                else "generation %s%s"
                % (item.get("generation"), "" if item.get("refreshed") else " (deferred)")
            )
            print("  %-24s %s" % (item.get("backend", "?"), status))
    else:
        print(
            "delta applied to %r: generation %s, %s, drift %.3f"
            % (
                args.synopsis,
                reply.get("generation"),
                "refreshed" if reply.get("refreshed") else "deferred (stale)",
                reply.get("drift", 0.0),
            )
        )
    return 0


def _cmd_router(args: argparse.Namespace) -> int:
    """``repro router``: the scatter-gather front over N backends."""
    from repro.cluster.router import ClusterRouter, RouterConfig, RouterServer

    config = RouterConfig(
        host=args.host,
        port=args.port,
        replication=args.replication,
        vnodes=args.vnodes,
        timeout=args.timeout,
        scatter_min=args.scatter_min,
    )
    router = ClusterRouter(args.backend, config=config)
    server = RouterServer(router)
    print(
        "routing %d backend(s) [%s] on http://%s:%d (replication %d)"
        % (
            len(args.backend),
            ", ".join(args.backend),
            server.host,
            server.port,
            min(config.replication, len(args.backend)),
        ),
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.httpd.server_close()
        router.close()
    return 0


def _cmd_slowlog(args: argparse.Namespace) -> int:
    from repro.service import EndpointClient, ServiceError

    with EndpointClient(host=args.host, port=args.port) as client:
        try:
            document = client.slowlog(limit=args.limit)
        except ServiceError as error:
            print("error: %s" % error, file=sys.stderr)
            return 1
    section = {
        "recent": "recent",
        "latency": "top_latency",
        "error": "top_error",
    }[args.by]
    records = document.get(section, [])
    print(
        "slowlog @ %s:%d — %d observed, threshold %.3gms, showing %s"
        % (
            args.host,
            args.port,
            document.get("observed", 0),
            document.get("threshold_ms", 0.0),
            section,
        )
    )
    if not records:
        print("(empty)")
        return 0
    headers = ["seq", "ms", "synopsis", "route", "estimate", "rel_err", "query"]
    rows = []
    for record in records:
        rel = record.get("rel_error")
        rows.append(
            [
                str(record.get("seq", "")),
                "%.3f" % record.get("elapsed_ms", 0.0),
                record.get("synopsis", ""),
                record.get("route", ""),
                "%.3f" % record.get("estimate", 0.0)
                if record.get("estimate") is not None
                else "-",
                "%.3f" % rel if rel is not None else "-",
                record.get("query", ""),
            ]
        )
    print(format_table(headers, rows))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.harness.report import write_report

    text = write_report(directory=args.results_dir, output=args.output)
    if not args.output:
        print(text)
    else:
        print("report written to %s" % args.output)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Selectivity estimation for XPath expressions with order axes "
        "(reproduction of Li et al., ICDE 2006)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    stats = commands.add_parser("stats", help="document statistics (Table 1 row)")
    _add_source_arguments(stats)
    stats.set_defaults(handler=_cmd_stats)

    estimate = commands.add_parser("estimate", help="estimate one query")
    _add_source_arguments(estimate)
    estimate.add_argument("query", help="XPath subset query; $tag marks the target")
    estimate.add_argument("--p-variance", type=float, default=0.0)
    estimate.add_argument("--o-variance", type=float, default=0.0)
    estimate.add_argument("--actual", action="store_true", help="also evaluate exactly")
    estimate.add_argument("--explain", action="store_true", help="show the rule applied")
    estimate.set_defaults(handler=_cmd_estimate)

    workload = commands.add_parser("workload", help="generate a Section-7 workload")
    _add_source_arguments(workload)
    workload.add_argument("--raw", type=int, default=200, help="raw candidates per class")
    workload.add_argument("--workload-seed", type=int, default=42)
    workload.add_argument("--show", type=int, default=0, help="print the first N queries")
    workload.set_defaults(handler=_cmd_workload)

    paths = commands.add_parser("paths", help="inspect the path encoding")
    _add_source_arguments(paths)
    paths.add_argument("--limit", type=int, default=20, help="paths to print (0 = all)")
    paths.set_defaults(handler=_cmd_paths)

    validate = commands.add_parser(
        "validate", help="run the system self-checks against a document"
    )
    _add_source_arguments(validate)
    validate.set_defaults(handler=_cmd_validate)

    snapshot = commands.add_parser(
        "snapshot", help="build a synopsis and persist it for serving"
    )
    _add_source_arguments(snapshot)
    snapshot.add_argument("--p-variance", type=float, default=0.0)
    snapshot.add_argument("--o-variance", type=float, default=0.0)
    snapshot.add_argument(
        "--output", default="snapshots" + os.sep,
        help="output file, or directory (trailing separator / existing dir) "
        "to write <name>.json into",
    )
    snapshot.add_argument(
        "--name", default=None,
        help="synopsis name (default: dataset name or XML file stem)",
    )
    snapshot.add_argument(
        "--workers", type=int, default=1,
        help="parallel scan processes for --file sources (the built "
        "synopsis is bit-identical regardless)",
    )
    snapshot.add_argument(
        "--lenient", action="store_true",
        help="recover past malformed XML in --file sources instead of "
        "aborting (damage is skipped; estimates stay exact elsewhere)",
    )
    snapshot.add_argument(
        "--pack", action="store_true",
        help="also write a mmap-able <name>.kernelpack next to the JSON "
        "(zero-copy kernel snapshot for serve --workers N)",
    )
    snapshot.add_argument(
        "--incremental", action="store_true",
        help="embed the exact statistics tables so the served synopsis "
        "can absorb 'repro delta' uploads without a rebuild",
    )
    snapshot.add_argument(
        "--drift-threshold", type=float, default=0.0,
        help="with --incremental: defer histogram refresh until deferred "
        "delta mass exceeds this fraction of the synopsis (0 = refresh "
        "on every delta)",
    )
    snapshot.set_defaults(handler=_cmd_snapshot)

    pack = commands.add_parser(
        "pack",
        help="stage mmap-able .kernelpack files for a snapshot directory",
    )
    pack.add_argument(
        "--snapshot-dir", required=True, help="directory of *.json synopses"
    )
    pack.add_argument(
        "--force", action="store_true",
        help="rewrite packs even when they are newer than their JSON",
    )
    pack.add_argument(
        "--check", nargs="+", metavar="PACK", default=None,
        help="validate existing pack files instead of staging new ones",
    )
    pack.set_defaults(handler=_cmd_pack)

    serve = commands.add_parser(
        "serve", help="serve estimates over JSON/HTTP from persisted synopses"
    )
    serve.add_argument(
        "--snapshot-dir", required=True, help="directory of *.json synopses"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8750, help="TCP port (0 = ephemeral)"
    )
    serve.add_argument(
        "--plan-cache", type=int, default=512,
        help="compiled-plan LRU capacity (0 disables the cache)",
    )
    serve.add_argument(
        "--semcache-capacity", type=int, default=4096,
        help="semantic result cache entries per synopsis (canonicalized "
        "estimate memoization; 0 disables result caching)",
    )
    serve.add_argument(
        "--semcache-ttl", type=float, default=0.0,
        help="TTL for semantic-cache entries in seconds (0 = entries "
        "live until the next synopsis generation bump)",
    )
    serve.add_argument(
        "--no-semcache", action="store_true",
        help="disable the semantic result cache (same as "
        "--semcache-capacity 0)",
    )
    serve.add_argument(
        "--reload-interval", type=float, default=0.0,
        help="seconds between snapshot freshness checks (0 = every request)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=64,
        help="concurrent estimates before requests are shed with 503",
    )
    serve.add_argument(
        "--deadline", type=float, default=0.0,
        help="per-request time budget in seconds; exceeded requests get "
        "504 (0 = unbounded)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=5.0,
        help="seconds to wait for in-flight requests on shutdown",
    )
    serve.add_argument(
        "--trace-sample-rate", type=float, default=0.0,
        help="fraction of requests traced server-side (0 = only "
        "requests that ask with \"trace\": true; 1 = every request)",
    )
    serve.add_argument(
        "--slowlog-capacity", type=int, default=256,
        help="slow-query ring size (entries over --slowlog-threshold-ms)",
    )
    serve.add_argument(
        "--slowlog-threshold-ms", type=float, default=0.0,
        help="latency floor for the slow-query ring (top-K boards see "
        "every query regardless)",
    )
    serve.add_argument(
        "--slowlog-top-k", type=int, default=32,
        help="size of the top-by-latency / top-by-error boards",
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="pre-forked SO_REUSEPORT worker processes sharing the port "
        "(1 = classic single-process serving)",
    )
    serve.add_argument(
        "--control-port", type=int, default=0,
        help="supervisor control-plane port for --workers N (aggregated "
        "/metrics, /healthz, POST /reload); 0 = ephemeral, -1 disables",
    )
    serve.add_argument(
        "--no-qos", action="store_true",
        help="flat admission gate instead of QoS tiers "
        "(interactive/standard/bulk priority lanes)",
    )
    serve.add_argument(
        "--bulk-inflight", type=int, default=None,
        help="bulk-tier inflight cap (default: max-inflight // 4)",
    )
    serve.add_argument(
        "--standard-queue", type=int, default=32,
        help="bounded wait-queue depth for the standard tier",
    )
    serve.add_argument(
        "--no-brownout", action="store_true",
        help="disable brownout degradation (shedding observability and "
        "bulk admission under sustained overload)",
    )
    serve.add_argument(
        "--read-deadline", type=float, default=30.0,
        help="per-connection socket read deadline in seconds; slow "
        "clients get 408 (0 = unbounded)",
    )
    serve.set_defaults(handler=_cmd_serve)

    traffic = commands.add_parser(
        "traffic",
        help="sweep offered load against a temporary server and print the "
        "latency-vs-load curve with its capacity knee",
    )
    traffic.add_argument(
        "--snapshot-dir", required=True, help="directory of *.json synopses"
    )
    traffic.add_argument(
        "--synopsis", default=None,
        help="synopsis to target (default: first one in the directory)",
    )
    traffic.add_argument(
        "--qps", type=float, action="append", default=None, metavar="QPS",
        help="offered load level to measure (repeat; default 50 100 200)",
    )
    traffic.add_argument(
        "--duration", type=float, default=5.0,
        help="seconds of schedule per load level",
    )
    traffic.add_argument("--seed", type=int, default=0, help="schedule seed")
    traffic.add_argument(
        "--diurnal-amplitude", type=float, default=0.3,
        help="rate swing as a fraction of qps over one diurnal period",
    )
    traffic.add_argument(
        "--burst-rate", type=float, default=0.2,
        help="burst windows per second (each multiplies the rate)",
    )
    traffic.add_argument(
        "--slow-fraction", type=float, default=0.0,
        help="fraction of events sent as slow clients (trickled bytes)",
    )
    traffic.add_argument(
        "--workers", type=int, default=16, help="driver worker threads"
    )
    traffic.add_argument(
        "--max-inflight", type=int, default=8,
        help="server concurrency limit for the temporary server",
    )
    traffic.add_argument(
        "--no-qos", action="store_true",
        help="measure a flat admission gate instead of QoS tiers",
    )
    traffic.add_argument(
        "--save-trace", default=None, metavar="PATH",
        help="write each level's schedule to PATH.<qps>.jsonl and exit "
        "without driving (pair with --replay-trace)",
    )
    traffic.add_argument(
        "--replay-trace", default=None, metavar="PATH",
        help="replay one JSONL trace instead of generating schedules",
    )
    traffic.add_argument(
        "--smoke", action="store_true",
        help="tiny fast sweep (CI wiring check, not a measurement)",
    )
    traffic.set_defaults(handler=_cmd_traffic)

    delta = commands.add_parser(
        "delta",
        help="merge an appended XML fragment into a synopsis (live upload "
        "or offline snapshot rewrite) without a full rebuild",
    )
    delta.add_argument("synopsis", help="synopsis name to apply the delta to")
    delta.add_argument(
        "--fragment", required=True,
        help="XML fragment file of appended top-level subtrees ('-' = stdin)",
    )
    delta.add_argument(
        "--root-tag", default=None,
        help="root element of the served document (server mode only; the "
        "fragment's subtrees are scanned as its children)",
    )
    delta.add_argument("--host", default="127.0.0.1")
    delta.add_argument(
        "--port", type=int, default=8750,
        help="service or router port for the live upload",
    )
    delta.add_argument(
        "--snapshot-dir", default=None,
        help="offline mode: apply to <dir>/<synopsis>.json and write it "
        "back instead of uploading",
    )
    delta.add_argument(
        "--force-refresh", action="store_true",
        help="refresh histograms even below the drift threshold",
    )
    delta.add_argument(
        "--lenient", action="store_true",
        help="recover past malformed XML in the fragment",
    )
    delta.add_argument(
        "--dry-run", action="store_true",
        help="scan and report the delta without uploading/writing",
    )
    delta.set_defaults(handler=_cmd_delta)

    router = commands.add_parser(
        "router",
        help="serve a scatter-gather front over N estimation backends",
    )
    router.add_argument(
        "--backend", action="append", required=True, metavar="HOST:PORT",
        help="estimation backend address (repeat for each instance)",
    )
    router.add_argument("--host", default="127.0.0.1")
    router.add_argument(
        "--port", type=int, default=8760, help="router TCP port (0 = ephemeral)"
    )
    router.add_argument(
        "--replication", type=int, default=2,
        help="distinct backends holding each synopsis",
    )
    router.add_argument(
        "--vnodes", type=int, default=64,
        help="virtual nodes per backend on the consistent-hash ring",
    )
    router.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-backend request timeout in seconds",
    )
    router.add_argument(
        "--scatter-min", type=int, default=4,
        help="batch size at which batches scatter across the replica set",
    )
    router.set_defaults(handler=_cmd_router)

    slowlog = commands.add_parser(
        "slowlog", help="show a running server's slow-query log"
    )
    slowlog.add_argument("--host", default="127.0.0.1")
    slowlog.add_argument("--port", type=int, default=8750)
    slowlog.add_argument(
        "--limit", type=int, default=10, help="entries to show per section"
    )
    slowlog.add_argument(
        "--by", choices=("recent", "latency", "error"), default="latency",
        help="which board to print",
    )
    slowlog.set_defaults(handler=_cmd_slowlog)

    report = commands.add_parser(
        "report", help="stitch bench_results/ into one reproduction report"
    )
    report.add_argument("--results-dir", default="bench_results")
    report.add_argument("--output", default=None, help="write to a file instead of stdout")
    report.set_defaults(handler=_cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
