"""Single-pass streaming statistics collection over an XML event stream.

The paper collects both statistics tables "in one document scan"
(Section 3); the tree pipeline approximates that with one parse plus three
tree walks (labeling, PathId-Frequency, Path-Order), holding the whole
:class:`~repro.xmltree.document.XmlDocument` in memory.  This module does
the literal thing: it consumes the :func:`repro.xmltree.parser.scan_events`
token stream and maintains *only*

* the open-element stack (tag + path-id accumulator per frame),
* the (tag, path id) sequence of each **open** sibling group — needed
  because an element's *before* relations depend on siblings that have
  not arrived yet, and
* the output statistics themselves.

Peak memory is therefore bounded by the document's depth, its widest
open sibling-group chain and the synopsis size — not by the element count.

Path-id bit layout
------------------

The final layout puts encoding ``e`` at bit ``width - e`` (MSB = encoding
1), but ``width`` is unknown until the scan ends, so the collector interns
paths on first *leaf close* and uses the provisional layout
``bit = encoding - 1``.  :mod:`repro.build.merge` translates provisional
partials into the final layout — the same remap that aligns shard-local
encodings during a parallel build.  First-leaf-close order equals
first-occurrence order of ``XmlDocument.distinct_root_to_leaf_paths``
(a leaf closes before any later leaf opens), which is what makes the
streaming build *bit-identical* to the tree build.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

from repro.errors import BuildError
from repro.stats.path_order import TagOrderGrid, scan_sibling_group
from repro.xmltree.parser import EVENT_START, scan_events


class SiblingRecord(NamedTuple):
    """A completed element as seen by its parent's sibling group."""

    tag: str
    pid: int


class _Frame:
    """One open element: its tag, path-id accumulator and child records."""

    __slots__ = ("tag", "pid", "children")

    def __init__(self, tag: str):
        self.tag = tag
        self.pid = 0  # stays 0 for label-path leaves
        self.children: List[SiblingRecord] = []


class PartialSynopsis:
    """Provisional-layout statistics from one streamed scan.

    Attributes
    ----------
    paths:
        Shard-local encoding table: distinct root-to-leaf label paths in
        first-occurrence (leaf close) order; encoding ``e`` is
        ``paths[e-1]`` and owns provisional bit ``e - 1``.
    freq:
        ``{tag: {pid: count}}`` in the provisional layout.
    grids:
        Per-tag :class:`TagOrderGrid` for every *complete* sibling group.
    top:
        Shard mode only: the (tag, pid) record of each top-level subtree
        in document order.  The reducer stitches the root's split sibling
        group back together from these.  ``None`` for a whole-document
        scan.
    element_count:
        Elements contributing to ``freq`` (excludes the synthetic root of
        shard mode — the reducer adds it back exactly once).
    """

    __slots__ = ("paths", "freq", "grids", "top", "element_count")

    def __init__(
        self,
        paths: List[str],
        freq: Dict[str, Dict[int, int]],
        grids: Dict[str, TagOrderGrid],
        top: Optional[List[SiblingRecord]],
        element_count: int,
    ):
        self.paths = paths
        self.freq = freq
        self.grids = grids
        self.top = top
        self.element_count = element_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PartialSynopsis %d paths, %d tags, %d elements>" % (
            len(self.paths),
            len(self.freq),
            self.element_count,
        )


class StreamingCollector:
    """Feed start/end element events; harvest a :class:`PartialSynopsis`.

    ``prefix`` is the label path *enclosing* the streamed fragment.  Empty
    for a whole document; ``[root_tag]`` for a shard of top-level
    subtrees, so the shard's leaves still intern full root-to-leaf paths.
    """

    def __init__(self, prefix: Sequence[str] = ()):
        self._labels: List[str] = list(prefix)
        self._stack: List[_Frame] = []
        self._paths: List[str] = []
        self._path_index: Dict[str, int] = {}
        self._freq: Dict[str, Dict[int, int]] = {}
        self._grids: Dict[str, TagOrderGrid] = {}
        self._top: Optional[List[SiblingRecord]] = [] if prefix else None
        self._element_count = 0

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------

    def start(self, tag: str) -> None:
        self._labels.append(tag)
        self._stack.append(_Frame(tag))

    def end(self, tag: str) -> None:
        frame = self._stack.pop()
        self._labels.pop()
        if frame.pid:
            pid = frame.pid
        else:
            # A label-path leaf: its path id is the single bit of its
            # root-to-leaf path, interned on first occurrence.
            path = "/".join(self._labels) + "/" + tag if self._labels else tag
            encoding = self._path_index.get(path)
            if encoding is None:
                self._paths.append(path)
                encoding = len(self._paths)
                self._path_index[path] = encoding
            pid = 1 << (encoding - 1)
        per_tag = self._freq.setdefault(tag, {})
        per_tag[pid] = per_tag.get(pid, 0) + 1
        self._element_count += 1
        # This element's own sibling group is now complete.
        scan_sibling_group(frame.children, lambda record: record.pid, self._grid_for)
        if self._stack:
            parent = self._stack[-1]
            parent.pid |= pid
            parent.children.append(SiblingRecord(tag, pid))
        elif self._top is not None:
            self._top.append(SiblingRecord(tag, pid))

    def consume(self, events: Iterable[Tuple[str, str]]) -> "StreamingCollector":
        start, end = self.start, self.end
        for kind, tag in events:
            if kind == EVENT_START:
                start(tag)
            else:
                end(tag)
        return self

    # ------------------------------------------------------------------
    # Harvest
    # ------------------------------------------------------------------

    def finish(self) -> PartialSynopsis:
        if self._stack:
            raise BuildError(
                "scan ended with %d unclosed element(s); first open: <%s>"
                % (len(self._stack), self._stack[0].tag)
            )
        if not self._paths:
            raise BuildError("scan produced no elements")
        return PartialSynopsis(
            self._paths, self._freq, self._grids, self._top, self._element_count
        )

    # ------------------------------------------------------------------

    def _grid_for(self, tag: str) -> TagOrderGrid:
        grid = self._grids.get(tag)
        if grid is None:
            grid = TagOrderGrid(tag)
            self._grids[tag] = grid
        return grid


def scan_text(
    text: str,
    prefix: Sequence[str] = (),
    lenient: bool = False,
    on_recover=None,
) -> PartialSynopsis:
    """One streamed scan of ``text`` into a provisional partial synopsis.

    ``prefix`` empty: ``text`` must be a whole document (one root).
    ``prefix`` non-empty: ``text`` is a fragment — a run of sibling
    subtrees living directly under the prefix path (shard mode).

    ``lenient=True`` scans damaged input with
    :func:`repro.build.lenient.lenient_events` instead of aborting on
    the first malformed region; each recovery is reported through
    ``on_recover(offset, message)``.
    """
    collector = StreamingCollector(prefix)
    if lenient:
        from repro.build.lenient import lenient_events

        events = lenient_events(text, fragment=bool(prefix), on_recover=on_recover)
    else:
        events = scan_events(text, fragment=bool(prefix))
    return collector.consume(events).finish()
