"""Reduce provisional partial synopses into final whole-document tables.

Three steps, all exact:

1. **Encoding-table union** — concatenate the shard-local path lists in
   shard (= document) order, keeping first occurrences.  Because shards
   are contiguous document slices, this reproduces the tree pipeline's
   first-occurrence order exactly.
2. **Bit remap** — shard-local provisional bit ``e_local - 1`` becomes
   final bit ``width - e_global`` (MSB = encoding 1, the
   :mod:`repro.pathenc` layout).  Every path id in every table is pushed
   through the injective per-shard bit map (memoized per distinct id —
   synopsis tables hold few distinct ids relative to element count).
3. **Table merge** — remapped partial tables sum via
   :meth:`PathIdFrequencyTable.merge` / :meth:`PathOrderTable.merge`.
   The root element's tuple and its split sibling group exist in *no*
   shard; the reducer reconstitutes both from the shards' top-level
   (tag, pid) sequences.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Sequence

from repro.errors import BuildError
from repro.build.stream import PartialSynopsis, SiblingRecord
from repro.pathenc.encoding import EncodingTable
from repro.stats.path_order import PathOrderTable, TagOrderGrid, scan_sibling_group
from repro.stats.pathid_freq import PathIdFrequencyTable


class SynopsisTables(NamedTuple):
    """Everything the estimation system needs, in the final bit layout."""

    encoding_table: EncodingTable
    pathid_table: PathIdFrequencyTable
    order_table: PathOrderTable
    distinct_pathids: List[int]
    element_count: int


class BodyTables(NamedTuple):
    """Merged shard statistics *before* root reconstitution.

    The final bit layout, but the root element's frequency tuple and the
    root sibling group's order cells are still absent — instead the full
    ``top`` record sequence is kept, so more top-level subtrees can be
    appended later and the root re-derived exactly.  This is the state an
    incremental synopsis (:mod:`repro.cluster.delta`) maintains between
    delta applications.
    """

    paths: List[str]
    pathid_table: PathIdFrequencyTable
    order_table: PathOrderTable
    top: List[SiblingRecord]
    element_count: int


def bit_remapper(bit_map: Sequence[int]) -> Callable[[int], int]:
    """A memoized path-id translator from ``bit_map[local] -> final`` bits."""
    cache: Dict[int, int] = {}

    def remap(pid: int) -> int:
        mapped = cache.get(pid)
        if mapped is None:
            mapped = 0
            rest = pid
            while rest:
                low = rest & -rest
                rest ^= low
                mapped |= 1 << bit_map[low.bit_length() - 1]
            cache[pid] = mapped
        return mapped

    return remap


def merge_partials(
    partials: Sequence[PartialSynopsis],
    root_tag: Optional[str] = None,
) -> SynopsisTables:
    """Reduce ordered partials to one synopsis' exact tables.

    ``root_tag`` must be given exactly when the partials are shard scans
    (their ``top`` sequences are set): the reducer then re-creates the
    root's frequency tuple and its children's sibling-group order cells.
    For a single whole-document partial pass ``root_tag=None``.
    """
    if not partials:
        raise BuildError("no partial synopses to merge")
    sharded = partials[0].top is not None
    if sharded != (root_tag is not None):
        raise BuildError(
            "root_tag must be provided for shard partials and only for them"
        )
    # 1. Global encoding table: first occurrence across shards in order.
    paths: List[str] = []
    index: Dict[str, int] = {}
    for partial in partials:
        if (partial.top is not None) != sharded:
            raise BuildError("cannot mix shard and whole-document partials")
        for path in partial.paths:
            if path not in index:
                paths.append(path)
                index[path] = len(paths)
    width = len(paths)
    # 2+3. Remap each partial into the final layout and merge.
    freq_parts: List[PathIdFrequencyTable] = []
    order_parts: List[PathOrderTable] = []
    top_sequence: List[SiblingRecord] = []
    element_count = 0
    for partial in partials:
        bit_map = [width - index[path] for path in partial.paths]
        remap = bit_remapper(bit_map)
        freq_parts.append(PathIdFrequencyTable(partial.freq).remap_pathids(remap))
        order_parts.append(PathOrderTable(partial.grids).remap_pathids(remap))
        element_count += partial.element_count
        if partial.top:
            top_sequence.extend(
                SiblingRecord(record.tag, remap(record.pid)) for record in partial.top
            )
    pathid_table = freq_parts[0].merge(*freq_parts[1:])
    order_table = order_parts[0].merge(*order_parts[1:])
    if sharded:
        return reconstitute(
            BodyTables(paths, pathid_table, order_table, top_sequence, element_count),
            root_tag,
        )
    return SynopsisTables(
        EncodingTable(paths),
        pathid_table,
        order_table,
        pathid_table.distinct_pathids(),
        element_count,
    )


def merge_shard_bodies(partials: Sequence[PartialSynopsis]) -> BodyTables:
    """Reduce ordered *shard* partials to merged body tables.

    The same union/remap/merge as :func:`merge_partials`, stopping short
    of root reconstitution: the result keeps the combined ``top``
    sequence so further shards (deltas appended at the document's end)
    can merge in later with the root re-derived exactly each time.
    """
    if not partials:
        raise BuildError("no partial synopses to merge")
    paths: List[str] = []
    index: Dict[str, int] = {}
    for partial in partials:
        if partial.top is None:
            raise BuildError(
                "body merge needs shard partials (scanned under a root prefix)"
            )
        for path in partial.paths:
            if path not in index:
                paths.append(path)
                index[path] = len(paths)
    width = len(paths)
    freq_parts: List[PathIdFrequencyTable] = []
    order_parts: List[PathOrderTable] = []
    top_sequence: List[SiblingRecord] = []
    element_count = 0
    for partial in partials:
        bit_map = [width - index[path] for path in partial.paths]
        remap = bit_remapper(bit_map)
        freq_parts.append(PathIdFrequencyTable(partial.freq).remap_pathids(remap))
        order_parts.append(PathOrderTable(partial.grids).remap_pathids(remap))
        element_count += partial.element_count
        top_sequence.extend(
            SiblingRecord(record.tag, remap(record.pid)) for record in partial.top
        )
    return BodyTables(
        paths,
        freq_parts[0].merge(*freq_parts[1:]),
        order_parts[0].merge(*order_parts[1:]),
        top_sequence,
        element_count,
    )


def reconstitute(body: BodyTables, root_tag: str) -> SynopsisTables:
    """Finalize body tables into servable synopsis tables.

    Adds the one element no shard could see — the root — from the body's
    ``top`` sequence.  Pure: the body tables are not consumed, so an
    incremental synopsis can reconstitute after every delta batch.
    """
    pathid_table, order_table = _reconstitute_root(
        root_tag, body.top, body.pathid_table, body.order_table
    )
    return SynopsisTables(
        EncodingTable(body.paths),
        pathid_table,
        order_table,
        pathid_table.distinct_pathids(),
        body.element_count + 1,
    )


def _reconstitute_root(
    root_tag: str,
    top_sequence: List[SiblingRecord],
    pathid_table: PathIdFrequencyTable,
    order_table: PathOrderTable,
) -> "tuple[PathIdFrequencyTable, PathOrderTable]":
    """Add the statistics no shard could see: the root element itself.

    The root's path id is the OR of its children's (an internal node's id
    accumulates its subtree's leaf bits), and the root's children form the
    one sibling group that straddles shard boundaries.
    """
    if not top_sequence:
        raise BuildError("shard partials carried no top-level subtrees")
    root_pid = 0
    for record in top_sequence:
        root_pid |= record.pid
    root_freq = PathIdFrequencyTable({root_tag: {root_pid: 1}})
    grids: Dict[str, TagOrderGrid] = {}

    def grid_for(tag: str) -> TagOrderGrid:
        grid = grids.get(tag)
        if grid is None:
            grid = TagOrderGrid(tag)
            grids[tag] = grid
        return grid

    scan_sibling_group(top_sequence, lambda record: record.pid, grid_for)
    return (
        pathid_table.merge(root_freq),
        order_table.merge(PathOrderTable(grids)),
    )
