"""Memory-bounded splitting of XML text into parallel-scannable shards.

Path-level statistics are naturally shardable (Arion et al., *Path
Summaries and Path Partitioning*): cutting a document under its root
yields fragments whose partial tables simply merge.  The chunker finds the
byte spans of the root's top-level subtrees with a purely lexical skip
(no tree, no attribute decoding — dominated by ``str.find``) and groups
*contiguous* spans into shards:

* ``shard_bytes`` caps a shard's text size (the memory bound — a worker
  never holds more than one shard's text plus its partial tables);
* ``shard_count`` balances the document into roughly equal shards when no
  byte cap is given.

Shards stay in document order, which is what keeps the merged encoding
table's first-occurrence order — and therefore every path id — identical
to a single scan.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Tuple

from repro.errors import BuildError
from repro.xmltree.parser import (
    XmlParseError,
    _Scanner,
    _skip_attributes,
    _skip_element,
    _skip_misc,
)

#: Default shard-size cap: large enough that per-shard fixed costs
#: (process dispatch, table pickling) stay negligible, small enough that a
#: pool of workers load-balances a skewed document.
DEFAULT_SHARD_BYTES = 4 * 1024 * 1024


class DocumentOutline(NamedTuple):
    """The root tag and the byte spans of its top-level subtrees."""

    root_tag: str
    spans: List[Tuple[int, int]]  # (start, end) of each root child


def outline(text: str) -> DocumentOutline:
    """Locate the root element and the spans of its direct children.

    Raises :class:`~repro.xmltree.parser.XmlParseError` on text that is
    not a well-formed-enough document (full well-formedness of a shard's
    interior is checked later, by the scan that consumes it).
    """
    scanner = _Scanner(text)
    _skip_misc(scanner, allow_doctype=True)
    if scanner.eof() or scanner.peek() != "<":
        raise XmlParseError("expected a root element", scanner.pos)
    scanner.expect("<")
    root_tag = scanner.read_name()
    _skip_attributes(scanner)
    if scanner.startswith("/>"):
        scanner.pos += 2
        return DocumentOutline(root_tag, [])
    scanner.expect(">")
    spans: List[Tuple[int, int]] = []
    while True:
        angle = text.find("<", scanner.pos)
        if angle < 0:
            raise XmlParseError("missing end tag for <%s>" % root_tag, scanner.pos)
        scanner.pos = angle
        if scanner.startswith("</"):
            scanner.pos += 2
            closing = scanner.read_name()
            if closing != root_tag:
                raise XmlParseError(
                    "mismatched end tag </%s> for <%s>" % (closing, root_tag), angle
                )
            scanner.skip_whitespace()
            scanner.expect(">")
            break
        if scanner.startswith("<!--"):
            scanner.pos += 4
            scanner.read_until("-->", "comment")
        elif scanner.startswith("<![CDATA["):
            scanner.pos += 9
            scanner.read_until("]]>", "CDATA section")
        elif scanner.startswith("<?"):
            scanner.pos += 2
            scanner.read_until("?>", "processing instruction")
        else:
            start = scanner.pos
            _skip_element(scanner)
            spans.append((start, scanner.pos))
    _skip_misc(scanner, allow_doctype=False)
    if not scanner.eof():
        raise XmlParseError("content after the root element", scanner.pos)
    return DocumentOutline(root_tag, spans)


def split_text(
    text: str,
    shard_count: Optional[int] = None,
    shard_bytes: Optional[int] = None,
) -> Tuple[str, List[str]]:
    """Split document text into ``(root_tag, shard_texts)``.

    Each shard text is a contiguous slice covering one or more top-level
    subtrees (inter-subtree character data rides along; the fragment
    scanner ignores it).  A document whose root has at most one child
    cannot be split and comes back as a single shard containing all of
    its children.
    """
    if shard_count is None and shard_bytes is None:
        raise BuildError("split_text needs shard_count or shard_bytes")
    parsed = outline(text)
    if not parsed.spans:
        raise BuildError(
            "document root <%s> has no child elements to shard" % parsed.root_tag
        )
    groups = group_spans(parsed.spans, shard_count=shard_count, shard_bytes=shard_bytes)
    shards = [text[spans[0][0]:spans[-1][1]] for spans in groups]
    return parsed.root_tag, shards


def group_spans(
    spans: List[Tuple[int, int]],
    shard_count: Optional[int] = None,
    shard_bytes: Optional[int] = None,
) -> List[List[Tuple[int, int]]]:
    """Group contiguous spans into shards, preserving order.

    With ``shard_bytes`` set, a shard closes once it reaches that many
    bytes (a single over-sized subtree still becomes its own shard — it
    cannot be split below subtree granularity).  Otherwise the total byte
    length is balanced across ``shard_count`` shards.
    """
    if not spans:
        return []
    if shard_bytes is None:
        total = spans[-1][1] - spans[0][0]
        target = max(1, total // max(1, shard_count or 1))
    else:
        target = max(1, shard_bytes)
    groups: List[List[Tuple[int, int]]] = []
    current: List[Tuple[int, int]] = []
    current_bytes = 0
    for span in spans:
        current.append(span)
        current_bytes += span[1] - span[0]
        if current_bytes >= target and (
            shard_bytes is not None or len(groups) + 1 < (shard_count or 1)
        ):
            groups.append(current)
            current = []
            current_bytes = 0
    if current:
        groups.append(current)
    return groups
