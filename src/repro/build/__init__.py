"""Streaming, sharded synopsis construction (see DESIGN notes in builder).

The public surface is :class:`SynopsisBuilder` and :func:`build_synopsis`
(both re-exported from :mod:`repro`); the lower layers — event stream
collection, text chunking, partial-table merging — are exported here for
tests and for pipelines that want to run the map/reduce steps themselves.
"""

from repro.build.builder import SynopsisBuilder, build_synopsis
from repro.build.chunker import (
    DEFAULT_SHARD_BYTES,
    DocumentOutline,
    group_spans,
    outline,
    split_text,
)
from repro.build.merge import SynopsisTables, bit_remapper, merge_partials
from repro.build.stream import (
    PartialSynopsis,
    SiblingRecord,
    StreamingCollector,
    scan_text,
)

__all__ = [
    "SynopsisBuilder",
    "build_synopsis",
    "DEFAULT_SHARD_BYTES",
    "DocumentOutline",
    "group_spans",
    "outline",
    "split_text",
    "SynopsisTables",
    "bit_remapper",
    "merge_partials",
    "PartialSynopsis",
    "SiblingRecord",
    "StreamingCollector",
    "scan_text",
]
