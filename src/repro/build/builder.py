"""The synopsis construction facade: streaming, sharded, or from a tree.

:class:`SynopsisBuilder` owns the construction-time knobs (variance
thresholds, histogram/binary-tree switches, ``workers``, the shard byte
cap) and builds :class:`~repro.core.system.EstimationSystem` instances
from any source shape:

* :meth:`from_text` — one streaming scan (``workers=1``) or a chunked
  ``multiprocessing`` fan-out (``workers>1``) over the XML text; the
  document tree is never materialized either way;
* :meth:`from_file` — :meth:`from_text` over a file's contents;
* :meth:`from_shards` — pre-cut fragment texts (for example produced by
  an upstream pipeline or another machine), reduced with the same merge;
* :meth:`from_document` — the classic in-memory tree pipeline, for
  callers that already hold an :class:`~repro.xmltree.document.XmlDocument`.

:func:`build_synopsis` is the one-call convenience the package exports:
it dispatches on the source's type (XML text / filesystem path /
document) and returns a ready estimation system.

Parallel builds are **bit-identical** to serial and to tree builds: the
chunker cuts contiguous top-level spans, every worker scans its shard in
isolation, and the reducer re-aligns shard-local encodings before merging
(see :mod:`repro.build.merge`).  If a worker pool cannot be spawned (no
``fork``/``spawn`` support in the host environment), the builder degrades
to scanning the shards serially in-process and still merges the same
partials.

Fault recovery
--------------

The parallel fan-out is *supervised*: a shard whose worker crashes, is
killed, or exceeds ``shard_timeout_s`` is resubmitted to a fresh pool, up
to ``worker_retries`` extra rounds; shards that still fail are scanned
in-process (slow but certain), so a flaky pool can delay a build but not
change its result — partials merge by shard index, keeping the output
bit-identical to the serial scan.  A shard whose *content* fails to parse
is different: that failure is deterministic, so it is raised immediately
as :class:`ShardScanError` with the shard index and the byte offset of
the damage — unless ``lenient=True``, in which case the scanner recovers
past malformed regions (:mod:`repro.build.lenient`) and the incidents are
reported in :attr:`SynopsisBuilder.last_recoveries` for in-process scans.
"""

from __future__ import annotations

import os
import time
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple, Union

from repro._compat import positional_shim
from repro.build.chunker import DEFAULT_SHARD_BYTES, split_text
from repro.build.merge import (
    BodyTables,
    SynopsisTables,
    merge_partials,
    merge_shard_bodies,
)
from repro.build.stream import PartialSynopsis, scan_text
from repro.errors import BuildError, ParseError
from repro.obs.trace import NULL_TRACER
from repro.reliability import faults
from repro.xmltree.document import XmlDocument

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports build)
    from repro.core.system import EstimationSystem

SourceType = Union[str, "os.PathLike[str]", XmlDocument]

#: A shard scan that produces nothing for this long is presumed lost
#: (crashed or hung worker) and resubmitted.
DEFAULT_SHARD_TIMEOUT_S = 120.0

#: Extra pool rounds for lost shards before the in-process fallback.
DEFAULT_WORKER_RETRIES = 2

#: (index, shard text, prefix labels, lenient) — the unit of pool work.
_ShardJob = Tuple[int, str, Tuple[str, ...], bool]


class ShardScanError(BuildError):
    """One shard's content failed to scan (deterministically).

    ``shard_index`` is the shard's position in document order;
    ``offset`` is the byte offset of the damage *within that shard's
    text* (None when the underlying failure carried no position).
    """

    def __init__(self, shard_index: int, offset: Optional[int], cause: BaseException):
        where = "" if offset is None else " at shard byte offset %d" % offset
        super().__init__(
            "shard %d failed to scan%s: %s" % (shard_index, where, cause)
        )
        self.shard_index = shard_index
        self.offset = offset

    def __reduce__(self):
        return (_restore_shard_scan_error, (str(self), self.shard_index, self.offset))


def _restore_shard_scan_error(
    message: str, shard_index: int, offset: Optional[int]
) -> "ShardScanError":
    error = ShardScanError.__new__(ShardScanError)
    BuildError.__init__(error, message)
    error.shard_index = shard_index
    error.offset = offset
    return error


def _shutdown_executor(executor) -> None:
    """Abandon a pool without waiting on its (possibly hung) workers."""
    processes = list((getattr(executor, "_processes", None) or {}).values())
    executor.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        if process.is_alive():
            process.terminate()


def _scan_shard(job: _ShardJob) -> PartialSynopsis:
    """Worker entry point: scan one shard text under its prefix labels.

    Module level so it pickles under both ``fork`` and ``spawn`` start
    methods.  The fault point lets the reliability suite crash or stall
    this exact process deterministically.
    """
    index, text, prefix, lenient = job
    faults.worker_fault_point()
    return scan_text(text, prefix, lenient=lenient)


class SynopsisBuilder:
    """Builds estimation systems without materializing document trees.

    Parameters mirror :meth:`EstimationSystem.build`; the additions are

    workers:
        Scan processes.  ``1`` streams the whole text on the calling
        thread; ``N > 1`` chunks the text and fans the shards out over a
        supervised process pool of ``N`` workers.
    shard_bytes:
        Shard-size cap for the chunker (default 4 MiB).  Peak memory of a
        parallel build is roughly ``workers * shard_bytes`` of shard text
        plus the partial tables, independent of document size.
    shard_timeout_s:
        Per pool round, how long to wait for shard results before the
        still-missing shards are presumed lost and resubmitted.
    worker_retries:
        Extra pool rounds for lost shards; once exhausted, survivors are
        scanned in-process.
    lenient:
        Recover past malformed XML instead of raising; incidents land in
        :attr:`last_recoveries` (in-process scans report exact offsets;
        pool workers recover silently).
    """

    def __init__(
        self,
        *args,
        p_variance: float = 0.0,
        o_variance: float = 0.0,
        use_histograms: bool = True,
        build_binary_tree: bool = True,
        workers: int = 1,
        shard_bytes: int = DEFAULT_SHARD_BYTES,
        shard_timeout_s: float = DEFAULT_SHARD_TIMEOUT_S,
        worker_retries: int = DEFAULT_WORKER_RETRIES,
        lenient: bool = False,
        tracer=NULL_TRACER,
    ):
        if args:
            (p_variance, o_variance, use_histograms, build_binary_tree,
             workers, shard_bytes, shard_timeout_s, worker_retries,
             lenient) = positional_shim(
                "SynopsisBuilder",
                args,
                ("p_variance", "o_variance", "use_histograms",
                 "build_binary_tree", "workers", "shard_bytes",
                 "shard_timeout_s", "worker_retries", "lenient"),
                (p_variance, o_variance, use_histograms, build_binary_tree,
                 workers, shard_bytes, shard_timeout_s, worker_retries,
                 lenient),
            )
        if workers < 1:
            raise BuildError("workers must be >= 1, got %r" % (workers,))
        if shard_bytes < 1:
            raise BuildError("shard_bytes must be positive, got %r" % (shard_bytes,))
        if shard_timeout_s <= 0:
            raise BuildError(
                "shard_timeout_s must be positive, got %r" % (shard_timeout_s,)
            )
        if worker_retries < 0:
            raise BuildError(
                "worker_retries must be >= 0, got %r" % (worker_retries,)
            )
        self.p_variance = p_variance
        self.o_variance = o_variance
        self.use_histograms = use_histograms
        self.build_binary_tree = build_binary_tree
        self.workers = workers
        self.shard_bytes = shard_bytes
        self.shard_timeout_s = shard_timeout_s
        self.worker_retries = worker_retries
        self.lenient = lenient
        #: Build-phase tracer; a live :class:`repro.obs.trace.Tracer`
        #: accrues per-shard ``scan`` spans and a ``merge`` span.
        self.tracer = tracer
        #: ``(offset, message)`` recovery incidents from the most recent
        #: lenient in-process scan (offsets are scan-local).
        self.last_recoveries: List[Tuple[int, str]] = []

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def build(self, source: SourceType, name: str = "") -> "EstimationSystem":
        """Dispatch on the source shape: document, XML text, or path."""
        if isinstance(source, XmlDocument):
            return self.from_document(source)
        if isinstance(source, os.PathLike):
            return self.from_file(os.fspath(source), name=name)
        if isinstance(source, str):
            if source.lstrip()[:1] == "<":
                return self.from_text(source, name=name)
            if os.path.exists(source):
                return self.from_file(source, name=name)
            raise BuildError(
                "source string is neither XML text (no leading '<') nor an "
                "existing file: %r" % source[:80]
            )
        raise BuildError(
            "unsupported synopsis source type %s" % type(source).__name__
        )

    def from_text(self, text: str, name: str = "") -> "EstimationSystem":
        """Build from XML text with ``workers`` scan processes."""
        return self._finalize(self.collect_text(text), name=name)

    def from_file(self, path: str, name: str = "") -> "EstimationSystem":
        """Build from an XML file (streamed; the tree is never built).

        The synopsis name defaults to the file's stem.
        """
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        if not name:
            name = os.path.splitext(os.path.basename(path))[0]
        return self.from_text(text, name=name)

    def from_shards(
        self, shards: Iterable[str], root_tag: str, name: str = ""
    ) -> "EstimationSystem":
        """Build from pre-cut fragment texts under a shared root tag.

        Each shard is a run of *complete* top-level subtrees of the
        document, and the iterable must yield them in document order —
        the reducer trusts that order for both the encoding table and the
        root sibling group.
        """
        shard_list = list(shards)
        if not shard_list:
            raise BuildError("from_shards needs at least one shard")
        self.last_recoveries = []
        partials = self._scan_all(shard_list, (root_tag,))
        return self._finalize(self._merge_traced(partials, root_tag=root_tag), name=name)

    def from_document(self, document: XmlDocument) -> "EstimationSystem":
        """The classic tree pipeline (document already materialized)."""
        from repro.core.system import EstimationSystem

        return EstimationSystem.build(
            document,
            p_variance=self.p_variance,
            o_variance=self.o_variance,
            use_histograms=self.use_histograms,
            build_binary_tree=self.build_binary_tree,
        )

    # ------------------------------------------------------------------
    # Statistics collection (no system construction)
    # ------------------------------------------------------------------

    def collect_text(self, text: str) -> SynopsisTables:
        """Collect the exact tables from text; streaming or sharded."""
        self.last_recoveries = []
        if self.workers == 1:
            return self._merge_traced([self._scan_local((0, text, (), self.lenient))])
        try:
            root_tag, shards = split_text(text, shard_bytes=self._shard_target(text))
        except ParseError:
            # The chunker needs well-formed top-level structure; damaged
            # input can only be scanned leniently in one pass.
            if not self.lenient:
                raise
            return self._merge_traced([self._scan_local((0, text, (), True))])
        except BuildError:
            # Unshardable shape (e.g. a root with a single huge child):
            # fall back to the single-pass scan.
            return self._merge_traced([self._scan_local((0, text, (), self.lenient))])
        if len(shards) == 1:
            return self._merge_traced([self._scan_local((0, text, (), self.lenient))])
        partials = self._scan_all(shards, (root_tag,))
        return self._merge_traced(partials, root_tag=root_tag)

    def collect_body(self, text: str) -> Tuple[str, BodyTables]:
        """Collect merged body tables plus the root tag from document text.

        The delta-capable collection path: the document is always cut
        into root-prefixed shards (even with ``workers=1``) and reduced
        *without* root reconstitution, so the returned
        :class:`~repro.build.merge.BodyTables` keeps the top-level record
        sequence that incremental maintenance appends to.  Reconstituting
        the result (:func:`repro.build.merge.reconstitute`) yields tables
        bit-identical to :meth:`collect_text` on the same input.

        Raises :class:`BuildError` for documents the chunker cannot cut
        (a root with no child elements) — such documents cannot take
        appended top-level subtrees either.
        """
        self.last_recoveries = []
        root_tag, shards = split_text(text, shard_bytes=self._shard_target(text))
        partials = self._scan_all(shards, (root_tag,))
        with self.tracer.span("merge") as span:
            span.incr("partials", len(partials))
            return root_tag, merge_shard_bodies(partials)

    def _merge_traced(self, partials, root_tag=None) -> SynopsisTables:
        with self.tracer.span("merge") as span:
            span.incr("partials", len(partials))
            if root_tag is None:
                return merge_partials(partials)
            return merge_partials(partials, root_tag=root_tag)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _shard_target(self, text: str) -> int:
        """Shard size: honour the cap, but aim for ~2 shards per worker
        so a skewed document still keeps every worker busy."""
        balanced = max(1, len(text) // (self.workers * 2))
        return min(self.shard_bytes, balanced) if self.workers > 1 else self.shard_bytes

    def _scan_all(
        self, shards: Sequence[str], prefix: Tuple[str, ...]
    ) -> List[PartialSynopsis]:
        jobs: List[_ShardJob] = [
            (index, shard, prefix, self.lenient) for index, shard in enumerate(shards)
        ]
        results: List[Optional[PartialSynopsis]] = [None] * len(jobs)
        pending = jobs
        if self.workers > 1 and len(jobs) > 1:
            pending = self._scan_supervised(jobs, results)
        # Whatever the pool could not deliver — every job when no pool
        # could start, the unlucky shards when retries ran dry — is
        # scanned here, in-process.  Slow, but the merge cannot tell.
        for job in pending:
            results[job[0]] = self._scan_shard_guarded(job)
        return [partial for partial in results if partial is not None]

    def _scan_supervised(
        self, jobs: List[_ShardJob], results: List[Optional[PartialSynopsis]]
    ) -> List[_ShardJob]:
        """Pool rounds with retry; returns the jobs still unscanned."""
        pending = jobs
        for _ in range(self.worker_retries + 1):
            if not pending:
                break
            try:
                pending = self._pool_round(pending, results)
            except (ImportError, OSError):
                # Hosts without process support (restricted sandboxes)
                # still get the sharded-and-merged result, just serially.
                break
        return pending

    def _pool_round(
        self, jobs: List[_ShardJob], results: List[Optional[PartialSynopsis]]
    ) -> List[_ShardJob]:
        """Submit ``jobs`` to a fresh pool; harvest within the round's
        time budget.  Content failures (a shard that cannot parse) raise
        immediately — they are deterministic and retrying cannot help.
        Lost workers (crash, kill, hang) just leave their jobs in the
        returned retry list."""
        import concurrent.futures

        executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.workers, len(jobs))
        )
        failed: List[_ShardJob] = []
        try:
            futures = {}
            try:
                for job in jobs:
                    futures[job[0]] = executor.submit(_scan_shard, job)
            except concurrent.futures.BrokenExecutor:
                # A worker death can land while jobs are still being
                # submitted; the dead pool then refuses the rest.  The
                # unsubmitted jobs retry with a fresh pool (the submitted
                # ones surface the breakage at result() below).
                failed.extend(job for job in jobs if job[0] not in futures)
            by_index = {job[0]: job for job in jobs}
            stop_waiting_at = time.monotonic() + self.shard_timeout_s
            with self.tracer.aggregate("scan") as scan_span:
                for index, future in futures.items():
                    remaining = stop_waiting_at - time.monotonic()
                    try:
                        results[index] = future.result(timeout=max(0.0, remaining))
                        scan_span.incr("shards")
                        scan_span.incr("bytes_scanned", len(by_index[index][1]))
                    except ParseError as error:
                        raise ShardScanError(
                            index, getattr(error, "position", None), error
                        ) from error
                    except BuildError:
                        raise
                    except concurrent.futures.TimeoutError:
                        failed.append(by_index[index])
                    except Exception:
                        # BrokenProcessPool (a worker died and took the
                        # pool with it), a cancelled future, pickling
                        # trouble: all retriable with a fresh pool.
                        failed.append(by_index[index])
        finally:
            _shutdown_executor(executor)
        return failed

    def _scan_local(self, job: _ShardJob) -> PartialSynopsis:
        """In-process scan: the fault point may fail, stall, or damage
        the text; lenient recoveries are recorded with exact offsets."""
        index, text, prefix, lenient = job
        with self.tracer.aggregate("scan") as span:
            span.incr("shards")
            span.incr("bytes_scanned", len(text))
            text = faults.fire("build.scan", text)
            if lenient:
                return scan_text(
                    text, prefix, lenient=True, on_recover=self._record_recovery
                )
            return scan_text(text, prefix)

    def _scan_shard_guarded(self, job: _ShardJob) -> PartialSynopsis:
        try:
            return self._scan_local(job)
        except ShardScanError:
            raise
        except ParseError as error:
            raise ShardScanError(
                job[0], getattr(error, "position", None), error
            ) from error

    def _record_recovery(self, offset: int, message: str) -> None:
        self.last_recoveries.append((offset, message))

    def _finalize(self, tables: SynopsisTables, name: str = "") -> "EstimationSystem":
        from repro.core.system import EstimationSystem

        return EstimationSystem.from_statistics(
            tables.encoding_table,
            tables.pathid_table,
            tables.order_table,
            distinct_pathids=tables.distinct_pathids,
            p_variance=self.p_variance,
            o_variance=self.o_variance,
            use_histograms=self.use_histograms,
            build_binary_tree=self.build_binary_tree,
            name=name,
        )


def build_synopsis(
    source: SourceType,
    *args,
    p_variance: float = 0.0,
    o_variance: float = 0.0,
    use_histograms: bool = True,
    build_binary_tree: bool = True,
    workers: int = 1,
    shard_bytes: int = DEFAULT_SHARD_BYTES,
    shard_timeout_s: float = DEFAULT_SHARD_TIMEOUT_S,
    worker_retries: int = DEFAULT_WORKER_RETRIES,
    lenient: bool = False,
    name: str = "",
    tracer=NULL_TRACER,
) -> "EstimationSystem":
    """Build an :class:`EstimationSystem` from any source in one call.

    ``source`` may be XML text (anything whose first non-space character
    is ``<``), a filesystem path (``str`` or ``os.PathLike``), or an
    already-parsed :class:`~repro.xmltree.document.XmlDocument`.  Text and
    file sources are *streamed* — the document tree is never built — and
    ``workers > 1`` scans large documents in parallel shards.  The result
    is bit-identical across all source shapes and worker counts.

    This is the package's recommended entry point::

        import repro

        system = repro.build_synopsis("catalog.xml", workers=4)
        system.estimate("//item/$name")
    """
    if args:
        (p_variance, o_variance, use_histograms, build_binary_tree,
         workers, shard_bytes, shard_timeout_s, worker_retries,
         lenient, name) = positional_shim(
            "build_synopsis",
            args,
            ("p_variance", "o_variance", "use_histograms",
             "build_binary_tree", "workers", "shard_bytes",
             "shard_timeout_s", "worker_retries", "lenient", "name"),
            (p_variance, o_variance, use_histograms, build_binary_tree,
             workers, shard_bytes, shard_timeout_s, worker_retries,
             lenient, name),
        )
    builder = SynopsisBuilder(
        p_variance=p_variance,
        o_variance=o_variance,
        use_histograms=use_histograms,
        build_binary_tree=build_binary_tree,
        workers=workers,
        shard_bytes=shard_bytes,
        shard_timeout_s=shard_timeout_s,
        worker_retries=worker_retries,
        lenient=lenient,
        tracer=tracer,
    )
    return builder.build(source, name=name)
