"""The synopsis construction facade: streaming, sharded, or from a tree.

:class:`SynopsisBuilder` owns the construction-time knobs (variance
thresholds, histogram/binary-tree switches, ``workers``, the shard byte
cap) and builds :class:`~repro.core.system.EstimationSystem` instances
from any source shape:

* :meth:`from_text` — one streaming scan (``workers=1``) or a chunked
  ``multiprocessing`` fan-out (``workers>1``) over the XML text; the
  document tree is never materialized either way;
* :meth:`from_file` — :meth:`from_text` over a file's contents;
* :meth:`from_shards` — pre-cut fragment texts (for example produced by
  an upstream pipeline or another machine), reduced with the same merge;
* :meth:`from_document` — the classic in-memory tree pipeline, for
  callers that already hold an :class:`~repro.xmltree.document.XmlDocument`.

:func:`build_synopsis` is the one-call convenience the package exports:
it dispatches on the source's type (XML text / filesystem path /
document) and returns a ready estimation system.

Parallel builds are **bit-identical** to serial and to tree builds: the
chunker cuts contiguous top-level spans, every worker scans its shard in
isolation, and the reducer re-aligns shard-local encodings before merging
(see :mod:`repro.build.merge`).  If a worker pool cannot be spawned (no
``fork``/``spawn`` support in the host environment), the builder degrades
to scanning the shards serially in-process and still merges the same
partials.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple, Union

from repro.build.chunker import DEFAULT_SHARD_BYTES, split_text
from repro.build.merge import SynopsisTables, merge_partials
from repro.build.stream import PartialSynopsis, scan_text
from repro.errors import BuildError
from repro.xmltree.document import XmlDocument

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports build)
    from repro.core.system import EstimationSystem

SourceType = Union[str, "os.PathLike[str]", XmlDocument]


def _scan_shard(job: Tuple[str, Tuple[str, ...]]) -> PartialSynopsis:
    """Worker entry point: scan one shard text under its prefix labels.

    Module level so it pickles under both ``fork`` and ``spawn`` start
    methods.
    """
    text, prefix = job
    return scan_text(text, prefix)


class SynopsisBuilder:
    """Builds estimation systems without materializing document trees.

    Parameters mirror :meth:`EstimationSystem.build`; the additions are

    workers:
        Scan processes.  ``1`` streams the whole text on the calling
        thread; ``N > 1`` chunks the text and fans the shards out over a
        ``multiprocessing`` pool of ``N`` processes.
    shard_bytes:
        Shard-size cap for the chunker (default 4 MiB).  Peak memory of a
        parallel build is roughly ``workers * shard_bytes`` of shard text
        plus the partial tables, independent of document size.
    """

    def __init__(
        self,
        p_variance: float = 0.0,
        o_variance: float = 0.0,
        use_histograms: bool = True,
        build_binary_tree: bool = True,
        workers: int = 1,
        shard_bytes: int = DEFAULT_SHARD_BYTES,
    ):
        if workers < 1:
            raise BuildError("workers must be >= 1, got %r" % (workers,))
        if shard_bytes < 1:
            raise BuildError("shard_bytes must be positive, got %r" % (shard_bytes,))
        self.p_variance = p_variance
        self.o_variance = o_variance
        self.use_histograms = use_histograms
        self.build_binary_tree = build_binary_tree
        self.workers = workers
        self.shard_bytes = shard_bytes

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def build(self, source: SourceType, name: str = "") -> "EstimationSystem":
        """Dispatch on the source shape: document, XML text, or path."""
        if isinstance(source, XmlDocument):
            return self.from_document(source)
        if isinstance(source, os.PathLike):
            return self.from_file(os.fspath(source), name=name)
        if isinstance(source, str):
            if source.lstrip()[:1] == "<":
                return self.from_text(source, name=name)
            if os.path.exists(source):
                return self.from_file(source, name=name)
            raise BuildError(
                "source string is neither XML text (no leading '<') nor an "
                "existing file: %r" % source[:80]
            )
        raise BuildError(
            "unsupported synopsis source type %s" % type(source).__name__
        )

    def from_text(self, text: str, name: str = "") -> "EstimationSystem":
        """Build from XML text with ``workers`` scan processes."""
        return self._finalize(self.collect_text(text), name=name)

    def from_file(self, path: str, name: str = "") -> "EstimationSystem":
        """Build from an XML file (streamed; the tree is never built).

        The synopsis name defaults to the file's stem.
        """
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        if not name:
            name = os.path.splitext(os.path.basename(path))[0]
        return self.from_text(text, name=name)

    def from_shards(
        self, shards: Iterable[str], root_tag: str, name: str = ""
    ) -> "EstimationSystem":
        """Build from pre-cut fragment texts under a shared root tag.

        Each shard is a run of *complete* top-level subtrees of the
        document, and the iterable must yield them in document order —
        the reducer trusts that order for both the encoding table and the
        root sibling group.
        """
        shard_list = list(shards)
        if not shard_list:
            raise BuildError("from_shards needs at least one shard")
        partials = self._scan_all(shard_list, (root_tag,))
        return self._finalize(merge_partials(partials, root_tag=root_tag), name=name)

    def from_document(self, document: XmlDocument) -> "EstimationSystem":
        """The classic tree pipeline (document already materialized)."""
        from repro.core.system import EstimationSystem

        return EstimationSystem.build(
            document,
            p_variance=self.p_variance,
            o_variance=self.o_variance,
            use_histograms=self.use_histograms,
            build_binary_tree=self.build_binary_tree,
        )

    # ------------------------------------------------------------------
    # Statistics collection (no system construction)
    # ------------------------------------------------------------------

    def collect_text(self, text: str) -> SynopsisTables:
        """Collect the exact tables from text; streaming or sharded."""
        if self.workers == 1:
            return merge_partials([scan_text(text)])
        try:
            root_tag, shards = split_text(text, shard_bytes=self._shard_target(text))
        except BuildError:
            # Unshardable shape (e.g. a root with a single huge child):
            # fall back to the single-pass scan.
            return merge_partials([scan_text(text)])
        if len(shards) == 1:
            return merge_partials([scan_text(text)])
        partials = self._scan_all(shards, (root_tag,))
        return merge_partials(partials, root_tag=root_tag)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _shard_target(self, text: str) -> int:
        """Shard size: honour the cap, but aim for ~2 shards per worker
        so a skewed document still keeps every worker busy."""
        balanced = max(1, len(text) // (self.workers * 2))
        return min(self.shard_bytes, balanced) if self.workers > 1 else self.shard_bytes

    def _scan_all(
        self, shards: Sequence[str], prefix: Tuple[str, ...]
    ) -> List[PartialSynopsis]:
        jobs = [(shard, prefix) for shard in shards]
        if self.workers > 1 and len(jobs) > 1:
            try:
                import multiprocessing

                with multiprocessing.Pool(min(self.workers, len(jobs))) as pool:
                    return pool.map(_scan_shard, jobs)
            except (ImportError, OSError):
                # Hosts without process support (restricted sandboxes)
                # still get the sharded-and-merged result, just serially.
                pass
        return [_scan_shard(job) for job in jobs]

    def _finalize(self, tables: SynopsisTables, name: str = "") -> "EstimationSystem":
        from repro.core.system import EstimationSystem

        return EstimationSystem.from_statistics(
            tables.encoding_table,
            tables.pathid_table,
            tables.order_table,
            distinct_pathids=tables.distinct_pathids,
            p_variance=self.p_variance,
            o_variance=self.o_variance,
            use_histograms=self.use_histograms,
            build_binary_tree=self.build_binary_tree,
            name=name,
        )


def build_synopsis(
    source: SourceType,
    p_variance: float = 0.0,
    o_variance: float = 0.0,
    use_histograms: bool = True,
    build_binary_tree: bool = True,
    workers: int = 1,
    shard_bytes: int = DEFAULT_SHARD_BYTES,
    name: str = "",
) -> "EstimationSystem":
    """Build an :class:`EstimationSystem` from any source in one call.

    ``source`` may be XML text (anything whose first non-space character
    is ``<``), a filesystem path (``str`` or ``os.PathLike``), or an
    already-parsed :class:`~repro.xmltree.document.XmlDocument`.  Text and
    file sources are *streamed* — the document tree is never built — and
    ``workers > 1`` scans large documents in parallel shards.  The result
    is bit-identical across all source shapes and worker counts.

    This is the package's recommended entry point::

        import repro

        system = repro.build_synopsis("catalog.xml", workers=4)
        system.estimate("//item/$name")
    """
    builder = SynopsisBuilder(
        p_variance=p_variance,
        o_variance=o_variance,
        use_histograms=use_histograms,
        build_binary_tree=build_binary_tree,
        workers=workers,
        shard_bytes=shard_bytes,
    )
    return builder.build(source, name=name)
