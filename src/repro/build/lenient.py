"""Lenient XML event scanning: recover past malformed regions.

Real warehouse feeds contain damage — truncated uploads, unescaped
ampersands, tools that drop end tags — and a synopsis build over
terabytes should not abort at byte 40 billion because one record is
torn.  :func:`lenient_events` produces the same ``(start, tag)`` /
``(end, tag)`` stream as :func:`repro.xmltree.parser.scan_events`, but
instead of raising :class:`~repro.xmltree.parser.XmlParseError` it
*recovers*:

* a malformed start tag (``<`` followed by non-markup, bad attributes)
  is treated as character data — the scanner resumes at the next ``<``;
* a malformed or unexpected end tag is dropped;
* a mismatched end tag implicitly closes the elements it skipped over
  (the HTML parser's adoption rule, which matches how most truncation
  damage reads);
* unterminated comments/CDATA/PIs swallow the rest of the input;
* elements still open at end of input are closed synthetically.

Every recovery is reported through ``on_recover(offset, message)``, so a
build can count and log the damage it scanned past.  The event stream is
always *balanced* (every start eventually gets its end), which is the
only contract the streaming statistics collector needs.

This is the substrate of ``build_synopsis(..., lenient=True)`` and
``python -m repro snapshot --lenient``; estimates from a recovered scan
are exact for the undamaged regions and best-effort inside the damage.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

from repro.xmltree.parser import (
    EVENT_END,
    EVENT_START,
    _Scanner,
    _skip_attributes,
    _skip_misc,
    XmlParseError,
)

RecoverCallback = Callable[[int, str], None]


def _ignore(offset: int, message: str) -> None:
    pass


def lenient_events(
    text: str,
    fragment: bool = False,
    on_recover: Optional[RecoverCallback] = None,
) -> Iterator[Tuple[str, str]]:
    """Best-effort start/end element events over possibly-damaged XML.

    ``fragment`` has the same meaning as in ``scan_events`` (a run of
    top-level siblings rather than one rooted document); lenient mode
    does not enforce the one-root / no-trailing-content rules either
    way, since damaged input routinely violates them.
    """
    recover = on_recover if on_recover is not None else _ignore
    scanner = _Scanner(text)
    try:
        _skip_misc(scanner, allow_doctype=True)
    except XmlParseError as error:
        recover(error.position, error.raw_message)
        scanner.pos = scanner.length
    stack: List[str] = []
    while not scanner.eof():
        if scanner.peek() != "<":
            angle = text.find("<", scanner.pos)
            scanner.pos = scanner.length if angle < 0 else angle
            continue
        if scanner.startswith("</"):
            position = scanner.pos
            scanner.pos += 2
            try:
                closing = scanner.read_name()
                scanner.skip_whitespace()
                scanner.expect(">")
            except XmlParseError as error:
                recover(position, "malformed end tag: %s" % error.raw_message)
                scanner.pos = _next_markup(text, position + 2)
                continue
            if closing in stack:
                while stack[-1] != closing:
                    recover(position, "missing end tag for <%s>" % stack[-1])
                    yield EVENT_END, stack.pop()
                stack.pop()
                yield EVENT_END, closing
            else:
                recover(position, "unexpected end tag </%s>" % closing)
        elif scanner.startswith("<!--"):
            position = scanner.pos
            scanner.pos += 4
            _read_until_or_eof(scanner, "-->", position, "unterminated comment", recover)
        elif scanner.startswith("<![CDATA["):
            position = scanner.pos
            scanner.pos += 9
            _read_until_or_eof(
                scanner, "]]>", position, "unterminated CDATA section", recover
            )
        elif scanner.startswith("<?"):
            position = scanner.pos
            scanner.pos += 2
            _read_until_or_eof(
                scanner, "?>", position, "unterminated processing instruction", recover
            )
        elif scanner.startswith("<!"):
            # A stray markup declaration mid-document (a DOCTYPE where
            # none belongs, half a comment): skip the declaration.
            position = scanner.pos
            recover(position, "unexpected markup declaration")
            gt = text.find(">", position + 2)
            scanner.pos = scanner.length if gt < 0 else gt + 1
        else:
            position = scanner.pos
            scanner.pos += 1
            try:
                tag = scanner.read_name()
                _skip_attributes(scanner)
                if scanner.startswith("/>"):
                    scanner.pos += 2
                    yield EVENT_START, tag
                    yield EVENT_END, tag
                else:
                    scanner.expect(">")
                    yield EVENT_START, tag
                    stack.append(tag)
            except XmlParseError as error:
                # Not actually markup (``a < b``) or a torn start tag:
                # treat the "<" as character data and resume at the next
                # angle bracket.
                recover(position, "malformed start tag: %s" % error.raw_message)
                scanner.pos = _next_markup(text, position + 1)
    while stack:
        recover(scanner.length, "missing end tag for <%s> at end of input" % stack[-1])
        yield EVENT_END, stack.pop()


def _next_markup(text: str, start: int) -> int:
    angle = text.find("<", start)
    return len(text) if angle < 0 else angle


def _read_until_or_eof(
    scanner: _Scanner,
    terminator: str,
    position: int,
    message: str,
    recover: RecoverCallback,
) -> None:
    end = scanner.text.find(terminator, scanner.pos)
    if end < 0:
        recover(position, message)
        scanner.pos = scanner.length
        return
    scanner.pos = end + len(terminator)
