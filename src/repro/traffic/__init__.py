"""Traffic generation and capacity measurement for the serving tier.

The estimator only earns its keep when it answers under real load; this
package measures that.  It is a deterministic discrete-event harness in
three layers:

* :mod:`repro.traffic.schedule` — **what arrives when**: seeded
  non-homogeneous Poisson arrivals (diurnal sinusoid x burst windows),
  zipfian hot-key query popularity, a tier mix (interactive singles /
  standard singles / bulk batches), slow-client flags, and lossless
  JSONL trace save/replay.  Pure: one seed, one schedule, forever.
* :mod:`repro.traffic.driver` — **firing it**: a worker pool replays a
  schedule open-loop against a live HTTP endpoint (service server or
  router), recording per-event latency and served/shed/cut-off status;
  slow-client events trickle bytes over a raw socket to exercise the
  server's read deadline.
* :mod:`repro.traffic.curves` — **reading the result**: per-tier
  p50/p99/goodput folded into latency-vs-offered-load curves with
  knee/capacity extraction (the largest offered QPS whose goodput stays
  >= 90% of offered).

CLI: ``python -m repro traffic --snapshot-dir ...`` sweeps offered load
against a temporary in-process server and prints the curve; see
``benchmarks/bench_traffic_capacity.py`` for the QoS-on-vs-off capacity
comparison and docs/OPERATIONS.md for how to read the artifacts.
"""

from repro.traffic.curves import (
    LoadPoint,
    TierCurvePoint,
    format_curve,
    knee_qps,
    summarize,
)
from repro.traffic.driver import EventOutcome, RunReport, TrafficDriver
from repro.traffic.schedule import (
    TrafficConfig,
    TrafficEvent,
    generate_schedule,
    load_trace,
    offered_rate,
    save_trace,
)

__all__ = [
    "EventOutcome",
    "LoadPoint",
    "RunReport",
    "TierCurvePoint",
    "TrafficConfig",
    "TrafficDriver",
    "TrafficEvent",
    "format_curve",
    "generate_schedule",
    "knee_qps",
    "load_trace",
    "offered_rate",
    "save_trace",
    "summarize",
]
