"""Deterministic discrete-event traffic schedules.

A capacity experiment is only comparable when the *offered* load is
identical run to run; this module therefore separates **what arrives
when** (a pure function of a seed) from **driving it at a live server**
(:mod:`repro.traffic.driver`).  :func:`generate_schedule` produces a
sorted list of :class:`TrafficEvent` from a :class:`TrafficConfig`:

* arrivals follow a non-homogeneous Poisson process (sampled by
  thinning) whose rate is a diurnal sinusoid around ``base_qps``,
  multiplied during randomly-arriving **burst** windows;
* each event is a single interactive/standard estimate or a bulk batch,
  drawn from the configured tier mix;
* query popularity over the pool is zipfian (rank ``i`` gets weight
  ``1/(i+1)**zipf_s``) — the hot-key skew that makes plan caches and
  kernels matter;
* a configurable fraction of events are **slow clients** that trickle
  their request bytes (exercising the server's read deadline).

Everything is drawn from one ``random.Random(seed)``, so the same
config yields byte-identical schedules on every platform — and a
schedule round-trips losslessly through a JSONL trace
(:func:`save_trace` / :func:`load_trace`) for replay.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, fields
from itertools import accumulate
from random import Random
from typing import Any, Dict, List, Sequence, Tuple

from repro.reliability.shedding import BULK_TIER, INTERACTIVE_TIER, STANDARD_TIER

__all__ = [
    "TrafficConfig",
    "TrafficEvent",
    "generate_schedule",
    "offered_rate",
    "save_trace",
    "load_trace",
]


@dataclass(frozen=True)
class TrafficConfig:
    """Everything that determines a schedule, in one frozen value."""

    seed: int = 0
    duration_s: float = 10.0
    #: Mean arrival rate (events/second) before modulation.
    base_qps: float = 50.0
    #: Diurnal cycle: the rate swings ``±amplitude`` (as a fraction of
    #: ``base_qps``) over one ``period_s`` sinusoid — a whole "day"
    #: compressed into the run.
    diurnal_amplitude: float = 0.0
    diurnal_period_s: float = 60.0
    #: Poisson bursts: burst windows arrive at ``burst_rate`` per second
    #: and multiply the rate by ``burst_factor`` for ``burst_duration_s``.
    burst_rate: float = 0.0
    burst_factor: float = 3.0
    burst_duration_s: float = 1.0
    #: Tier mix weights (normalized; a zero weight disables the tier).
    interactive_weight: float = 0.7
    standard_weight: float = 0.2
    bulk_weight: float = 0.1
    #: Queries per bulk batch event.
    batch_size: int = 16
    #: Zipf exponent for query popularity (0 = uniform).
    zipf_s: float = 1.1
    #: Fraction of events sent as slow clients (trickled request bytes,
    #: ``slow_pace_s`` between fragments).
    slow_fraction: float = 0.0
    slow_pace_s: float = 0.5

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be > 0")
        if self.base_qps <= 0:
            raise ValueError("base_qps must be > 0")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if not 0.0 <= self.slow_fraction <= 1.0:
            raise ValueError("slow_fraction must be in [0, 1]")
        if min(self.interactive_weight, self.standard_weight, self.bulk_weight) < 0:
            raise ValueError("tier weights must be >= 0")
        if self.interactive_weight + self.standard_weight + self.bulk_weight <= 0:
            raise ValueError("at least one tier weight must be > 0")

    def as_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def scaled(self, qps: float) -> "TrafficConfig":
        """The same schedule shape at a different offered load."""
        values = self.as_dict()
        values["base_qps"] = qps
        return TrafficConfig(**values)


@dataclass(frozen=True)
class TrafficEvent:
    """One scheduled arrival: when, which lane, which queries."""

    at_s: float
    tier: str
    queries: Tuple[str, ...]
    slow: bool = False

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "at_s": self.at_s,
            "tier": self.tier,
            "queries": list(self.queries),
        }
        if self.slow:
            payload["slow"] = True
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TrafficEvent":
        return cls(
            at_s=float(payload["at_s"]),
            tier=str(payload["tier"]),
            queries=tuple(str(q) for q in payload["queries"]),
            slow=bool(payload.get("slow", False)),
        )


def offered_rate(config: TrafficConfig, t: float, bursting: bool = False) -> float:
    """The instantaneous arrival rate at time ``t`` (events/second)."""
    rate = config.base_qps * (
        1.0
        + config.diurnal_amplitude
        * math.sin(2.0 * math.pi * t / config.diurnal_period_s)
    )
    if bursting:
        rate *= config.burst_factor
    return max(0.0, rate)


def _zipf_cum_weights(count: int, s: float) -> List[float]:
    return list(accumulate((index + 1) ** -s for index in range(count)))


def generate_schedule(
    config: TrafficConfig, queries: Sequence[str]
) -> List[TrafficEvent]:
    """The full event schedule for ``config`` over ``queries``.

    Pure and deterministic: the same (config, queries) always returns
    the same events, independent of platform or wall clock.
    """
    if not queries:
        raise ValueError("need at least one query to schedule traffic")
    rng = Random(config.seed)

    # Burst windows first (their own homogeneous Poisson process), so
    # the thinning rate below can consult them.
    bursts: List[Tuple[float, float]] = []
    if config.burst_rate > 0.0:
        t = 0.0
        while True:
            t += rng.expovariate(config.burst_rate)
            if t >= config.duration_s:
                break
            bursts.append((t, t + config.burst_duration_s))

    def bursting(t: float) -> bool:
        return any(lo <= t < hi for lo, hi in bursts)

    # Thinning: sample a homogeneous Poisson at the peak rate, keep each
    # arrival with probability rate(t)/peak.
    peak = config.base_qps * (1.0 + config.diurnal_amplitude)
    if bursts:
        peak *= config.burst_factor

    tiers = (INTERACTIVE_TIER, STANDARD_TIER, BULK_TIER)
    weights = (
        config.interactive_weight,
        config.standard_weight,
        config.bulk_weight,
    )
    zipf_cum = _zipf_cum_weights(len(queries), config.zipf_s)

    def pick_query() -> str:
        return queries[
            rng.choices(range(len(queries)), cum_weights=zipf_cum, k=1)[0]
        ]

    events: List[TrafficEvent] = []
    t = 0.0
    while True:
        t += rng.expovariate(peak)
        if t >= config.duration_s:
            break
        if rng.random() * peak > offered_rate(config, t, bursting(t)):
            continue  # thinned out of the non-homogeneous process
        tier = rng.choices(tiers, weights=weights, k=1)[0]
        if tier == BULK_TIER:
            batch = tuple(pick_query() for _ in range(config.batch_size))
        else:
            batch = (pick_query(),)
        slow = rng.random() < config.slow_fraction
        events.append(TrafficEvent(round(t, 6), tier, batch, slow))
    return events


def save_trace(events: Sequence[TrafficEvent], path: str) -> None:
    """Write a schedule as JSONL (one event per line), replayable with
    :func:`load_trace`."""
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event.as_dict(), sort_keys=True))
            handle.write("\n")


def load_trace(path: str) -> List[TrafficEvent]:
    """Read a JSONL trace back into a schedule (sorted by time)."""
    events: List[TrafficEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(TrafficEvent.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
                raise ValueError(
                    "%s:%d: malformed trace line: %s" % (path, line_number, error)
                )
    events.sort(key=lambda event: event.at_s)
    return events
