"""Latency-vs-offered-load curves and knee/capacity extraction.

A capacity run sweeps the same schedule shape across several offered
loads; each run's :class:`~repro.traffic.driver.EventOutcome` list folds
into one :class:`LoadPoint` (per-tier p50/p99/goodput/shed plus totals),
and a sequence of points is a **load curve**.  The *knee* — the highest
offered load the server still absorbs, defined here as the largest
offered QPS whose goodput is at least ``threshold`` (default 90%) of the
offered rate — is the single capacity number regression gates and the
overload runbook reason about.

Percentiles use the repo-wide convention (sorted samples, index
``min(n-1, int(q*n))`` — see :mod:`repro.service.metrics`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.traffic.driver import EventOutcome

__all__ = ["TierCurvePoint", "LoadPoint", "summarize", "knee_qps", "format_curve"]


def _percentile(ordered: Sequence[float], fraction: float) -> float:
    if not ordered:
        return 0.0
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


@dataclass(frozen=True)
class TierCurvePoint:
    """One tier's slice of a load point."""

    tier: str
    offered: int
    served: int
    shed: int
    errors: int
    p50_ms: float
    p99_ms: float
    goodput_qps: float

    def as_dict(self) -> Dict[str, Any]:
        return {
            "tier": self.tier,
            "offered": self.offered,
            "served": self.served,
            "shed": self.shed,
            "errors": self.errors,
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "goodput_qps": round(self.goodput_qps, 2),
        }


@dataclass(frozen=True)
class LoadPoint:
    """One offered-load level of a capacity sweep."""

    offered_qps: float
    duration_s: float
    tiers: Dict[str, TierCurvePoint] = field(default_factory=dict)

    @property
    def goodput_qps(self) -> float:
        return sum(point.goodput_qps for point in self.tiers.values())

    @property
    def served(self) -> int:
        return sum(point.served for point in self.tiers.values())

    @property
    def shed(self) -> int:
        return sum(point.shed for point in self.tiers.values())

    def tier(self, name: str) -> Optional[TierCurvePoint]:
        return self.tiers.get(name)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "offered_qps": round(self.offered_qps, 2),
            "duration_s": round(self.duration_s, 3),
            "goodput_qps": round(self.goodput_qps, 2),
            "served": self.served,
            "shed": self.shed,
            "tiers": {name: point.as_dict() for name, point in self.tiers.items()},
        }


def summarize(
    outcomes: Sequence[EventOutcome], duration_s: float, offered_qps: float
) -> LoadPoint:
    """Fold one run's outcomes into a :class:`LoadPoint`.

    ``duration_s`` is the wall time of the run (goodput denominator);
    ``offered_qps`` labels the point on the curve's x-axis.
    """
    if duration_s <= 0:
        raise ValueError("duration_s must be > 0")
    by_tier: Dict[str, List[EventOutcome]] = {}
    for outcome in outcomes:
        by_tier.setdefault(outcome.tier, []).append(outcome)
    tiers: Dict[str, TierCurvePoint] = {}
    for name in sorted(by_tier):
        events = by_tier[name]
        served = [event for event in events if event.ok]
        latencies = sorted(event.latency_s * 1000.0 for event in served)
        tiers[name] = TierCurvePoint(
            tier=name,
            offered=len(events),
            served=len(served),
            shed=sum(1 for event in events if event.shed),
            errors=len(events) - len(served) - sum(1 for e in events if e.shed),
            p50_ms=_percentile(latencies, 0.50),
            p99_ms=_percentile(latencies, 0.99),
            goodput_qps=len(served) / duration_s,
        )
    return LoadPoint(offered_qps=offered_qps, duration_s=duration_s, tiers=tiers)


def knee_qps(points: Sequence[LoadPoint], threshold: float = 0.9) -> float:
    """The capacity knee: the largest offered QPS still absorbed.

    A point is "absorbed" when total goodput >= ``threshold`` x offered.
    Returns 0.0 when no point qualifies (the server was saturated at
    every measured level).
    """
    absorbed = [
        point.offered_qps
        for point in points
        if point.offered_qps > 0
        and point.goodput_qps >= threshold * point.offered_qps
    ]
    return max(absorbed) if absorbed else 0.0


def format_curve(points: Sequence[LoadPoint], title: str = "") -> str:
    """A fixed-width text rendering of a load curve (bench artifacts)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "%10s %10s | %-12s %8s %8s %6s %9s %9s" % (
        "offered", "goodput", "tier", "served", "shed", "err", "p50_ms", "p99_ms"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for point in sorted(points, key=lambda p: p.offered_qps):
        first = True
        for name in sorted(point.tiers):
            tier = point.tiers[name]
            prefix = (
                "%10.1f %10.1f" % (point.offered_qps, point.goodput_qps)
                if first
                else "%10s %10s" % ("", "")
            )
            lines.append(
                "%s | %-12s %8d %8d %6d %9.2f %9.2f"
                % (
                    prefix,
                    tier.tier,
                    tier.served,
                    tier.shed,
                    tier.errors,
                    tier.p50_ms,
                    tier.p99_ms,
                )
            )
            first = False
    lines.append("")
    lines.append("knee (goodput >= 0.9 x offered): %.1f qps" % knee_qps(points))
    return "\n".join(lines)
