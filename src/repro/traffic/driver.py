"""Drive a traffic schedule at a live estimation server.

:class:`TrafficDriver` replays a :class:`~repro.traffic.schedule.TrafficEvent`
list against a real HTTP endpoint (service server or cluster router) in
approximately open-loop fashion: a fixed worker pool pulls events off a
shared cursor and each worker sleeps until its event's scheduled time
before firing, so offered load tracks the schedule rather than the
server's completion rate (the essence of a capacity test — a closed loop
can never overload the thing it measures, workers permitting).

Each event becomes one HTTP request on the event's QoS tier — a single
estimate, a bulk ``estimate_batch``, or a **slow client** that trickles
its request bytes over a raw socket to probe the server's read deadline.
Outcomes are recorded per event (:class:`EventOutcome`): latency, and
whether it was served, shed (503), cut off (408/connection drop) or
failed.  Aggregation into per-tier latency/goodput curves lives in
:mod:`repro.traffic.curves`.

``time_scale`` compresses or stretches the schedule clock (0.5 replays a
10 s schedule in 5 s); the schedule itself is never mutated, so the same
trace can be replayed at several speeds to sweep offered load.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.service.client import EndpointClient, ServiceError
from repro.traffic.schedule import TrafficEvent

__all__ = ["EventOutcome", "RunReport", "TrafficDriver"]

#: Outcome statuses an event can end in.
STATUS_OK = "ok"
STATUS_SHED = "shed"
STATUS_READ_TIMEOUT = "read_timeout"
STATUS_CLOSED = "closed"
STATUS_ERROR = "error"


@dataclass(frozen=True)
class EventOutcome:
    """What happened to one scheduled event."""

    tier: str
    at_s: float
    latency_s: float
    status: str
    queries: int
    retry_after_s: Optional[float] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def shed(self) -> bool:
        return self.status == STATUS_SHED


@dataclass(frozen=True)
class RunReport:
    """One driver run: every outcome plus the wall time it took."""

    outcomes: List[EventOutcome]
    wall_s: float

    @property
    def served(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.ok)

    @property
    def shed(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.shed)


class TrafficDriver:
    """Replays schedules against one endpoint with a worker pool.

    ``request_fn`` is the test seam: when given, it replaces the HTTP
    transport entirely — called as ``request_fn(event)`` and expected to
    return a status string (or raise :class:`ServiceError`).
    """

    def __init__(
        self,
        host: str,
        port: int,
        synopsis: str,
        workers: int = 8,
        time_scale: float = 1.0,
        timeout: float = 10.0,
        slow_pace_s: float = 0.5,
        request_fn: Optional[Callable[[TrafficEvent], str]] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if time_scale <= 0:
            raise ValueError("time_scale must be > 0")
        self.host = host
        self.port = port
        self.synopsis = synopsis
        self.workers = workers
        self.time_scale = time_scale
        self.timeout = timeout
        self.slow_pace_s = slow_pace_s
        self._request_fn = request_fn

    # ------------------------------------------------------------------

    def run(self, events: Sequence[TrafficEvent]) -> RunReport:
        """Fire every event at (scaled) schedule time; returns outcomes
        in schedule order."""
        ordered = sorted(events, key=lambda event: event.at_s)
        outcomes: List[Optional[EventOutcome]] = [None] * len(ordered)
        cursor = [0]
        lock = threading.Lock()
        start = time.monotonic()

        def worker() -> None:
            client: Optional[EndpointClient] = None
            if self._request_fn is None:
                client = EndpointClient(
                    host=self.host, port=self.port, timeout=self.timeout
                )
            try:
                while True:
                    with lock:
                        index = cursor[0]
                        cursor[0] += 1
                    if index >= len(ordered):
                        return
                    event = ordered[index]
                    delay = (start + event.at_s * self.time_scale) - time.monotonic()
                    if delay > 0:
                        time.sleep(delay)
                    outcomes[index] = self._execute(client, event)
            finally:
                if client is not None:
                    client.close()

        threads = [
            threading.Thread(target=worker, name="traffic-%d" % index, daemon=True)
            for index in range(min(self.workers, max(1, len(ordered))))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return RunReport(
            outcomes=[outcome for outcome in outcomes if outcome is not None],
            wall_s=time.monotonic() - start,
        )

    # ------------------------------------------------------------------

    def _execute(
        self, client: Optional[EndpointClient], event: TrafficEvent
    ) -> EventOutcome:
        started = time.monotonic()
        retry_after: Optional[float] = None
        try:
            if self._request_fn is not None:
                status = self._request_fn(event)
            elif event.slow:
                status = self._slow_request(event)
            elif len(event.queries) > 1:
                client.estimate_batch(
                    self.synopsis, list(event.queries), tier=event.tier
                )
                status = STATUS_OK
            else:
                client.estimate(self.synopsis, event.queries[0], tier=event.tier)
                status = STATUS_OK
        except ServiceError as error:
            retry_after = error.retry_after_s
            if error.status == 503:
                status = STATUS_SHED
            elif error.kind == "read_timeout":
                status = STATUS_READ_TIMEOUT
            elif error.kind == "connection":
                status = STATUS_CLOSED
            else:
                status = STATUS_ERROR
        return EventOutcome(
            tier=event.tier,
            at_s=event.at_s,
            latency_s=time.monotonic() - started,
            status=status,
            queries=len(event.queries),
            retry_after_s=retry_after,
        )

    def _slow_request(self, event: TrafficEvent) -> str:
        """Trickle the request body over a raw socket (slow-loris mode).

        Sends the headers and half the body, stalls ``slow_pace_s``
        (scaled), then finishes and reads the status line.  A server
        with a read deadline answers 408 or drops the connection.
        """
        body = json.dumps(
            {
                "synopsis": self.synopsis,
                "query": event.queries[0],
                "tier": event.tier,
            }
        ).encode("utf-8")
        head = (
            "POST /estimate HTTP/1.1\r\n"
            "Host: %s\r\n"
            "Content-Type: application/json\r\n"
            "Content-Length: %d\r\n"
            "Connection: close\r\n\r\n" % (self.host, len(body))
        ).encode("ascii")
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            ) as sock:
                sock.sendall(head)
                sock.sendall(body[: len(body) // 2])
                time.sleep(self.slow_pace_s * self.time_scale)
                try:
                    sock.sendall(body[len(body) // 2:])
                except OSError:
                    return STATUS_CLOSED
                sock.settimeout(self.timeout)
                raw = sock.recv(4096)
                if not raw:
                    return STATUS_CLOSED
                status = int(raw.split(b" ", 2)[1])
        except (OSError, ValueError, IndexError):
            return STATUS_CLOSED
        if status < 400:
            return STATUS_OK
        if status == 408:
            return STATUS_READ_TIMEOUT
        if status == 503:
            return STATUS_SHED
        return STATUS_ERROR
