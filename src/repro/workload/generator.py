"""Workload generator implementation.

All randomness flows from one ``random.Random(seed)``; generation is fully
deterministic in (document, seed, raw counts).  Queries are built directly
as ASTs; their text form (via ``Query.to_string``) is used for
de-duplication and reporting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.pathenc.encoding import EncodingTable
from repro.xmltree.document import XmlDocument
from repro.xpath.ast import Edge, Query, QueryAxis, QueryNode
from repro.xpath.evaluator import Evaluator


@dataclass(frozen=True)
class WorkloadQuery:
    """One workload item: the query, its class and its true selectivity."""

    text: str
    query: Query
    kind: str  # 'simple' | 'branch' | 'order_branch' | 'order_trunk'
    actual: int


@dataclass
class Workload:
    """A full per-dataset workload (the shape of Table 2)."""

    dataset: str
    simple: List[WorkloadQuery] = field(default_factory=list)
    branch: List[WorkloadQuery] = field(default_factory=list)
    order_branch: List[WorkloadQuery] = field(default_factory=list)
    order_trunk: List[WorkloadQuery] = field(default_factory=list)

    def table2_row(self) -> Dict[str, object]:
        return {
            "dataset": self.dataset,
            "simple": len(self.simple),
            "branch": len(self.branch),
            "total": len(self.simple) + len(self.branch),
            "with_order": len(self.order_branch),
        }

    def no_order(self) -> List[WorkloadQuery]:
        return self.simple + self.branch


class WorkloadGenerator:
    """Generates simple / branch / order workloads for one document."""

    def __init__(
        self,
        document: XmlDocument,
        seed: int = 42,
        evaluator: Optional[Evaluator] = None,
        min_size: int = 3,
        max_size: int = 12,
    ):
        self.document = document
        self.rng = random.Random(seed)
        self.evaluator = evaluator or Evaluator(document)
        self.min_size = min_size
        self.max_size = max_size
        table = EncodingTable.from_document(document)
        self._paths: List[Tuple[str, ...]] = [
            table.labels_of(e) for e in range(1, table.width + 1)
        ]

    # ------------------------------------------------------------------
    # Subsequence machinery
    # ------------------------------------------------------------------

    def _random_subsequence(self, max_len: int) -> Tuple[Tuple[str, ...], Tuple[bool, ...]]:
        """A random ordered subsequence of one root-to-leaf path.

        Returns (labels, adjacency) where ``adjacency[i]`` says whether
        ``labels[i]`` immediately follows ``labels[i-1]`` on the source
        path; ``adjacency[0]`` says whether ``labels[0]`` is the path root.
        """
        path = self.rng.choice(self._paths)
        want = self.rng.randint(min(2, len(path)), min(max_len, len(path)))
        positions = sorted(self.rng.sample(range(len(path)), want))
        labels = tuple(path[i] for i in positions)
        adjacency = [positions[0] == 0]
        for prev, cur in zip(positions, positions[1:]):
            adjacency.append(cur == prev + 1)
        return labels, tuple(adjacency)

    @staticmethod
    def _chain(
        labels: Sequence[str], adjacency: Sequence[bool]
    ) -> Tuple[QueryNode, QueryNode, QueryAxis]:
        """Build a step chain; returns (head, tail, head_axis)."""
        head_axis = QueryAxis.CHILD if adjacency[0] else QueryAxis.DESCENDANT
        head = QueryNode(labels[0])
        node = head
        for label, adjacent in zip(labels[1:], adjacency[1:]):
            axis = QueryAxis.CHILD if adjacent else QueryAxis.DESCENDANT
            node = node.add_edge(axis, QueryNode(label), is_predicate=False)
        return head, node, head_axis

    # ------------------------------------------------------------------
    # Simple queries
    # ------------------------------------------------------------------

    def simple_queries(self, raw_count: int) -> List[WorkloadQuery]:
        """Generate ``raw_count`` candidates; return deduped positives.

        Subsequences of real root-to-leaf paths always match at least the
        path they came from, so no negativity filtering is needed (the
        exact selectivity is still recorded).
        """
        kept: List[WorkloadQuery] = []
        seen = set()
        for _ in range(raw_count):
            labels, adjacency = self._random_subsequence(self.max_size)
            if len(labels) < self.min_size:
                # Short paths cannot reach min_size; keep the paper's size
                # floor best-effort by retrying via the raw-count budget.
                if len(labels) < 2:
                    continue
            head, _, head_axis = self._chain(labels, adjacency)
            query = Query(head, head_axis)
            text = query.to_string()
            if text in seen:
                continue
            seen.add(text)
            actual = self.evaluator.selectivity(query)
            if actual <= 0:
                continue
            kept.append(WorkloadQuery(text, query, "simple", actual))
        return kept

    # ------------------------------------------------------------------
    # Branch queries
    # ------------------------------------------------------------------

    def _merge_candidate(self) -> Optional[Query]:
        """Merge two subsequences at a shared label into ``q1[/q2]/q3``."""
        labels1, adj1 = self._random_subsequence(self.max_size)
        labels2, adj2 = self._random_subsequence(self.max_size)
        common = [
            (i, j)
            for i, a in enumerate(labels1[:-1])
            for j, b in enumerate(labels2[:-1])
            if a == b
        ]
        if not common:
            return None
        split1, split2 = self.rng.choice(common)
        trunk_labels = labels1[: split1 + 1]
        trunk_adj = adj1[: split1 + 1]
        cont_labels = labels1[split1 + 1:]
        cont_adj = adj1[split1 + 1:]
        branch_labels = labels2[split2 + 1:]
        branch_adj = adj2[split2 + 1:]
        if not cont_labels or not branch_labels:
            return None
        if branch_labels == cont_labels and branch_adj == cont_adj:
            return None  # both branches identical: degenerate
        total = len(trunk_labels) + len(cont_labels) + len(branch_labels)
        if total < self.min_size or total > self.max_size:
            return None
        head, branch_node, head_axis = self._chain(trunk_labels, trunk_adj)
        branch_head, _, _ = self._chain(branch_labels, branch_adj)
        branch_node.add_edge(
            QueryAxis.CHILD if branch_adj[0] else QueryAxis.DESCENDANT,
            branch_head,
            is_predicate=True,
        )
        cont_head, _, _ = self._chain(cont_labels, cont_adj)
        branch_node.add_edge(
            QueryAxis.CHILD if cont_adj[0] else QueryAxis.DESCENDANT,
            cont_head,
            is_predicate=False,
        )
        return Query(head, head_axis)

    def branch_queries(self, raw_count: int) -> List[WorkloadQuery]:
        """Generate ``raw_count`` merge attempts; return deduped positives."""
        kept: List[WorkloadQuery] = []
        seen = set()
        for _ in range(raw_count):
            query = self._merge_candidate()
            if query is None:
                continue
            text = query.to_string()
            if text in seen:
                continue
            seen.add(text)
            actual = self.evaluator.selectivity(query)
            if actual <= 0:
                continue
            kept.append(WorkloadQuery(text, query, "branch", actual))
        return kept

    # ------------------------------------------------------------------
    # Order queries
    # ------------------------------------------------------------------

    def order_queries(
        self, raw_count: int
    ) -> Tuple[List[WorkloadQuery], List[WorkloadQuery]]:
        """Branch queries with the sibling order fixed (Section 7).

        Returns (branch-target items, trunk-target items): the same kept
        queries in the two target variants used by Figures 12 and 13.
        """
        branch_target: List[WorkloadQuery] = []
        trunk_target: List[WorkloadQuery] = []
        seen = set()
        for _ in range(raw_count):
            query = self._merge_candidate()
            if query is None:
                continue
            ordered = self._fix_sibling_order(query)
            if ordered is None:
                continue
            ordered_query, trunk_node, deep_branch_node = ordered
            branch_variant = Query(
                ordered_query.root, ordered_query.root_axis, target=deep_branch_node
            )
            text = branch_variant.to_string()
            if text in seen:
                continue
            seen.add(text)
            selectivities = self.evaluator.selectivities(branch_variant)
            deep_actual = selectivities[deep_branch_node.node_id]
            if deep_actual <= 0:
                continue
            trunk_variant = Query(
                ordered_query.root, ordered_query.root_axis, target=trunk_node
            )
            branch_target.append(
                WorkloadQuery(text, branch_variant, "order_branch", deep_actual)
            )
            trunk_target.append(
                WorkloadQuery(
                    trunk_variant.to_string(),
                    trunk_variant,
                    "order_trunk",
                    selectivities[trunk_node.node_id],
                )
            )
        return branch_target, trunk_target

    def _fix_sibling_order(
        self, query: Query
    ) -> Optional[Tuple[Query, QueryNode, QueryNode]]:
        """Turn ``q1[/q2]/q3`` into ``q1[/q2/folls::q3]`` (or ``pres``).

        Returns (ordered query, trunk node ni, deepest node of the later
        branch) or ``None`` when the shape does not fit.
        """
        branching = None
        for node in query.nodes():
            if node.predicate_edges() and node.inline_edge() is not None:
                branching = node
                break
        if branching is None:
            return None
        predicate = branching.predicate_edges()[0]
        inline = branching.inline_edge()
        assert inline is not None
        # Detach the continuation and hang it off the branch head with a
        # sibling-order axis.
        branching.edges = [e for e in branching.edges if e.node is not inline.node]
        axis = QueryAxis.FOLLS if self.rng.random() < 0.5 else QueryAxis.PRES
        branch_head = predicate.node
        attach_as_predicate = branch_head.inline_edge() is not None
        branch_head.edges.append(Edge(axis, inline.node, attach_as_predicate))
        rebuilt = Query(query.root, query.root_axis)
        deep = inline.node
        while deep.inline_edge() is not None and deep.inline_edge().axis.is_structural:
            deep = deep.inline_edge().node
        return rebuilt, branching, deep


    # ------------------------------------------------------------------
    # Scoped-order queries (foll/pre, Example 5.3)
    # ------------------------------------------------------------------

    def scoped_order_queries(self, raw_count: int) -> List[WorkloadQuery]:
        """Order queries using the scoped ``foll``/``pre`` axes.

        Derived from sibling-order candidates by collapsing the ordered
        branch to its *last* node: ``q1[/q2/folls::Z/../W]`` becomes
        ``q1[/q2/foll::W]`` — the form Example 5.3's rewrite expands back
        into per-chain sibling queries.  Targets stay on the scoped node.
        """
        kept: List[WorkloadQuery] = []
        seen = set()
        for _ in range(raw_count):
            query = self._merge_candidate()
            if query is None:
                continue
            ordered = self._fix_sibling_order(query)
            if ordered is None:
                continue
            ordered_query, _, deep = ordered
            scoped = self._collapse_to_scoped(ordered_query, deep)
            if scoped is None:
                continue
            text = scoped.to_string()
            if text in seen:
                continue
            seen.add(text)
            actual = self.evaluator.selectivity(scoped)
            if actual <= 0:
                continue
            kept.append(WorkloadQuery(text, scoped, "order_scoped", actual))
        return kept

    def _collapse_to_scoped(self, query: Query, deep: QueryNode) -> Optional[Query]:
        """Replace the sibling-order edge with a scoped edge to ``deep``."""
        for node in query.nodes():
            for index, edge in enumerate(node.edges):
                if not edge.axis.is_sibling_order:
                    continue
                scoped_axis = (
                    QueryAxis.FOLL if edge.axis is QueryAxis.FOLLS else QueryAxis.PRE
                )
                # The scoped node is the deepest node of the ordered
                # branch; drop the intermediate chain entirely.
                replacement = QueryNode(deep.tag)
                node.edges = list(node.edges)
                node.edges[index] = Edge(scoped_axis, replacement, edge.is_predicate)
                return Query(query.root, query.root_axis, target=replacement)
        return None

    # ------------------------------------------------------------------
    # Full workload
    # ------------------------------------------------------------------

    def full_workload(
        self,
        raw_simple: int = 4000,
        raw_branch: int = 4000,
        raw_order: int = 4000,
    ) -> Workload:
        """The paper's Section 7 workload (Table 2) at the given raw sizes."""
        workload = Workload(dataset=self.document.name or self.document.root.tag)
        workload.simple = self.simple_queries(raw_simple)
        workload.branch = self.branch_queries(raw_branch)
        workload.order_branch, workload.order_trunk = self.order_queries(raw_order)
        return workload
