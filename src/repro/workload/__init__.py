"""Query workload generation (Section 7 of the paper).

The paper's recipe, reproduced verbatim:

* **simple queries** — random subsequences of the root-to-leaf paths in the
  encoding table (adjacent labels keep ``/``, gaps become ``//``);
* **branch queries** — merges of two subsequences that share a common
  label: the first subsequence's prefix becomes the trunk, its suffix the
  continuation ``q3`` and the second subsequence's suffix the branch ``q2``;
* **order queries** — branch queries with the order between the two
  sibling branch heads fixed (``folls`` or ``pres``), emitted in two target
  variants (deep in the branch part for Figure 12; the trunk node for
  Figure 13);
* duplicates and negative queries (true selectivity 0) are removed; every
  kept item records its exact selectivity.
"""

from repro.workload.generator import (
    Workload,
    WorkloadGenerator,
    WorkloadQuery,
)

__all__ = ["WorkloadGenerator", "WorkloadQuery", "Workload"]
