"""Workload persistence.

A frozen workload — query texts, classes and exact selectivities — lets
accuracy experiments be re-run bit-identically across machines and
against modified estimators without regenerating (and re-ground-truthing)
thousands of queries.  Stored as JSON; queries round-trip through their
canonical text form.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.workload.generator import Workload, WorkloadQuery
from repro.xpath.parser import parse_query

FORMAT_VERSION = 1


class WorkloadLoadError(ValueError):
    """Raised on malformed or incompatible workload files."""


def workload_to_dict(workload: Workload) -> Dict[str, Any]:
    def items(queries: List[WorkloadQuery]) -> List[Dict[str, Any]]:
        return [
            {"text": item.text, "kind": item.kind, "actual": item.actual}
            for item in queries
        ]

    return {
        "format_version": FORMAT_VERSION,
        "dataset": workload.dataset,
        "simple": items(workload.simple),
        "branch": items(workload.branch),
        "order_branch": items(workload.order_branch),
        "order_trunk": items(workload.order_trunk),
    }


def workload_from_dict(payload: Dict[str, Any]) -> Workload:
    if payload.get("format_version") != FORMAT_VERSION:
        raise WorkloadLoadError(
            "unsupported workload format %r" % payload.get("format_version")
        )

    def items(entries: List[Dict[str, Any]]) -> List[WorkloadQuery]:
        loaded = []
        for entry in entries:
            try:
                query = parse_query(entry["text"])
                loaded.append(
                    WorkloadQuery(
                        entry["text"], query, entry["kind"], int(entry["actual"])
                    )
                )
            except (KeyError, TypeError, ValueError) as error:
                raise WorkloadLoadError("malformed workload entry: %s" % error)
        return loaded

    try:
        workload = Workload(dataset=payload["dataset"])
        workload.simple = items(payload["simple"])
        workload.branch = items(payload["branch"])
        workload.order_branch = items(payload["order_branch"])
        workload.order_trunk = items(payload["order_trunk"])
    except KeyError as error:
        raise WorkloadLoadError("missing workload section: %s" % error)
    return workload


def save_workload(workload: Workload, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(workload_to_dict(workload), handle, indent=1)


def load_workload(path: str) -> Workload:
    with open(path, "r", encoding="utf-8") as handle:
        return workload_from_dict(json.load(handle))
