"""Multi-core zero-copy serving: kernel snapshots + pre-fork workers.

PR 5's compiled kernel made one process fast; this package makes N
processes share that speed without N rebuilds.  The kernel is already
flat data — dense pid indexes, ``array('d')`` frequency tables,
containment-bitmatrix rows — so it serializes into a versioned,
checksummed **kernelpack**: header + offset table + raw buffer segments.
A loader maps the file read-only and reconstructs a live kernel straight
from the ``mmap`` — frequency tables are ``memoryview`` casts over the
mapped pages (no copy), bitset rows materialize lazily per tag/pair on
first use (no per-entry deserialization at load time).  Because the
mapping is file-backed and read-only, every worker process that maps the
same pack shares one physical copy through the page cache.

* :mod:`repro.shm.kernelpack` — the pack format: :func:`write_pack`,
  :func:`load_pack` and the :class:`PackedKernel` that serves joins from
  the mapped buffers (falling back to in-process compilation for
  anything the pack does not carry);
* :mod:`repro.shm.slab` — fixed-layout per-worker metrics slabs in one
  anonymous shared ``mmap`` created before fork: single-writer counters
  plus a latency histogram, aggregated lock-free by the parent;
* :mod:`repro.shm.pool` — the ``SO_REUSEPORT`` pre-fork worker pool
  behind ``repro serve --workers N``: a parent supervisor stages packs
  once, forks workers that mmap them, restarts crashed workers with the
  reliability subsystem's retry backoff, and coordinates hot reload by
  staging a new pack and bumping a shared generation;
* :mod:`repro.shm.control` — the parent's control-plane HTTP server:
  aggregated ``/metrics`` (JSON + Prometheus) from the worker slabs,
  ``/healthz`` with per-worker remap generations, ``POST /reload``.
"""

from repro.shm.kernelpack import (
    KernelPackError,
    PACK_SUFFIX,
    PACK_VERSION,
    PackedKernel,
    describe_pack,
    load_pack,
    pack_stamp,
    write_pack,
)
from repro.shm.slab import SlabArena, WorkerSlab
from repro.shm.pool import WorkerPool, WorkerPoolError, pool_supported, stage_packs
from repro.shm.control import ControlServer

__all__ = [
    "ControlServer",
    "KernelPackError",
    "PACK_SUFFIX",
    "PACK_VERSION",
    "PackedKernel",
    "SlabArena",
    "WorkerPool",
    "WorkerPoolError",
    "WorkerSlab",
    "describe_pack",
    "load_pack",
    "pack_stamp",
    "pool_supported",
    "stage_packs",
    "write_pack",
]
