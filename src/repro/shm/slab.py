"""Per-worker metrics slabs in one anonymous shared ``mmap``.

The worker pool needs cross-process metrics without locks, sockets or a
collector thread.  The classic pre-fork answer (nginx, unicorn) is a
shared-memory arena carved into fixed-layout per-worker slabs, created
**before** fork so every process inherits the same mapping:

.. code-block:: text

    [arena header]  u64s: layout version, n slots, reload generation
    [slab 0]        u64 fields: pid, started_ns, heartbeat_ns,
    [slab 1]        generation, requests, queries, errors, shed,
    ...             deadline_hits, kernel_hits/misses, pack_hits/misses,
    [slab N-1]      remaps, latency count + sum_us + bucket counters

Concurrency is by construction, not by locking: each slab has exactly
one writer (its worker); the parent only reads.  Aligned 8-byte loads
and stores do not tear on the platforms CPython runs on, so the worst a
reader sees is a counter that is one increment stale — fine for metrics.
The one parent-written word is the arena's ``reload_generation``, which
workers poll (single writer again, just inverted).

Latencies use a fixed log-spaced histogram (microsecond buckets), so the
parent can aggregate percentiles across workers by summing bucket
counters — quantiles of a union, not an average of quantiles.
"""

from __future__ import annotations

import mmap
import os
import time
from typing import Any, Dict, List, Optional

__all__ = ["LATENCY_BUCKET_BOUNDS_US", "SLAB_FIELDS", "SlabArena", "WorkerSlab"]

#: Upper bounds (microseconds) of the latency histogram, log-spaced from
#: 100us to 1s; the final bucket is unbounded.
LATENCY_BUCKET_BOUNDS_US = (
    100, 250, 500, 1_000, 2_500, 5_000, 10_000,
    25_000, 50_000, 100_000, 250_000, 500_000, 1_000_000,
)
_N_BUCKETS = len(LATENCY_BUCKET_BOUNDS_US) + 1

#: Scalar u64 fields, in slab order.  ``generation`` is the registry
#: reload generation the worker is currently serving (the "remap
#: generation" in /healthz); ``heartbeat_ns`` is bumped per request and
#: by the worker's idle tick.
SLAB_FIELDS = (
    "pid",
    "started_ns",
    "heartbeat_ns",
    "generation",
    "requests",
    "queries",
    "errors",
    "shed",
    "deadline_hits",
    "kernel_hits",
    "kernel_misses",
    "pack_hits",
    "pack_misses",
    "semcache_hits",
    "semcache_misses",
    "remaps",
    "latency_count",
    "latency_sum_us",
)

_FIELD_INDEX = {name: index for index, name in enumerate(SLAB_FIELDS)}
_SLAB_WORDS = len(SLAB_FIELDS) + _N_BUCKETS

_ARENA_VERSION = 1
#: Arena header words: version, slot count, reload generation.
_HEADER_WORDS = 3


class WorkerSlab:
    """One worker's window into the arena.  Single writer: the worker."""

    __slots__ = ("index", "_words")

    def __init__(self, index: int, words: memoryview):
        self.index = index
        self._words = words

    # -- scalar fields -------------------------------------------------

    def get(self, field: str) -> int:
        return self._words[_FIELD_INDEX[field]]

    def set(self, field: str, value: int) -> None:
        self._words[_FIELD_INDEX[field]] = value & 0xFFFFFFFFFFFFFFFF

    def incr(self, field: str, amount: int = 1) -> None:
        index = _FIELD_INDEX[field]
        self._words[index] = (self._words[index] + amount) & 0xFFFFFFFFFFFFFFFF

    def mark_started(self, generation: int = 0) -> None:
        now = time.time_ns()
        self.set("pid", os.getpid())
        self.set("started_ns", now)
        self.set("heartbeat_ns", now)
        self.set("generation", generation)

    def heartbeat(self) -> None:
        self.set("heartbeat_ns", time.time_ns())

    # -- latency histogram ---------------------------------------------

    def observe_latency(self, seconds: float) -> None:
        micros = int(seconds * 1e6)
        self.incr("latency_count")
        self.incr("latency_sum_us", max(0, micros))
        base = len(SLAB_FIELDS)
        for offset, bound in enumerate(LATENCY_BUCKET_BOUNDS_US):
            if micros <= bound:
                self._words[base + offset] += 1
                return
        self._words[base + _N_BUCKETS - 1] += 1

    def buckets(self) -> List[int]:
        base = len(SLAB_FIELDS)
        return list(self._words[base : base + _N_BUCKETS])

    # -- reading -------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """All scalar fields plus derived latency stats, as plain ints/
        floats (safe to hold after the arena closes)."""
        out: Dict[str, Any] = {field: int(self.get(field)) for field in SLAB_FIELDS}
        buckets = self.buckets()
        count = out["latency_count"]
        out["latency_ms"] = {
            "count": count,
            "mean_ms": (out["latency_sum_us"] / count / 1000.0) if count else 0.0,
            "p50_ms": _bucket_quantile(buckets, count, 0.50),
            "p95_ms": _bucket_quantile(buckets, count, 0.95),
            "p99_ms": _bucket_quantile(buckets, count, 0.99),
        }
        return out


def _bucket_quantile(buckets: List[int], count: int, q: float) -> float:
    """Quantile estimate from histogram counters: the upper bound (ms) of
    the bucket containing the q-th observation; the unbounded tail
    reports the last finite bound."""
    if count <= 0:
        return 0.0
    rank = q * count
    seen = 0
    for index, bucket_count in enumerate(buckets):
        seen += bucket_count
        if seen >= rank:
            bounded = min(index, len(LATENCY_BUCKET_BOUNDS_US) - 1)
            return LATENCY_BUCKET_BOUNDS_US[bounded] / 1000.0
    return LATENCY_BUCKET_BOUNDS_US[-1] / 1000.0


class SlabArena:
    """The shared arena: create in the parent *before* forking.

    Anonymous shared mapping (``mmap(-1, ...)``), so forked children
    inherit the very same pages — no file, no name, vanishes with the
    last process.  Attach each worker to its slab with :meth:`slab`;
    aggregate everything from the parent with :meth:`aggregate`.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("an arena needs at least one worker slot")
        self.workers = workers
        self._size = (_HEADER_WORDS + workers * _SLAB_WORDS) * 8
        self._mmap = mmap.mmap(-1, self._size)
        self._words = memoryview(self._mmap).cast("Q")
        self._words[0] = _ARENA_VERSION
        self._words[1] = workers
        self._words[2] = 0  # reload generation

    # -- reload generation (single writer: the parent) ----------------

    @property
    def reload_generation(self) -> int:
        return self._words[2]

    def bump_reload_generation(self) -> int:
        self._words[2] += 1
        return self._words[2]

    # -- slabs ---------------------------------------------------------

    def slab(self, index: int) -> WorkerSlab:
        if not 0 <= index < self.workers:
            raise IndexError("worker slot %d of %d" % (index, self.workers))
        start = _HEADER_WORDS + index * _SLAB_WORDS
        return WorkerSlab(index, self._words[start : start + _SLAB_WORDS])

    def slabs(self) -> List[WorkerSlab]:
        return [self.slab(index) for index in range(self.workers)]

    def aggregate(self) -> Dict[str, Any]:
        """Pool-wide totals plus the per-worker breakdown — the
        ``workers`` block of the aggregated ``/metrics`` document.

        Counters sum; latency percentiles come from the *summed* bucket
        counters, so they are true pool-wide quantiles.
        """
        per_worker = []
        totals = {field: 0 for field in SLAB_FIELDS if field not in
                  ("pid", "started_ns", "heartbeat_ns", "generation")}
        merged = [0] * _N_BUCKETS
        for slab in self.slabs():
            snap = slab.snapshot()
            snap["worker"] = slab.index
            per_worker.append(snap)
            for field in totals:
                totals[field] += snap[field]
            for index, bucket_count in enumerate(slab.buckets()):
                merged[index] += bucket_count
        count = totals["latency_count"]
        totals_out: Dict[str, Any] = dict(totals)
        totals_out["latency_ms"] = {
            "count": count,
            "mean_ms": (totals["latency_sum_us"] / count / 1000.0) if count else 0.0,
            "p50_ms": _bucket_quantile(merged, count, 0.50),
            "p95_ms": _bucket_quantile(merged, count, 0.95),
            "p99_ms": _bucket_quantile(merged, count, 0.99),
        }
        return {
            "reload_generation": int(self.reload_generation),
            "count": self.workers,
            "totals": totals_out,
            "per_worker": per_worker,
        }

    def liveness(self, stale_after_s: float = 30.0) -> List[Dict[str, Any]]:
        """Per-worker liveness for ``/healthz``: pid, serving generation,
        and whether the heartbeat is fresh."""
        now = time.time_ns()
        out = []
        for slab in self.slabs():
            heartbeat = slab.get("heartbeat_ns")
            out.append({
                "worker": slab.index,
                "pid": int(slab.get("pid")),
                "generation": int(slab.get("generation")),
                "alive": bool(heartbeat)
                and (now - heartbeat) / 1e9 <= stale_after_s,
            })
        return out

    def size_bytes(self) -> int:
        return self._size

    def close(self) -> None:
        try:
            self._words.release()
            self._mmap.close()
        except (BufferError, ValueError):  # slab views still exported
            pass
