"""The ``SO_REUSEPORT`` pre-fork worker pool behind ``repro serve --workers N``.

One GIL-bound process caps the service's QPS no matter how fast the
compiled kernel is.  The classic escape (nginx, unicorn, gunicorn) is
pre-fork with kernel-level load balancing: N processes each ``bind()``
the same ``(host, port)`` with ``SO_REUSEPORT`` and ``listen()``; the
kernel hashes incoming connections across the listening sockets, so no
userspace proxy and no shared accept lock.

The parent process never serves requests.  It:

* **stages kernelpacks** — compiles each eligible ``*.json`` snapshot's
  kernel once and writes ``<name>.kernelpack`` next to it
  (:func:`stage_packs`), so workers mmap instead of recompiling; the
  read-only file-backed mappings share physical pages across workers;
* **reserves the port** — binds (without listening) a ``SO_REUSEPORT``
  socket first, which resolves ``port=0`` to a concrete port for the
  workers and keeps the port claimed across worker restarts;
* **creates the metrics arena** (:class:`~repro.shm.slab.SlabArena`)
  before forking, so every worker inherits the same shared pages;
* **forks and supervises** — each worker signals readiness over a pipe
  once its socket is listening; a crashed worker is reaped and respawned
  with the reliability subsystem's :class:`RetryPolicy` backoff;
* **coordinates hot reload** — :meth:`WorkerPool.reload` restages the
  packs, then bumps the arena's reload generation; each worker's watcher
  thread notices, rescans its registry (which maps the *new* pack — no
  recompilation anywhere) and publishes the generation it now serves in
  its slab, which is how ``/healthz`` proves the remap converged.

Workers are full, independent service processes: own registry, plan
cache, admission gate and slow-query log; their
:class:`~repro.service.metrics.ServiceMetrics` additionally mirror into
the worker's arena slab so the parent can aggregate pool-wide
``/metrics`` without any IPC on the hot path.
"""

from __future__ import annotations

import os
import select
import signal
import socket
import sys
import threading
import traceback
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ReproError
from repro.obs.trace import NULL_TRACER
from repro.persist import PersistError
from repro.reliability.policy import RetryPolicy
from repro.service.config import ServerConfig
from repro.shm.kernelpack import PACK_SUFFIX, KernelPackError, write_pack
from repro.shm.slab import SlabArena, WorkerSlab

__all__ = ["WorkerPool", "WorkerPoolError", "pool_supported", "stage_packs"]

#: Crashed-worker respawn backoff: effectively unbounded attempts (a
#: worker that keeps dying keeps being retried at the capped interval;
#: giving up would turn one bad request pattern into a dead pool).
DEFAULT_RESTART_POLICY = RetryPolicy(
    max_attempts=1_000_000, base_backoff_s=0.1, multiplier=2.0, max_backoff_s=5.0
)

_READY_BYTE = b"R"
_SPAWN_TIMEOUT_S = 60.0


class WorkerPoolError(ReproError):
    """The pool cannot start or operate (platform, bind, worker spawn)."""

    kind = "worker_pool"


def pool_supported() -> bool:
    """True where the pre-fork pool can run: ``os.fork`` plus
    ``SO_REUSEPORT`` (Linux, modern BSDs/macOS).  Elsewhere ``repro
    serve`` falls back to single-process serving."""
    return hasattr(os, "fork") and hasattr(socket, "SO_REUSEPORT")


def stage_packs(
    snapshot_dir: str, force: bool = False, tracer=NULL_TRACER
) -> Dict[str, str]:
    """Write/refresh ``<name>.kernelpack`` beside every eligible
    ``<name>.json`` snapshot; returns name → ``"staged"`` / ``"fresh"`` /
    ``"skipped: <reason>"``.

    Staleness is by mtime: a pack at least as new as its snapshot is
    left alone unless ``force``.  Ineligible synopses (no compiled-kernel
    support) are skipped — the registry serves their JSON as before.
    Pack writes are atomic, so concurrent readers never see a torn file.
    """
    results: Dict[str, str] = {}
    with tracer.span("stage_packs") as span:
        for filename in sorted(os.listdir(snapshot_dir)):
            if not filename.endswith(".json"):
                continue
            name = filename[: -len(".json")]
            json_path = os.path.join(snapshot_dir, filename)
            pack_path = os.path.join(snapshot_dir, name + PACK_SUFFIX)
            if (
                not force
                and os.path.exists(pack_path)
                and os.stat(pack_path).st_mtime_ns >= os.stat(json_path).st_mtime_ns
            ):
                results[name] = "fresh"
                continue
            try:
                with open(json_path, "r", encoding="utf-8") as handle:
                    text = handle.read()
                size = write_pack(pack_path, synopsis_text=text, name=name)
            except (KernelPackError, PersistError, OSError) as error:
                results[name] = "skipped: %s" % error
                span.incr("skipped")
                continue
            results[name] = "staged"
            span.incr("staged")
            span.incr("bytes", size)
    return results


class _Worker:
    """Parent-side record of one live worker process."""

    __slots__ = ("index", "pid", "restarts")

    def __init__(self, index: int, pid: int, restarts: int = 0):
        self.index = index
        self.pid = pid
        self.restarts = restarts


class WorkerPool:
    """Parent supervisor for N pre-forked ``SO_REUSEPORT`` workers.

    ::

        pool = WorkerPool("snapshots/", workers=4, config=ServerConfig(port=0))
        pool.start()            # stage packs, reserve port, fork, wait ready
        ...                     # clients hit http://host:pool.port/
        pool.reload()           # restage packs, remap every worker
        pool.stop()             # SIGTERM, drain, reap

    The pool object lives in the parent only; worker processes never
    return from :meth:`_spawn` (they ``os._exit`` on any exit path, so a
    fork inside pytest can never run the harness's teardown twice).
    """

    def __init__(
        self,
        snapshot_dir: str,
        workers: int,
        config: Optional[ServerConfig] = None,
        restart_policy: Optional[RetryPolicy] = None,
        reload_poll_s: float = 0.2,
        stale_after_s: float = 30.0,
        tracer=NULL_TRACER,
        on_event: Optional[Callable[[str], None]] = None,
    ):
        if workers < 1:
            raise WorkerPoolError("workers must be >= 1, got %d" % workers)
        if not pool_supported():
            raise WorkerPoolError(
                "pre-fork pool needs os.fork and SO_REUSEPORT "
                "(unavailable on this platform); run --workers 1"
            )
        self.snapshot_dir = snapshot_dir
        self.workers = workers
        self.config = config if config is not None else ServerConfig()
        self.restart_policy = (
            restart_policy if restart_policy is not None else DEFAULT_RESTART_POLICY
        )
        self.reload_poll_s = reload_poll_s
        self.stale_after_s = stale_after_s
        self.tracer = tracer
        self._on_event = on_event if on_event is not None else (lambda line: None)
        self.host = self.config.host
        self.port = self.config.port
        self.arena: Optional[SlabArena] = None
        self.restarts_total = 0
        self.pack_status: Dict[str, str] = {}
        self._reserve_sock: Optional[socket.socket] = None
        self._children: Dict[int, _Worker] = {}
        self._backoffs: List[Any] = []
        self._stopping = threading.Event()
        self._supervisor: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle (parent)
    # ------------------------------------------------------------------

    def start(self) -> "WorkerPool":
        with self.tracer.span("pool_start") as span:
            self.pack_status = stage_packs(self.snapshot_dir, tracer=self.tracer)
            self._reserve_port()
            self.arena = SlabArena(self.workers)
            self._backoffs = [self.restart_policy.backoffs() for _ in range(self.workers)]
            try:
                for index in range(self.workers):
                    self._spawn(index)
            except Exception:
                self.stop()
                raise
            span.incr("workers", self.workers)
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-pool-supervisor", daemon=True
        )
        self._supervisor.start()
        return self

    def stop(self, drain_timeout_s: Optional[float] = None) -> None:
        """Graceful shutdown: SIGTERM every worker (each sheds new work
        and drains in-flight requests), reap, then SIGKILL stragglers."""
        budget = (
            drain_timeout_s
            if drain_timeout_s is not None
            else self.config.drain_timeout_s + 5.0
        )
        self._stopping.set()
        with self._lock:
            pids = list(self._children)
        for pid in pids:
            _kill_quietly(pid, signal.SIGTERM)
        deadline = _monotonic() + budget
        for pid in pids:
            if not _reap(pid, deadline):
                _kill_quietly(pid, signal.SIGKILL)
                _reap(pid, _monotonic() + 5.0)
            with self._lock:
                self._children.pop(pid, None)
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
            self._supervisor = None
        if self._reserve_sock is not None:
            self._reserve_sock.close()
            self._reserve_sock = None
        if self.arena is not None:
            self.arena.close()

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Hot reload (parent)
    # ------------------------------------------------------------------

    def reload(self, force: bool = False) -> Dict[str, Any]:
        """Stage fresh packs, then signal every worker to remap.

        The heavy lifting (kernel compilation into the new pack) happens
        *here*, once; workers only re-open and re-map files.  Returns the
        new generation and the per-snapshot staging status.
        """
        if self.arena is None:
            raise WorkerPoolError("pool is not running")
        with self.tracer.span("pool_reload") as span:
            self.pack_status = stage_packs(
                self.snapshot_dir, force=force, tracer=self.tracer
            )
            generation = self.arena.bump_reload_generation()
            span.incr("generation", generation)
        self._on_event("reload staged: generation %d" % generation)
        return {"generation": generation, "packs": dict(self.pack_status)}

    def reload_converged(self) -> bool:
        """True once every live worker serves the current generation."""
        if self.arena is None:
            return False
        target = self.arena.reload_generation
        return all(
            status["generation"] == target
            for status in self.arena.liveness(self.stale_after_s)
        )

    # ------------------------------------------------------------------
    # Introspection (parent; consumed by the control server)
    # ------------------------------------------------------------------

    def describe(self) -> Dict[str, Any]:
        arena = self.arena
        return {
            "workers": self.workers,
            "host": self.host,
            "port": self.port,
            "restarts": self.restarts_total,
            "reload_generation": arena.reload_generation if arena else 0,
            "packs": dict(self.pack_status),
        }

    def liveness(self) -> List[Dict[str, Any]]:
        if self.arena is None:
            return []
        return self.arena.liveness(self.stale_after_s)

    # ------------------------------------------------------------------
    # Internals (parent)
    # ------------------------------------------------------------------

    def _reserve_port(self) -> None:
        """Bind (but never listen) a ``SO_REUSEPORT`` socket: resolves
        ``port=0`` to the concrete port workers must share, and keeps the
        port owned by the pool while individual workers restart.  A bound
        socket that is not listening receives none of the load-balanced
        connections, so the parent stays out of the data path."""
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((self.config.host, self.config.port))
        except OSError as error:
            sock.close()
            raise WorkerPoolError(
                "cannot reserve %s:%d: %s"
                % (self.config.host, self.config.port, error)
            )
        self.host, self.port = sock.getsockname()[:2]
        self._reserve_sock = sock

    def _spawn(self, index: int) -> None:
        read_fd, write_fd = os.pipe()
        with self.tracer.span("worker_fork") as span:
            span.incr("worker", index)
            pid = os.fork()
        if pid == 0:  # ---- child: never returns ----
            status = 70  # EX_SOFTWARE unless the worker exits cleanly
            try:
                os.close(read_fd)
                status = self._child_main(index, write_fd)
            except BaseException:
                try:
                    traceback.print_exc()
                    sys.stderr.flush()
                except Exception:
                    pass
            finally:
                os._exit(status)
        # ---- parent ----
        os.close(write_fd)
        try:
            self._await_ready(read_fd, pid, index)
        finally:
            os.close(read_fd)
        with self._lock:
            self._children[pid] = _Worker(index, pid)

    def _await_ready(self, read_fd: int, pid: int, index: int) -> None:
        deadline = _monotonic() + _SPAWN_TIMEOUT_S
        while True:
            timeout = max(0.0, deadline - _monotonic())
            readable, _, _ = select.select([read_fd], [], [], min(timeout, 0.5))
            if readable:
                if os.read(read_fd, 1) == _READY_BYTE:
                    return
                raise WorkerPoolError(
                    "worker %d (pid %d) died before binding its socket"
                    % (index, pid)
                )
            if timeout <= 0.0:
                _kill_quietly(pid, signal.SIGKILL)
                _reap(pid, _monotonic() + 5.0)
                raise WorkerPoolError(
                    "worker %d (pid %d) not ready within %.0fs"
                    % (index, pid, _SPAWN_TIMEOUT_S)
                )

    def _supervise(self) -> None:
        """Reap dead workers and respawn them with backoff."""
        while not self._stopping.is_set():
            with self._lock:
                pids = list(self._children)
            for pid in pids:
                try:
                    reaped, _status = os.waitpid(pid, os.WNOHANG)
                except ChildProcessError:
                    reaped = pid
                if reaped != pid or self._stopping.is_set():
                    continue
                with self._lock:
                    worker = self._children.pop(pid, None)
                if worker is None:
                    continue
                self.restarts_total += 1
                pause = next(self._backoffs[worker.index], 5.0)
                self._on_event(
                    "worker %d (pid %d) exited; respawning in %.2gs"
                    % (worker.index, pid, pause)
                )
                if self._stopping.wait(pause):
                    return
                try:
                    self._spawn(worker.index)
                except WorkerPoolError as error:
                    self._on_event("respawn of worker %d failed: %s"
                                   % (worker.index, error))
            self._stopping.wait(0.2)

    # ------------------------------------------------------------------
    # Worker side (runs post-fork, exits via os._exit)
    # ------------------------------------------------------------------

    def _child_main(self, index: int, ready_fd: int) -> int:
        # The child inherited the parent's reservation socket; it must
        # not hold it (a dead parent's port would never free).
        if self._reserve_sock is not None:
            self._reserve_sock.close()
        arena = self.arena
        slab = arena.slab(index)
        service, server = self._build_worker_service(slab, arena)
        stop = threading.Event()
        signal.signal(signal.SIGTERM, lambda *_args: stop.set())
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        slab.mark_started(generation=arena.reload_generation)
        server.start()  # binds SO_REUSEPORT and serves on a daemon thread
        watcher = threading.Thread(
            target=self._watch_reload,
            args=(service, slab, arena, stop),
            name="repro-worker-remap",
            daemon=True,
        )
        watcher.start()
        os.write(ready_fd, _READY_BYTE)
        os.close(ready_fd)
        stop.wait()
        server.close(self.config.drain_timeout_s)
        return 0

    def _build_worker_service(self, slab: WorkerSlab, arena: SlabArena):
        from repro.obs.slowlog import SlowQueryLog
        from repro.reliability.shedding import AdmissionGate
        from repro.service.plancache import PlanCache
        from repro.service.registry import SynopsisRegistry
        from repro.service.server import EstimationService, ServiceServer

        config = self.config
        registry = SynopsisRegistry(
            self.snapshot_dir, check_interval=config.reload_interval_s
        )
        registry.scan()
        service = EstimationService(
            registry,
            plan_cache=PlanCache(config.plan_cache_capacity),
            metrics=SlabMirrorMetrics(slab),
            gate=AdmissionGate(max_inflight=config.max_inflight),
            semcache_capacity=config.semcache_capacity,
            semcache_ttl_s=config.semcache_ttl_s,
            request_deadline_s=config.request_deadline_s,
            slow_log=SlowQueryLog(
                capacity=config.slowlog_capacity,
                threshold_ms=config.slowlog_threshold_ms,
                top_k=config.slowlog_top_k,
            ),
            trace_sample_rate=config.trace_sample_rate,
        )
        # Any worker can render the pool-wide picture: the arena is
        # shared memory, readable from every process.
        service.workers_view = arena.aggregate
        service.workers_liveness = lambda: arena.liveness(self.stale_after_s)
        server = ServiceServer(
            service, host=self.host, port=self.port, reuse_port=True
        )
        return service, server

    def _watch_reload(
        self,
        service,
        slab: WorkerSlab,
        arena: SlabArena,
        stop: threading.Event,
    ) -> None:
        """Worker-side reload watcher: polls the arena generation the
        parent bumps, rescans the registry when it moves (mapping the
        restaged packs — no kernel compile), and keeps the slab's
        heartbeat and kernel counters fresh."""
        seen = slab.get("generation")
        while not stop.wait(self.reload_poll_s):
            slab.heartbeat()
            _sync_pack_counters(service.registry, slab)
            current = arena.reload_generation
            if current == seen:
                continue
            with self.tracer.span("worker_remap") as span:
                span.incr("generation", current)
                service.registry.scan()
            seen = current
            slab.set("generation", current)
            slab.incr("remaps")
            service.metrics.incr("remaps_total")


def _sync_pack_counters(registry, slab: WorkerSlab) -> None:
    """Publish the worker's kernelpack hit/miss totals into its slab.

    Peeks at already-materialized kernels only (never triggers a compile
    or a reload) and tolerates any registry shape."""
    hits = misses = 0
    try:
        names = registry.names()
        for name in names:
            entry = registry._entries.get(name)  # peek; get() may reload
            if entry is None:
                continue
            kernel = getattr(entry.system, "kernel_peek", lambda: None)()
            if kernel is None:
                continue
            hits += getattr(kernel, "pack_hits", 0)
            misses += getattr(kernel, "pack_misses", 0)
    except Exception:
        return
    slab.set("pack_hits", hits)
    slab.set("pack_misses", misses)


class SlabMirrorMetrics:
    """A worker's :class:`ServiceMetrics` that also writes its slab.

    Inherits all in-process behaviour (the worker's own ``/metrics``
    stays fully functional) and mirrors the cross-process essentials —
    request/query/error counts, shed/deadline/kernel events and the
    latency histogram — into the shared slab for parent aggregation.
    """

    _EVENT_FIELDS = {
        "shed_total": "shed",
        "deadline_exceeded_total": "deadline_hits",
        "kernel_hits_total": "kernel_hits",
        "kernel_misses_total": "kernel_misses",
        "semcache_hits_total": "semcache_hits",
        "semcache_misses_total": "semcache_misses",
    }

    def __init__(self, slab: WorkerSlab, **kwargs):
        from repro.service.metrics import ServiceMetrics

        self._inner = ServiceMetrics(**kwargs)
        self._slab = slab

    def observe(self, synopsis, latency_s, queries=1, error=False) -> None:
        self._inner.observe(synopsis, latency_s, queries=queries, error=error)
        slab = self._slab
        slab.incr("requests")
        slab.incr("queries", queries)
        if error:
            slab.incr("errors")
        slab.observe_latency(latency_s)
        slab.heartbeat()

    def incr(self, name: str, delta: int = 1) -> None:
        self._inner.incr(name, delta)
        field = self._EVENT_FIELDS.get(name)
        if field is not None:
            self._slab.incr(field, delta)

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


def _monotonic() -> float:
    import time

    return time.monotonic()


def _kill_quietly(pid: int, sig: int) -> None:
    try:
        os.kill(pid, sig)
    except (ProcessLookupError, PermissionError):
        pass


def _reap(pid: int, deadline: float) -> bool:
    """Wait for ``pid`` until ``deadline``; True when it was reaped."""
    import time

    while True:
        try:
            reaped, _ = os.waitpid(pid, os.WNOHANG)
        except ChildProcessError:
            return True
        if reaped == pid:
            return True
        if _monotonic() >= deadline:
            return False
        time.sleep(0.02)
