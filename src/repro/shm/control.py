"""Parent-side control plane for the worker pool.

The pool's data path is worker-only (the parent never accepts on the
served port), so operations need a separate, tiny HTTP surface owned by
the supervisor:

``GET /healthz``
    Pool liveness and convergence: worker count, per-worker
    ``{pid, generation, alive}`` from the slab heartbeats, the current
    reload generation, restart count and whether every live worker has
    remapped to the latest generation (``converged``).  Status is
    ``"ok"`` when all workers are alive and converged, ``"degraded"``
    otherwise — the endpoint itself stays 200 (the pool *is* serving).
``GET /metrics``
    The aggregated pool document straight from the shared-memory arena:
    totals (true pool-wide latency percentiles from merged histogram
    buckets) plus the per-worker breakdown under ``workers.per_worker``.
    ``?format=prom`` renders the same numbers as Prometheus text
    exposition (format 0.0.4), labelled per worker.
``POST /reload``
    Stage fresh kernelpacks and bump the reload generation (the same
    operation ``SIGHUP`` triggers on the CLI supervisor).  Replies with
    the new generation and per-snapshot staging status; workers remap
    asynchronously — poll ``/healthz`` for ``converged``.

Everything here reads shared memory only; no request ever crosses into
a worker, so the control plane stays responsive while workers are
saturated.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional
from urllib.parse import parse_qs, urlsplit

from repro.shm.pool import WorkerPool
from repro.shm.slab import LATENCY_BUCKET_BOUNDS_US

__all__ = ["ControlServer", "pool_health", "pool_metrics", "render_pool_prom"]

PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def pool_health(pool: WorkerPool) -> Dict[str, Any]:
    """The control ``/healthz`` document (also used by the CLI banner)."""
    workers = pool.liveness()
    converged = pool.reload_converged()
    alive = sum(1 for worker in workers if worker["alive"])
    healthy = alive == pool.workers and converged
    return {
        "status": "ok" if healthy else "degraded",
        "role": "pool-supervisor",
        "workers": pool.workers,
        "alive": alive,
        "converged": converged,
        "reload_generation": pool.arena.reload_generation if pool.arena else 0,
        "restarts": pool.restarts_total,
        "per_worker": workers,
    }


def pool_metrics(pool: WorkerPool) -> Dict[str, Any]:
    """The aggregated ``/metrics`` document: arena totals + breakdown."""
    if pool.arena is None:
        return {"workers": {"count": 0, "totals": {}, "per_worker": []}}
    document = pool.describe()
    document["workers"] = pool.arena.aggregate()
    return document


def render_pool_prom(pool: WorkerPool) -> str:
    """Prometheus exposition of the aggregated pool metrics."""
    lines = []

    def emit(name: str, value, help_text: str, labels: str = "") -> None:
        if not any(line.startswith("# HELP %s " % name) for line in lines):
            lines.append("# HELP %s %s" % (name, help_text))
            lines.append("# TYPE %s gauge" % name)
        lines.append("%s%s %g" % (name, labels, value))

    emit("repro_pool_workers", pool.workers, "Configured worker count.")
    emit("repro_pool_restarts_total", pool.restarts_total,
         "Crashed-worker respawns since pool start.")
    if pool.arena is None:
        return "\n".join(lines) + "\n"
    aggregate = pool.arena.aggregate()
    emit("repro_pool_reload_generation", aggregate["reload_generation"],
         "Current hot-reload generation.")
    totals = aggregate["totals"]
    for field in sorted(totals):
        if field in ("latency_ms", "latency_count", "latency_sum_us"):
            continue
        emit("repro_pool_%s_total" % field, totals[field],
             "Pool-wide %s across worker slabs." % field.replace("_", " "))
    latency = totals["latency_ms"]
    for quantile, key in (("0.5", "p50_ms"), ("0.95", "p95_ms"), ("0.99", "p99_ms")):
        emit(
            "repro_pool_latency_ms",
            latency[key],
            "Pool-wide request latency quantiles (merged histogram, "
            "bucket bounds up to %dus)." % LATENCY_BUCKET_BOUNDS_US[-1],
            '{quantile="%s"}' % quantile,
        )
    for worker in aggregate["per_worker"]:
        emit(
            "repro_pool_worker_requests_total",
            worker["requests"],
            "Requests handled per worker.",
            '{worker="%d"}' % worker["worker"],
        )
        emit(
            "repro_pool_worker_generation",
            worker["generation"],
            "Reload generation each worker serves.",
            '{worker="%d"}' % worker["worker"],
        )
    return "\n".join(lines) + "\n"


def _make_handler(pool: WorkerPool) -> type:
    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-pool-control"
        protocol_version = "HTTP/1.1"

        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            pass

        def _reply_json(self, status: int, body: Dict[str, Any]) -> None:
            data = json.dumps(body).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def _reply_text(self, status: int, text: str) -> None:
            data = text.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", PROM_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def do_GET(self) -> None:
            try:
                parts = urlsplit(self.path)
                if parts.path == "/healthz":
                    self._reply_json(200, pool_health(pool))
                elif parts.path == "/metrics":
                    params = parse_qs(parts.query)
                    if params.get("format", [""])[0] == "prom":
                        self._reply_text(200, render_pool_prom(pool))
                    else:
                        self._reply_json(200, pool_metrics(pool))
                else:
                    self._reply_json(
                        404,
                        {"error": {"kind": "not_found",
                                   "message": "no such endpoint %r" % self.path}},
                    )
            except Exception as error:  # pragma: no cover - defensive
                self._reply_json(
                    500,
                    {"error": {"kind": "internal", "message": str(error)}},
                )

        def do_POST(self) -> None:
            try:
                if self.path != "/reload":
                    self._reply_json(
                        404,
                        {"error": {"kind": "not_found",
                                   "message": "no such endpoint %r" % self.path}},
                    )
                    return
                length = int(self.headers.get("Content-Length", 0) or 0)
                if length:  # drain for keep-alive correctness; body unused
                    self.rfile.read(length)
                self._reply_json(200, pool.reload())
            except Exception as error:  # pragma: no cover - defensive
                self._reply_json(
                    500,
                    {"error": {"kind": "internal", "message": str(error)}},
                )

    return Handler


class ControlServer:
    """The supervisor's HTTP server; binds its own (non-balanced) port."""

    def __init__(self, pool: WorkerPool, host: str = "127.0.0.1", port: int = 0):
        self.pool = pool
        self.httpd = ThreadingHTTPServer((host, port), _make_handler(pool))
        self.httpd.daemon_threads = True
        self.host = self.httpd.server_address[0]
        self.port = self.httpd.server_address[1]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        return "http://%s:%d" % (self.host, self.port)

    def start(self) -> "ControlServer":
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-pool-control", daemon=True
        )
        self._thread.start()
        return self

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "ControlServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
