"""The kernelpack: a flat, mmap-able snapshot of a compiled kernel.

A :class:`~repro.kernel.compiled.SynopsisKernel` is already flat data —
per-tag pid tuples, ``array('d')`` frequency tables, per-depth feasibility
bitsets and containment-bitmatrix rows.  The pack serializes those
buffers **directly**, raw and contiguous, behind a fixed header and a
JSON offset table:

.. code-block:: text

    [prologue 24B] <4s H H I I Q>  magic "RKPK", version, flags,
                                   crc32(body), toc length, total length
    [toc]          JSON: embedded-synopsis extent, global pid width, per
                   tag {count, depths, segment offsets}, per (upper,
                   lower, axis) pair {down/up row-matrix offsets}
    [segments]     8-byte-aligned raw buffers: the synopsis JSON text,
                   then per tag pids / float64 freqs / init bitsets /
                   alive mask, then per pair down / up row matrices

The **loader** maps the file read-only and reconstructs a live kernel
without deserializing per entry: frequency tables become
``memoryview(...).cast("d")`` views straight over the mapped pages (zero
copy — N worker processes mapping the same file share one physical copy
through the page cache), and bitset rows materialize lazily, per tag or
pair, on first use by a join — exactly the laziness of in-process
compilation, minus the O(pids²) containment computation.

Integrity: the prologue carries a CRC32 of everything after it.  A
truncated or corrupt pack fails :func:`load_pack` with
:class:`KernelPackError` (kind ``"kernelpack"``) and callers — the
hot-reloading registry, the CLI — fall back to the ``.json`` snapshot
and in-process compilation.  The embedded synopsis is byte-identical to
the snapshot the kernel was compiled from, so a pack can serve alone.

Bit-identity: :func:`write_pack` always compiles the kernel from the
*embedded* synopsis text (round-tripped through :mod:`repro.persist`),
so the packed buffers correspond exactly to the provider a loader will
reconstruct — estimates from a mapped kernel equal in-process estimates
bit for bit (pinned by ``tests/shm/test_kernelpack.py``).
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import zlib
from typing import Any, Dict, Optional, Tuple

from repro.errors import PersistError as _BasePersistError
from repro.kernel.compiled import ContainmentPair, SynopsisKernel, TagTable
from repro.obs.trace import NULL_TRACER
from repro.reliability import faults

__all__ = [
    "KernelPackError",
    "LoadedPack",
    "PACK_SUFFIX",
    "PACK_VERSION",
    "PackedKernel",
    "describe_pack",
    "load_pack",
    "pack_bytes",
    "pack_stamp",
    "write_pack",
]

PACK_SUFFIX = ".kernelpack"
PACK_MAGIC = b"RKPK"
PACK_VERSION = 1

#: magic, version, flags, crc32(body), toc length, total length.
_PROLOGUE = struct.Struct("<4sHHIIQ")
_ALIGN = 8


class KernelPackError(_BasePersistError):
    """A kernelpack that cannot be written, read or trusted.

    Part of the :class:`~repro.errors.ReproError` hierarchy with the
    stable wire kind ``"kernelpack"``; a :class:`PersistError` subclass
    so existing snapshot-failure handling (registry last-good fallback,
    CLI reporting) treats a bad pack like any other bad snapshot.
    """

    kind = "kernelpack"


def _align(size: int) -> int:
    return (size + _ALIGN - 1) // _ALIGN * _ALIGN


def _mask_bytes(bits: int) -> int:
    return max(1, (bits + 7) // 8)


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------


class _SegmentWriter:
    """Accumulates 8-byte-aligned raw segments, tracking offsets."""

    def __init__(self) -> None:
        self.buffer = bytearray()

    def append(self, data: bytes) -> int:
        pad = _align(len(self.buffer)) - len(self.buffer)
        if pad:
            self.buffer.extend(b"\x00" * pad)
        offset = len(self.buffer)
        self.buffer.extend(data)
        return offset


def pack_bytes(
    system: Optional[object] = None,
    synopsis_text: Optional[str] = None,
    name: str = "",
) -> bytes:
    """Serialize a fully compiled kernel (plus its synopsis) to pack bytes.

    Exactly one of ``system`` / ``synopsis_text`` is required (both is
    fine; the text wins as the canonical source).  The kernel is always
    compiled from the embedded text so packed buffers and the loader's
    reconstructed provider agree bit for bit.
    """
    from repro import persist

    if synopsis_text is None:
        if system is None:
            raise KernelPackError("pack_bytes needs a system or synopsis text")
        synopsis_text = persist.dumps(system)
    compile_system = persist.loads(synopsis_text)
    kernel = compile_system.kernel()
    if kernel is None or not kernel.eligible:
        raise KernelPackError(
            "only kernel-eligible (histogram-backed) synopses can be packed"
        )
    if not name:
        name = getattr(system, "name", "") or compile_system.name
    kernel.compile_full()
    tags, pairs = kernel.export_state()

    width = compile_system.encoding_table.width
    pid_bytes = _mask_bytes(width)
    segments = _SegmentWriter()
    synopsis_raw = synopsis_text.encode("utf-8")
    synopsis_off = segments.append(synopsis_raw)

    toc_tags: Dict[str, Dict[str, int]] = {}
    for tag in sorted(tags):
        table = tags[tag]
        n = len(table.pids)
        mask = _mask_bytes(n)
        toc_tags[tag] = {
            "n": n,
            "depths": len(table.init_at),
            "mask": mask,
            "pids": segments.append(
                b"".join(pid.to_bytes(pid_bytes, "little") for pid in table.pids)
            ),
            "freqs": segments.append(bytes(table.freqs.tobytes())),
            "init": segments.append(
                b"".join(m.to_bytes(mask, "little") for m in table.init_at)
            ),
            "alive": segments.append(table.alive_mask.to_bytes(mask, "little")),
        }
    toc_pairs = []
    for upper_tag, lower_tag, child in sorted(pairs):
        pair = pairs[(upper_tag, lower_tag, child)]
        lower_mask = toc_tags[lower_tag]["mask"]
        upper_mask = toc_tags[upper_tag]["mask"]
        down_off = segments.append(
            b"".join(row.to_bytes(lower_mask, "little") for row in pair.down)
        )
        up_off = segments.append(
            b"".join(row.to_bytes(upper_mask, "little") for row in pair.up)
        )
        toc_pairs.append([upper_tag, lower_tag, int(child), down_off, up_off])

    toc = {
        "name": name,
        "pid_bytes": pid_bytes,
        "synopsis": [synopsis_off, len(synopsis_raw)],
        "tags": toc_tags,
        "pairs": toc_pairs,
    }
    toc_raw = json.dumps(toc, sort_keys=True, separators=(",", ":")).encode("utf-8")
    seg_base = _align(_PROLOGUE.size + len(toc_raw))
    toc_pad = seg_base - _PROLOGUE.size - len(toc_raw)
    body = toc_raw + b"\x00" * toc_pad + bytes(segments.buffer)
    total = _PROLOGUE.size + len(body)
    prologue = _PROLOGUE.pack(
        PACK_MAGIC, PACK_VERSION, 0, zlib.crc32(body) & 0xFFFFFFFF, len(toc_raw), total
    )
    return prologue + body


def write_pack(
    path: str,
    system: Optional[object] = None,
    synopsis_text: Optional[str] = None,
    name: str = "",
) -> int:
    """Write a pack atomically (temp file + ``os.replace``); returns its
    size in bytes.  A crashed write never leaves a torn pack at ``path``
    — concurrent mappers see the complete old file or the complete new
    one (their established mappings keep the old inode alive)."""
    data = pack_bytes(system=system, synopsis_text=synopsis_text, name=name)
    temporary = "%s.tmp.%d" % (path, os.getpid())
    with open(temporary, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, path)
    return len(data)


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------


class KernelPack:
    """A verified, mapped pack file: offset table + raw segment access.

    Decoding is lazy and per tag / per pair — the constructor only maps
    the file, checks the checksum and parses the offset table.  All
    segment reads go through one read-only :class:`memoryview` over the
    mapping; frequency tables are ``cast("d")`` sub-views (zero copy).
    """

    def __init__(self, path: str):
        self.path = path
        handle = open(path, "rb")
        try:
            try:
                self._mmap = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            except ValueError as error:
                raise KernelPackError("cannot map pack %s: %s" % (path, error))
        finally:
            handle.close()
        try:
            self._view = memoryview(self._mmap)
            header = _read_prologue(bytes(self._view[: _PROLOGUE.size]), path)
            _, _, self.flags, crc, toc_len, total = header
            if total != len(self._mmap):
                raise KernelPackError(
                    "pack %s is truncated: header says %d bytes, file has %d"
                    % (path, total, len(self._mmap))
                )
            body = self._view[_PROLOGUE.size : total]
            if zlib.crc32(body) & 0xFFFFFFFF != crc:
                raise KernelPackError(
                    "pack %s checksum mismatch — the file is corrupt" % path
                )
            try:
                toc = json.loads(
                    bytes(self._view[_PROLOGUE.size : _PROLOGUE.size + toc_len]).decode(
                        "utf-8"
                    )
                )
                self.name = str(toc["name"])
                self.pid_bytes = int(toc["pid_bytes"])
                self._synopsis_extent = tuple(toc["synopsis"])
                self.tags: Dict[str, Dict[str, int]] = toc["tags"]
                self.pairs: Dict[Tuple[str, str, bool], Tuple[int, int]] = {
                    (upper, lower, bool(child)): (down_off, up_off)
                    for upper, lower, child, down_off, up_off in toc["pairs"]
                }
            except (KeyError, TypeError, ValueError) as error:
                raise KernelPackError("pack %s has a malformed offset table: %s"
                                      % (path, error))
            self._base = _align(_PROLOGUE.size + toc_len)
        except Exception:
            self.close()
            raise

    # -- raw access ----------------------------------------------------

    def _segment(self, offset: int, length: int) -> memoryview:
        start = self._base + offset
        return self._view[start : start + length]

    def synopsis_text(self) -> str:
        offset, length = self._synopsis_extent
        return bytes(self._segment(offset, length)).decode("utf-8")

    # -- decoding (lazy, called per tag / pair on first use) -----------

    def tag_table(self, tag: str) -> Optional[TagTable]:
        entry = self.tags.get(tag)
        if entry is None:
            return None
        n, depths, mask = entry["n"], entry["depths"], entry["mask"]
        pid_bytes = self.pid_bytes
        pid_buf = self._segment(entry["pids"], n * pid_bytes)
        pids = tuple(
            int.from_bytes(pid_buf[i * pid_bytes : (i + 1) * pid_bytes], "little")
            for i in range(n)
        )
        # Zero copy: the float table is a typed view over the mapped
        # pages themselves (offsets are 8-aligned by construction).
        freqs = self._segment(entry["freqs"], n * 8).cast("d")
        init_buf = self._segment(entry["init"], depths * mask)
        init_at = tuple(
            int.from_bytes(init_buf[d * mask : (d + 1) * mask], "little")
            for d in range(depths)
        )
        alive = int.from_bytes(self._segment(entry["alive"], mask), "little")
        index_of = {pid: i for i, pid in enumerate(pids)}
        return TagTable(tag, pids, freqs, index_of, init_at, alive)

    def pair(
        self, upper_tag: str, lower_tag: str, child: bool, n_upper: int, n_lower: int
    ) -> Optional[ContainmentPair]:
        extent = self.pairs.get((upper_tag, lower_tag, child))
        if extent is None:
            return None
        down_off, up_off = extent
        lower_mask = _mask_bytes(n_lower)
        upper_mask = _mask_bytes(n_upper)
        down_buf = self._segment(down_off, n_upper * lower_mask)
        up_buf = self._segment(up_off, n_lower * upper_mask)
        down = tuple(
            int.from_bytes(down_buf[i * lower_mask : (i + 1) * lower_mask], "little")
            for i in range(n_upper)
        )
        up = tuple(
            int.from_bytes(up_buf[j * upper_mask : (j + 1) * upper_mask], "little")
            for j in range(n_lower)
        )
        return ContainmentPair(down, up)

    def size_bytes(self) -> int:
        return len(self._mmap)

    def close(self) -> None:
        """Best-effort unmap.  Exported views (a served kernel's
        frequency tables) keep the mapping alive; closing then is a
        no-op and the OS reclaims the pages when the last view dies."""
        try:
            view = getattr(self, "_view", None)
            if view is not None:
                view.release()
                self._view = None
            self._mmap.close()
        except (BufferError, ValueError):  # views still exported
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<KernelPack %r tags=%d pairs=%d %d bytes>" % (
            self.name, len(self.tags), len(self.pairs), len(self._mmap),
        )


def _read_prologue(raw: bytes, path: str):
    if len(raw) < _PROLOGUE.size:
        raise KernelPackError("pack %s is truncated (no header)" % path)
    magic, version, flags, crc, toc_len, total = _PROLOGUE.unpack(raw)
    if magic != PACK_MAGIC:
        raise KernelPackError("%s is not a kernelpack (bad magic %r)" % (path, magic))
    if version != PACK_VERSION:
        raise KernelPackError(
            "unsupported kernelpack version %d in %s (this build reads %d)"
            % (version, path, PACK_VERSION)
        )
    return magic, version, flags, crc, toc_len, total


class PackedKernel(SynopsisKernel):
    """A kernel whose tag tables and containment pairs come off a pack.

    Same join machinery, plan cache, support memo and ``supports`` gating
    as the in-process kernel — only the *compilation* step is replaced by
    lazy decoding from the mapped buffers.  Tags or pairs a workload
    touches that the pack does not carry (a query over a tag pair that
    never co-occurs, a pack built by an older workload) fall back to
    in-process compilation against the loaded provider; ``pack_hits`` /
    ``pack_misses`` in :meth:`stats` make the split observable.
    """

    def __init__(self, table, provider, pack: KernelPack, name: str = ""):
        super().__init__(table, provider, name=name or pack.name)
        self.pack = pack

    @property
    def packed(self) -> bool:
        return True

    def _build_tag_table(self, tag: str) -> TagTable:
        table = self.pack.tag_table(tag)
        if table is None:
            self.pack_misses += 1
            return super()._build_tag_table(tag)
        self.pack_hits += 1
        return table

    def _build_pair(self, upper: TagTable, lower: TagTable, child: bool):
        pair = self.pack.pair(
            upper.tag, lower.tag, child, len(upper.pids), len(lower.pids)
        )
        if pair is None:
            self.pack_misses += 1
            return super()._build_pair(upper, lower, child)
        self.pack_hits += 1
        return pair


class LoadedPack:
    """The product of :func:`load_pack`: a servable system + its kernel."""

    __slots__ = ("system", "kernel", "pack")

    def __init__(self, system, kernel: PackedKernel, pack: KernelPack):
        self.system = system
        self.kernel = kernel
        self.pack = pack


def load_pack(path: str, tracer=NULL_TRACER) -> LoadedPack:
    """Map a pack and reconstruct a live, already-compiled system.

    The estimation system is rebuilt from the embedded synopsis (the
    histograms are genuinely deserialized — they are small and the order
    estimator needs them as objects); the *kernel* — the expensive part
    — is reconstructed zero-copy from the mapping and adopted by the
    system, so :meth:`~repro.core.system.EstimationSystem.kernel_state`
    reports ``"ready"`` with no compilation having run.

    Raises :class:`KernelPackError` for truncated, corrupt (checksum),
    version-incompatible or malformed packs.
    """
    from repro import persist

    with tracer.span("pack_load") as span:
        faults.fire("pack.load", path)
        try:
            pack = KernelPack(path)
        except OSError as error:
            raise KernelPackError("cannot read pack %s: %s" % (path, error))
        try:
            system = persist.loads(pack.synopsis_text())
        except _BasePersistError as error:
            pack.close()
            raise KernelPackError(
                "pack %s embeds an unloadable synopsis: %s" % (path, error)
            )
        kernel = PackedKernel(
            system.encoding_table, system.path_provider, pack, name=pack.name
        )
        system.adopt_kernel(kernel)
        span.incr("tags", len(pack.tags))
        span.incr("pairs", len(pack.pairs))
    return LoadedPack(system, kernel, pack)


def pack_stamp(path: str) -> tuple:
    """A cheap change stamp for hot reload: ``(mtime_ns, size, crc)``.

    Unlike the JSON snapshot stamp this does not hash the whole file on
    every freshness check — the body CRC is read straight out of the
    24-byte prologue (it changes whenever the content does).
    """
    status = os.stat(path)
    with open(path, "rb") as handle:
        raw = handle.read(_PROLOGUE.size)
    _, _, _, crc, _, _ = _read_prologue(raw, path)
    return (status.st_mtime_ns, status.st_size, crc)


def describe_pack(path: str) -> Dict[str, Any]:
    """Verified pack metadata (the CLI's ``repro pack --check``)."""
    pack = KernelPack(path)
    try:
        return {
            "path": path,
            "name": pack.name,
            "version": PACK_VERSION,
            "size_bytes": pack.size_bytes(),
            "tags": len(pack.tags),
            "pairs": len(pack.pairs),
            "synopsis_bytes": pack._synopsis_extent[1],
        }
    finally:
        pack.close()
