"""Selectivity-driven query planning.

The point of a cardinality estimator is to steer execution.  The full
cost-based machinery lives in :mod:`repro.plan` — an explicit
:class:`~repro.plan.ir.Plan` IR with per-step expected cardinalities,
join-order enumeration, and adaptive re-optimizing execution behind
:meth:`EstimationSystem.execute` / :meth:`EstimationSystem.explain`.

This module keeps the original lightweight :class:`QueryPlanner`, which
reorders a query's edges most-selective-first and returns a plain
rewritten :class:`~repro.xpath.ast.Query` for the naive processor.  Its
sub-pattern estimates are memoized by rendered sub-query text, so a
bushy query estimates each distinct sub-pattern once (the historical
behaviour re-derived the spine estimate for every edge).

Planning changes only edge order, never semantics; the planned query
matches exactly the same nodes (pinned by tests).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.system import EstimationSystem
from repro.plan.cost import copy_subtree as _copy_subtree
from repro.plan.planner import CostBasedPlanner
from repro.xpath.ast import Edge, Query, QueryNode

__all__ = ["QueryPlanner", "CostBasedPlanner"]


class QueryPlanner:
    """Reorders pattern edges by estimated selectivity."""

    def __init__(self, system: EstimationSystem):
        self.system = system
        #: Sub-pattern estimate memo, keyed by rendered sub-query text.
        #: Shared across plan() calls on this instance — repeated spines
        #: and repeated queries cost one estimate each.
        self._estimates: Dict[str, float] = {}
        self.estimate_calls = 0  # cache-miss counter (pinned by tests)

    # ------------------------------------------------------------------

    def plan(self, query: Query) -> Query:
        """A clone of ``query`` with per-node edges most-selective-first."""
        factors = self._edge_factors(query)
        clones: Dict[int, QueryNode] = {}

        def clone(node: QueryNode) -> QueryNode:
            copy = QueryNode(node.tag)
            clones[node.node_id] = copy
            ordered = sorted(
                node.edges,
                key=lambda edge: factors.get((node.node_id, edge.node.node_id), 1.0),
            )
            for edge in ordered:
                copy.edges.append(Edge(edge.axis, clone(edge.node), edge.is_predicate))
            return copy

        new_root = clone(query.root)
        return Query(new_root, query.root_axis, target=clones[query.target.node_id])

    # ------------------------------------------------------------------

    def _edge_factors(self, query: Query) -> Dict[tuple, float]:
        """(node_id, child_id) -> estimated filter factor in [0, 1]."""
        factors: Dict[tuple, float] = {}
        for node in query.nodes():
            if len(node.edges) < 2:
                continue
            base = self._estimate_with_edges(query, node, [])
            for edge in node.edges:
                filtered = self._estimate_with_edges(query, node, [edge])
                if base > 0:
                    factors[(node.node_id, edge.node.node_id)] = min(
                        1.0, filtered / base
                    )
                else:
                    factors[(node.node_id, edge.node.node_id)] = 1.0
        return factors

    def _estimate_with_edges(
        self, query: Query, node: QueryNode, kept_edges: List[Edge]
    ) -> float:
        """Estimate ``node``'s selectivity keeping only its spine + edges.

        Memoized by the rendered sub-query: distinct (spine, branch)
        shapes are estimated once per planner, however many edges or
        plan() calls share them.
        """
        subquery = self._subquery(query, node, kept_edges)
        key = subquery.to_string()
        cached = self._estimates.get(key)
        if cached is not None:
            return cached
        self.estimate_calls += 1
        try:
            value = float(self.system.estimate(subquery))
        except Exception:
            value = 1.0  # unplannable shapes fall back to neutral ordering
        self._estimates[key] = value
        return value

    @staticmethod
    def _subquery(query: Query, node: QueryNode, kept_edges: List[Edge]) -> Query:
        spine = query.spine_to(node)
        clones: Dict[int, QueryNode] = {}

        def clone_chain(index: int) -> QueryNode:
            original = spine[index]
            copy = QueryNode(original.tag)
            clones[original.node_id] = copy
            if index + 1 < len(spine):
                link = query.parent_link(spine[index + 1])
                assert link is not None
                copy.edges.append(Edge(link[0], clone_chain(index + 1), False))
            else:
                for edge in kept_edges:
                    copy.edges.append(
                        Edge(edge.axis, _copy_subtree(edge.node), edge.is_predicate)
                    )
            return copy

        root = clone_chain(0)
        return Query(root, query.root_axis, target=clones[node.node_id])
