"""Selectivity-driven query planning.

The point of a cardinality estimator is to steer execution.  This module
closes that loop for the structural-join processor: for every pattern
node with several outgoing edges, the planner estimates each branch's
*filter factor* — how much of the node's candidates survive that branch —
and reorders the edges most-selective-first, so the semijoin cascade
shrinks its intermediate lists as early as possible.

Planning changes only edge order, never semantics; the planned query
matches exactly the same nodes (pinned by tests).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.system import EstimationSystem
from repro.xpath.ast import Edge, Query, QueryNode


class QueryPlanner:
    """Reorders pattern edges by estimated selectivity."""

    def __init__(self, system: EstimationSystem):
        self.system = system

    # ------------------------------------------------------------------

    def plan(self, query: Query) -> Query:
        """A clone of ``query`` with per-node edges most-selective-first."""
        factors = self._edge_factors(query)
        clones: Dict[int, QueryNode] = {}

        def clone(node: QueryNode) -> QueryNode:
            copy = QueryNode(node.tag)
            clones[node.node_id] = copy
            ordered = sorted(
                node.edges,
                key=lambda edge: factors.get((node.node_id, edge.node.node_id), 1.0),
            )
            for edge in ordered:
                copy.edges.append(Edge(edge.axis, clone(edge.node), edge.is_predicate))
            return copy

        new_root = clone(query.root)
        return Query(new_root, query.root_axis, target=clones[query.target.node_id])

    # ------------------------------------------------------------------

    def _edge_factors(self, query: Query) -> Dict[tuple, float]:
        """(node_id, child_id) -> estimated filter factor in [0, 1]."""
        factors: Dict[tuple, float] = {}
        for node in query.nodes():
            if len(node.edges) < 2:
                continue
            base = self._estimate_with_edges(query, node, [])
            for edge in node.edges:
                filtered = self._estimate_with_edges(query, node, [edge])
                if base > 0:
                    factors[(node.node_id, edge.node.node_id)] = min(
                        1.0, filtered / base
                    )
                else:
                    factors[(node.node_id, edge.node.node_id)] = 1.0
        return factors

    def _estimate_with_edges(
        self, query: Query, node: QueryNode, kept_edges: List[Edge]
    ) -> float:
        """Estimate ``node``'s selectivity keeping only its spine + edges."""
        spine = query.spine_to(node)
        clones: Dict[int, QueryNode] = {}

        def clone_chain(index: int) -> QueryNode:
            original = spine[index]
            copy = QueryNode(original.tag)
            clones[original.node_id] = copy
            if index + 1 < len(spine):
                link = query.parent_link(spine[index + 1])
                assert link is not None
                copy.edges.append(
                    Edge(link[0], clone_chain(index + 1), False)
                )
            else:
                for edge in kept_edges:
                    copy.edges.append(
                        Edge(edge.axis, _copy_subtree(edge.node), edge.is_predicate)
                    )
            return copy

        root = clone_chain(0)
        subquery = Query(root, query.root_axis, target=clones[node.node_id])
        try:
            return self.system.estimate(subquery)
        except Exception:
            return 1.0  # unplannable shapes fall back to neutral ordering


def _copy_subtree(node: QueryNode) -> QueryNode:
    copy = QueryNode(node.tag)
    for edge in node.edges:
        copy.edges.append(Edge(edge.axis, _copy_subtree(edge.node), edge.is_predicate))
    return copy
