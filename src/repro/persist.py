"""Synopsis persistence.

A deployed estimator builds its summaries once (over the warehouse's XML)
and ships them to query optimizers; the document itself is not needed at
estimation time.  This module serializes everything
:class:`~repro.core.system.EstimationSystem` needs — the encoding table,
the per-tag p-histograms and the per-tag/per-region o-histograms — to a
JSON-compatible dict and back.

Path ids are stored as hex strings (they are wide integers), bucket
structures verbatim.  ``loads(dumps(system))`` estimates identically to
the original system (pinned by tests).

Integrity: every snapshot written by :func:`dumps`/:func:`save` embeds a
CRC32 checksum of its canonical payload (``"checksum": "crc32:..."``),
and :func:`save` writes atomically (same-directory temp file +
``os.replace``), so a reader — in particular the hot-reloading
:class:`~repro.service.registry.SynopsisRegistry` — only ever sees a
complete old snapshot or a complete new one.  Loading verifies the
checksum when present and raises :class:`SnapshotCorruptError` on
mismatch; checksum-less snapshots (pre-1.2 writers) still load.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.reliability import integrity

from repro.core.system import EstimationSystem
from repro.errors import PersistError as _BasePersistError
from repro.histograms.ohistogram import OBucket, OHistogram, OHistogramSet
from repro.histograms.phistogram import PBucket, PHistogram, PHistogramSet
from repro.pathenc.encoding import EncodingTable
from repro.pathenc.labeler import LabeledDocument
from repro.stats.path_order import PathOrderTable, TagOrderGrid
from repro.stats.pathid_freq import PathIdFrequencyTable

FORMAT_VERSION = 1

#: Shard-payload format (see partial_to_dict); versioned independently of
#: the synopsis format so the two can evolve separately.
PARTIAL_FORMAT_VERSION = 1

#: Embedded incremental-state format (see incremental_to_dict).  A
#: snapshot may carry an ``"incremental"`` section holding the merged
#: body tables + top-level record sequence; readers that understand it
#: load a delta-capable system, older readers ignore the extra key and
#: load the plain histogram synopsis — both estimate identically.
INCREMENTAL_FORMAT_VERSION = 1


class PersistError(_BasePersistError):
    """Base error for synopsis (de)serialization failures.

    Raised instead of leaking ``KeyError``/``TypeError``/``JSONDecodeError``
    from the payload internals, so callers (the CLI, the estimation
    service) can report one clear failure mode.  Part of the
    :class:`repro.errors.ReproError` hierarchy (``kind == "persist"``).
    """


class SynopsisLoadError(PersistError):
    """Raised when a persisted synopsis is malformed or incompatible."""


class SnapshotCorruptError(SynopsisLoadError):
    """The snapshot's embedded checksum does not match its payload.

    Distinguished from plain :class:`SynopsisLoadError` so operators can
    tell "bytes rotted / write was torn" (restore from a good copy or
    rebuild — see docs/OPERATIONS.md) apart from "format mismatch".
    """


def system_to_dict(system: EstimationSystem) -> Dict[str, Any]:
    """Serialize a (histogram-backed) estimation system.

    A system materialized by an
    :class:`~repro.cluster.delta.IncrementalSynopsis` also embeds its
    maintainer's body tables under ``"incremental"``, so the snapshot
    stays delta-capable when loaded back (older readers skip the key).
    """
    path_provider = system.path_provider
    order_provider = system.order_provider
    if not isinstance(path_provider, PHistogramSet) or not isinstance(
        order_provider, OHistogramSet
    ):
        raise SynopsisLoadError(
            "only histogram-backed systems can be persisted "
            "(build with use_histograms=True)"
        )
    payload = _system_body_to_dict(system, path_provider, order_provider)
    maintainer = getattr(system, "incremental", None)
    if maintainer is not None:
        payload["incremental"] = incremental_to_dict(maintainer)
    return payload


def _system_body_to_dict(
    system: EstimationSystem,
    path_provider: PHistogramSet,
    order_provider: OHistogramSet,
) -> Dict[str, Any]:
    return {
        "format_version": FORMAT_VERSION,
        "paths": system.encoding_table.all_paths(),
        "p_variance": path_provider.variance_threshold,
        "o_variance": order_provider.variance_threshold,
        "p_histograms": {
            tag: _phistogram_to_dict(path_provider.histogram(tag))
            for tag in path_provider.tags()
        },
        "o_histograms": [
            _ohistogram_to_dict(order_provider.histogram(tag, region))
            for tag, region in _ohistogram_keys(order_provider)
        ],
    }


def system_from_dict(payload: Dict[str, Any]) -> EstimationSystem:
    """Rebuild an estimation-capable system from a persisted synopsis.

    The returned system estimates queries but has no document: the
    exact-statistics tables are empty shells and no binary tree is
    attached (both are construction-time artifacts).
    """
    if not isinstance(payload, dict):
        raise SynopsisLoadError(
            "synopsis payload must be a JSON object, got %s" % type(payload).__name__
        )
    payload = _verify_checksum(payload)
    version = payload.get("format_version")
    if version is None:
        raise SynopsisLoadError("synopsis payload has no format_version field")
    if version != FORMAT_VERSION:
        raise SynopsisLoadError("unsupported synopsis format %r" % version)
    try:
        table = EncodingTable(payload["paths"])
        phistograms = PHistogramSet(
            {
                tag: _phistogram_from_dict(tag, data)
                for tag, data in payload["p_histograms"].items()
            },
            float(payload["p_variance"]),
        )
        ohistograms = OHistogramSet(
            {
                (data["tag"], data["region"]): _ohistogram_from_dict(data)
                for data in payload["o_histograms"]
            },
            float(payload["o_variance"]),
        )
    except (KeyError, TypeError, ValueError, AttributeError) as error:
        raise SynopsisLoadError("malformed synopsis: %s" % error)
    labeled = _labeled_shell(table)
    incremental = payload.get("incremental")
    if incremental is not None:
        try:
            maintainer = incremental_from_dict(incremental)
        except (KeyError, TypeError, ValueError, AttributeError) as error:
            raise SynopsisLoadError("malformed incremental state: %s" % error)
        # The maintainer materializes from the same exact tables the
        # histograms were bucketed from, at the same variances — the
        # system it serves is identical to one built from the payload's
        # histogram sections, plus it can apply deltas.
        return maintainer.system
    return EstimationSystem(
        labeled,
        PathIdFrequencyTable({}),
        PathOrderTable({}),
        phistograms,
        ohistograms,
        binary_tree=None,
    )


def partial_to_dict(partial: "PartialSynopsis") -> Dict[str, Any]:
    """Serialize one shard's provisional partial synopsis.

    This is the wire format for distributed builds: map workers (possibly
    on other machines) stream their shards, ship these payloads, and a
    single reducer feeds the decoded partials — in document order — to
    :func:`repro.build.merge.merge_partials`.
    """
    return {
        "partial_format_version": PARTIAL_FORMAT_VERSION,
        "paths": list(partial.paths),
        "freq": {
            tag: {"%x" % pid: count for pid, count in per_tag.items()}
            for tag, per_tag in partial.freq.items()
        },
        "grids": {
            tag: [
                ["%x" % pid, other_tag, count, before]
                for (pid, other_tag, before), count in grid.cells()
            ]
            for tag, grid in partial.grids.items()
        },
        "top": (
            None
            if partial.top is None
            else [[record.tag, "%x" % record.pid] for record in partial.top]
        ),
        "element_count": partial.element_count,
    }


def partial_from_dict(payload: Dict[str, Any]) -> "PartialSynopsis":
    """Decode a shard payload produced by :func:`partial_to_dict`."""
    from repro.build.stream import PartialSynopsis, SiblingRecord

    if not isinstance(payload, dict):
        raise SynopsisLoadError(
            "partial payload must be a JSON object, got %s" % type(payload).__name__
        )
    version = payload.get("partial_format_version")
    if version != PARTIAL_FORMAT_VERSION:
        raise SynopsisLoadError("unsupported partial format %r" % version)
    try:
        paths = [str(path) for path in payload["paths"]]
        freq = {
            tag: {int(pid, 16): int(count) for pid, count in per_tag.items()}
            for tag, per_tag in payload["freq"].items()
        }
        grids: Dict[str, TagOrderGrid] = {}
        for tag, cells in payload["grids"].items():
            grid = TagOrderGrid(tag)
            for pid, other_tag, count, before in cells:
                grid.add_count(int(pid, 16), other_tag, int(count), bool(before))
            grids[tag] = grid
        top = payload["top"]
        if top is not None:
            top = [SiblingRecord(tag, int(pid, 16)) for tag, pid in top]
        element_count = int(payload["element_count"])
    except (KeyError, TypeError, ValueError, AttributeError) as error:
        raise SynopsisLoadError("malformed partial: %s" % error)
    return PartialSynopsis(paths, freq, grids, top, element_count)


def incremental_to_dict(maintainer) -> Dict[str, Any]:
    """Serialize an :class:`IncrementalSynopsis`' maintained body state.

    The same hex-pid conventions as :func:`partial_to_dict`, but in the
    *final* bit layout with the top-level record sequence and the build
    knobs (variances, drift threshold) the maintainer needs to resume.
    """
    body = maintainer._body
    return {
        "incremental_format_version": INCREMENTAL_FORMAT_VERSION,
        "root_tag": maintainer.root_tag,
        "name": maintainer.name,
        "paths": list(body.paths),
        "freq": {
            tag: {"%x" % pid: count for pid, count in per_tag}
            for tag, per_tag in body.pathid_table.iter_items()
        },
        "grids": {
            tag: [
                ["%x" % pid, other_tag, count, before]
                for (pid, other_tag, before), count in grid.cells()
            ]
            for tag in body.order_table.tags()
            for grid in [body.order_table.grid(tag)]
        },
        "top": [[record.tag, "%x" % record.pid] for record in body.top],
        "element_count": body.element_count,
        "p_variance": maintainer.p_variance,
        "o_variance": maintainer.o_variance,
        "drift_threshold": maintainer.drift_threshold,
    }


def incremental_from_dict(data: Dict[str, Any]):
    """Rebuild a delta-capable maintainer (and its served system).

    The maintainer re-materializes the system from the exact body
    tables at the stored variances — identical to the snapshot's own
    histogram sections, since both derive deterministically from the
    same tables.  No binary tree is built (matching what plain snapshot
    loads serve).
    """
    from repro.build.merge import BodyTables
    from repro.build.stream import SiblingRecord
    from repro.cluster.delta import IncrementalSynopsis

    version = data.get("incremental_format_version")
    if version != INCREMENTAL_FORMAT_VERSION:
        raise SynopsisLoadError("unsupported incremental format %r" % version)
    try:
        if not isinstance(data["paths"], list):
            raise TypeError("paths must be a list")
        paths = [str(path) for path in data["paths"]]
        freq = PathIdFrequencyTable(
            {
                tag: {int(pid, 16): int(count) for pid, count in per_tag.items()}
                for tag, per_tag in data["freq"].items()
            }
        )
        grids: Dict[str, TagOrderGrid] = {}
        for tag, cells in data["grids"].items():
            grid = TagOrderGrid(tag)
            for pid, other_tag, count, before in cells:
                grid.add_count(int(pid, 16), other_tag, int(count), bool(before))
            grids[tag] = grid
        body = BodyTables(
            paths,
            freq,
            PathOrderTable(grids),
            [SiblingRecord(tag, int(pid, 16)) for tag, pid in data["top"]],
            int(data["element_count"]),
        )
        return IncrementalSynopsis(
            body,
            str(data["root_tag"]),
            p_variance=float(data["p_variance"]),
            o_variance=float(data["o_variance"]),
            build_binary_tree=False,
            drift_threshold=float(data.get("drift_threshold", 0.0)),
            name=str(data.get("name", "")),
        )
    except (KeyError, TypeError, ValueError, AttributeError) as error:
        raise SynopsisLoadError("malformed incremental state: %s" % error)


def _verify_checksum(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Strip and verify an embedded checksum; corrupt payloads raise.

    Snapshots written before checksums existed carry no ``checksum`` key
    and are accepted unverified.
    """
    expected = payload.get("checksum")
    if expected is None:
        return payload
    body = {key: value for key, value in payload.items() if key != "checksum"}
    if not isinstance(expected, str) or not integrity.verify_payload(body, expected):
        raise SnapshotCorruptError(
            "synopsis checksum mismatch (expected %r, payload hashes to %r) — "
            "the snapshot is truncated or corrupt" % (expected, integrity.checksum_payload(body))
        )
    return body


def dumps(system: EstimationSystem, indent: Optional[int] = None) -> str:
    payload = system_to_dict(system)
    payload["checksum"] = integrity.checksum_payload(payload)
    return json.dumps(payload, indent=indent, sort_keys=True)


def loads(text: str) -> EstimationSystem:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise SynopsisLoadError("synopsis is not valid JSON: %s" % error)
    return system_from_dict(payload)


def save(system: EstimationSystem, path: str) -> None:
    """Persist atomically: a crash (or a concurrent reader) never sees a
    half-written snapshot at ``path``."""
    integrity.atomic_write_text(path, dumps(system))


def load(path: str) -> EstimationSystem:
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())


# ----------------------------------------------------------------------
# Pieces
# ----------------------------------------------------------------------


def _phistogram_to_dict(histogram: PHistogram) -> Dict[str, Any]:
    return {
        "buckets": [
            {"pids": ["%x" % pid for pid in bucket.pathids], "avg": bucket.avg_frequency}
            for bucket in histogram.buckets
        ]
    }


def _phistogram_from_dict(tag: str, data: Dict[str, Any]) -> PHistogram:
    buckets = [
        PBucket(tuple(int(pid, 16) for pid in bucket["pids"]), float(bucket["avg"]))
        for bucket in data["buckets"]
    ]
    return PHistogram(tag, buckets)


def _ohistogram_keys(provider: OHistogramSet) -> List[Tuple[str, str]]:
    return provider.keys()


def _ohistogram_to_dict(histogram: OHistogram) -> Dict[str, Any]:
    return {
        "tag": histogram.tag,
        "region": histogram.region,
        "buckets": [
            [b.x_start, b.y_start, b.x_end, b.y_end, b.avg_frequency]
            for b in histogram.buckets
        ],
        "cols": {"%x" % pid: col for pid, col in histogram.column_map().items()},
        "rows": histogram.row_map(),
    }


def _ohistogram_from_dict(data: Dict[str, Any]) -> OHistogram:
    buckets = [
        OBucket(int(b[0]), int(b[1]), int(b[2]), int(b[3]), float(b[4]))
        for b in data["buckets"]
    ]
    return OHistogram(
        data["tag"],
        data["region"],
        buckets,
        {int(pid, 16): int(col) for pid, col in data["cols"].items()},
        {tag: int(row) for tag, row in data["rows"].items()},
    )


def _labeled_shell(table: EncodingTable) -> LabeledDocument:
    """A document-free LabeledDocument carrying just the encoding table."""
    return LabeledDocument.from_summary(table, [])
