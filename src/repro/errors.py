"""The root exception hierarchy of the reproduction.

Every failure the package raises on purpose derives from
:class:`ReproError`, so embedders can catch one base class at the
boundary and the HTTP service can map any failure to a stable
``error.kind`` string (each class carries its slug in ``kind``):

* :class:`ParseError` (``"parse"``) — malformed XML input; the concrete
  :class:`repro.xmltree.parser.XmlParseError` adds the byte offset;
* :class:`QuerySyntaxError` (``"query_syntax"``) — malformed query text;
  the concrete :class:`repro.xpath.parser.XPathSyntaxError` adds the
  offset;
* :class:`PersistError` (``"persist"``) — synopsis (de)serialization
  failures (:class:`repro.persist.SynopsisLoadError` is its load-side
  subclass);
* :class:`BuildError` (``"build"``) — streaming/sharded synopsis
  construction failures (bad source, unbalanced shards, unsupported
  build options);
* :class:`PlanError` (``"plan"``) — cost-based planning / plan-execution
  failures (:mod:`repro.plan`); its concrete
  :class:`ExecutionUnsupportedError` (``"execute_unsupported"``) marks
  statistics-only systems asked to ``execute()`` a query;
* :class:`ReliabilityError` (``"reliability"``) — fault-handling
  outcomes surfaced by :mod:`repro.reliability`: the concrete
  :class:`repro.reliability.policy.DeadlineExceededError`
  (``"deadline_exceeded"``),
  :class:`repro.reliability.breaker.CircuitOpenError`
  (``"circuit_open"``) and
  :class:`repro.reliability.shedding.OverloadedError`
  (``"overloaded"``);
* :class:`ObservabilityError` (``"obs"``) — misconfigured tracing,
  metrics or slow-query logging (:mod:`repro.obs`);
* the cluster tier (:mod:`repro.cluster`) adds
  :class:`~repro.cluster.delta.DeltaError` (``"delta"``) /
  :class:`~repro.cluster.delta.DeltaUnsupportedError`
  (``"delta_unsupported"``) under :class:`BuildError`, and
  :class:`~repro.cluster.router.ClusterError` (``"cluster"``) /
  :class:`~repro.cluster.router.ReplicasExhaustedError`
  (``"replicas_exhausted"``) under :class:`ReliabilityError`.

The full slug → canonical-class mapping is exported as
:data:`WIRE_KINDS` (built lazily to avoid import cycles); the handful of
transport-only slugs that have no exception class behind them (HTTP
request validation, client socket failures) are listed in
:data:`TRANSPORT_WIRE_KINDS`.

All of them except :class:`ReliabilityError` also subclass
:class:`ValueError`: the concrete classes predate the hierarchy and were
plain ``ValueError`` subclasses, so existing ``except ValueError`` call
sites keep working.  The reliability family is new and models runtime
conditions, not bad values, so it subclasses :class:`RuntimeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every intentional failure raised by :mod:`repro`."""

    #: Stable machine-readable slug for this failure family; the service
    #: returns it as ``error.kind`` and never renames existing values.
    kind = "error"


class ParseError(ReproError, ValueError):
    """Malformed XML document text."""

    kind = "parse"


class QuerySyntaxError(ReproError, ValueError):
    """Malformed XPath query text."""

    kind = "query_syntax"


class PersistError(ReproError, ValueError):
    """Synopsis serialization or deserialization failure."""

    kind = "persist"


class BuildError(ReproError, ValueError):
    """Synopsis construction failure (streaming scan, sharding, merge)."""

    kind = "build"


class PlanError(ReproError, ValueError):
    """Cost-based planning or plan-execution failure (:mod:`repro.plan`)."""

    kind = "plan"


class ExecutionUnsupportedError(PlanError):
    """``execute()`` asked of a system that cannot run queries.

    Systems built from streamed sources or loaded from snapshots carry
    statistics only — no document to evaluate against.  Estimation and
    ``explain`` still work; execution needs a document (build from a
    parsed :class:`~repro.xmltree.document.XmlDocument`, or pass
    ``document=`` explicitly).
    """

    kind = "execute_unsupported"


class ReliabilityError(ReproError, RuntimeError):
    """A fault-handling outcome: deadline, open circuit, overload, ...

    Raised by :mod:`repro.reliability` when a guard refuses or abandons
    work on purpose — the condition is about the *runtime* (time budget
    spent, dependency unhealthy, server saturated), never about the
    request's content.
    """

    kind = "reliability"


class ObservabilityError(ReproError, ValueError):
    """Misuse of the observability subsystem (:mod:`repro.obs`).

    Bad metric/label names, re-registering a metric under a different
    type, invalid histogram bounds or sample rates.  Observability code
    fails loudly at registration/configuration time so it can never fail
    midway through a traced request.
    """

    kind = "obs"


def error_kind(error: BaseException) -> str:
    """The stable ``error.kind`` slug for any exception."""
    return getattr(error, "kind", "internal") if isinstance(error, ReproError) else "internal"


#: Wire kinds that exist only at the transport layer: HTTP request
#: validation on the server, socket failures on the client.  They have
#: no :class:`ReproError` class behind them but are equally stable.
TRANSPORT_WIRE_KINDS = frozenset(
    {
        "bad_request",
        "not_found",
        "internal",
        "connection",
        "timeout",
        "bad_response",
        "read_timeout",
        "unknown_tier",
    }
)


def _build_wire_kinds():
    """kind slug -> canonical exception class, one entry per slug.

    Local imports keep :mod:`repro.errors` import-cycle-free (everything
    imports it; it imports nothing from the package at module scope).
    """
    from repro.cluster.delta import DeltaError, DeltaUnsupportedError
    from repro.cluster.router import ClusterError, ReplicasExhaustedError
    from repro.core.transform import UnsupportedQueryError
    from repro.reliability.breaker import CircuitOpenError
    from repro.reliability.policy import DeadlineExceededError
    from repro.reliability.shedding import OverloadedError
    from repro.service.registry import UnknownSynopsisError
    from repro.shm.kernelpack import KernelPackError
    from repro.shm.pool import WorkerPoolError

    return {
        ReproError.kind: ReproError,
        ParseError.kind: ParseError,
        QuerySyntaxError.kind: QuerySyntaxError,
        PersistError.kind: PersistError,
        BuildError.kind: BuildError,
        PlanError.kind: PlanError,
        ExecutionUnsupportedError.kind: ExecutionUnsupportedError,
        ReliabilityError.kind: ReliabilityError,
        ObservabilityError.kind: ObservabilityError,
        UnsupportedQueryError.kind: UnsupportedQueryError,
        DeadlineExceededError.kind: DeadlineExceededError,
        CircuitOpenError.kind: CircuitOpenError,
        OverloadedError.kind: OverloadedError,
        UnknownSynopsisError.kind: UnknownSynopsisError,
        KernelPackError.kind: KernelPackError,
        WorkerPoolError.kind: WorkerPoolError,
        DeltaError.kind: DeltaError,
        DeltaUnsupportedError.kind: DeltaUnsupportedError,
        ClusterError.kind: ClusterError,
        ReplicasExhaustedError.kind: ReplicasExhaustedError,
    }


def __getattr__(name):
    """PEP 562: materialize ``WIRE_KINDS`` lazily (avoids import cycles)."""
    if name == "WIRE_KINDS":
        mapping = _build_wire_kinds()
        globals()[name] = mapping
        return mapping
    raise AttributeError("module %r has no attribute %r" % (__name__, name))
