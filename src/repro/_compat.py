"""Backward-compatibility shims for the keyword-only API redesign.

The tuning parameters of the public constructors/factories
(:meth:`EstimationSystem.build`, :class:`SynopsisBuilder`,
:class:`ServiceClient`, :func:`repro.service.serve`) became keyword-only;
:func:`positional_shim` keeps old positional call sites working for one
deprecation cycle, mapping ``*args`` overflow back onto the named
parameters while emitting a :class:`DeprecationWarning` that names the
first offending parameter.
"""

from __future__ import annotations

import warnings
from typing import Sequence, Tuple


def warn_deprecated(old: str, new: str, *, stacklevel: int = 3) -> None:
    """Emit the standard deprecation warning for a renamed entry point.

    Used by the method shims of the unified query API redesign
    (``EstimationSystem.query`` → ``estimate(options=...)``,
    ``estimate_batch`` → ``estimate([...])``, ``estimate_routed`` →
    internal): one wording everywhere, so ``-W error`` CI jobs catch any
    internal caller that regresses onto an old name.
    """
    warnings.warn(
        "%s is deprecated; use %s instead" % (old, new),
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def positional_shim(
    where: str,
    args: Sequence[object],
    names: Sequence[str],
    defaults: Sequence[object],
) -> Tuple[object, ...]:
    """Map deprecated positional ``args`` onto keyword-only parameters.

    ``names``/``defaults`` describe the keyword-only parameters in their
    historical positional order; the returned tuple has one value per
    name (positional value when given, current default otherwise).
    Raises :class:`TypeError` on overflow, mirroring a plain signature.
    """
    if len(args) > len(names):
        raise TypeError(
            "%s() takes at most %d positional tuning arguments (%d given)"
            % (where, len(names), len(args))
        )
    warnings.warn(
        "%s: passing %s positionally is deprecated; use keyword arguments"
        % (where, ", ".join(repr(n) for n in names[: len(args)])),
        DeprecationWarning,
        stacklevel=3,
    )
    merged = list(defaults)
    merged[: len(args)] = args
    return tuple(merged)
