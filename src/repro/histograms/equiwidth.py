"""Equi-count bucketing ablation for the p-histogram.

The paper controls buckets with an intra-bucket variance threshold; the
classic alternative is to cut the frequency-sorted list into a fixed number
of equal-count buckets.  This module provides that variant behind the same
provider protocol so the ablation benchmark can compare accuracy at equal
memory (DESIGN.md, Ablation A).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.histograms.phistogram import PBucket, PHistogram, PHistogramSet
from repro.stats.pathid_freq import PathIdFrequencyTable


def build_equicount_phistogram(
    tag: str, pairs: List[Tuple[int, int]], bucket_count: int
) -> PHistogram:
    """Cut the frequency-sorted pair list into ``bucket_count`` equal slices."""
    if bucket_count < 1:
        raise ValueError("bucket count must be positive")
    ordered = sorted(pairs, key=lambda pair: (pair[1], pair[0]))
    total = len(ordered)
    buckets: List[PBucket] = []
    if total == 0:
        return PHistogram(tag, buckets)
    count = min(bucket_count, total)
    base, extra = divmod(total, count)
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        chunk = ordered[start:start + size]
        start += size
        avg = sum(freq for _, freq in chunk) / len(chunk)
        buckets.append(PBucket(tuple(pid for pid, _ in chunk), avg))
    return PHistogram(tag, buckets)


class EquiCountPHistogramSet:
    """Per-tag equi-count p-histograms (provider protocol compatible)."""

    def __init__(self, histograms: Dict[str, PHistogram], bucket_count: int):
        self._histograms = histograms
        self.bucket_count = bucket_count

    @classmethod
    def from_table(
        cls, table: PathIdFrequencyTable, bucket_count: int
    ) -> "EquiCountPHistogramSet":
        histograms = {
            tag: build_equicount_phistogram(tag, pairs, bucket_count)
            for tag, pairs in table.iter_items()
        }
        return cls(histograms, bucket_count)

    # Provider protocol -------------------------------------------------

    def frequency_pairs(self, tag: str) -> List[Tuple[int, float]]:
        histogram = self._histograms.get(tag)
        return histogram.approx_pairs() if histogram else []

    def frequency_map(self, tag: str) -> Dict[int, float]:
        return dict(self.frequency_pairs(tag))

    # Introspection ------------------------------------------------------

    def histogram(self, tag: str) -> Optional[PHistogram]:
        return self._histograms.get(tag)

    def tags(self) -> List[str]:
        return sorted(self._histograms)

    def total_buckets(self) -> int:
        return sum(h.bucket_count for h in self._histograms.values())

    def size_bytes(self, pid_bytes: int) -> int:
        return sum(h.size_bytes(pid_bytes) for h in self._histograms.values())

    @staticmethod
    def matching_budget(reference: PHistogramSet) -> Dict[str, int]:
        """Per-tag bucket counts matching a variance-built reference set."""
        return {
            tag: reference.histogram(tag).bucket_count
            for tag in reference.tags()
        }

    @classmethod
    def from_reference(
        cls, table: PathIdFrequencyTable, reference: PHistogramSet
    ) -> "EquiCountPHistogramSet":
        """Build with the same per-tag bucket counts as ``reference``.

        This pins the memory footprint of the two bucketing policies to the
        same value so the ablation isolates bucketing quality.
        """
        budgets = cls.matching_budget(reference)
        histograms = {
            tag: build_equicount_phistogram(tag, pairs, max(1, budgets.get(tag, 1)))
            for tag, pairs in table.iter_items()
        }
        return cls(histograms, bucket_count=-1)
