"""Incremental intra-bucket "variance" tracking.

The paper defines the bucket variance as

    v_b = sqrt( ((f1 - avg)^2 + ... + (fk - avg)^2) / k )

i.e. the *population standard deviation* of the bucket's frequencies.  The
greedy construction algorithms test the threshold after each tentative
addition, so the tracker supports O(1) add and O(1) query via running sum
and sum of squares.
"""

from __future__ import annotations

import math
from typing import Iterable


class RunningVariance:
    """Running population standard deviation of a stream of frequencies."""

    __slots__ = ("count", "total", "total_sq")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.total_sq = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.total_sq += value * value

    def remove(self, value: float) -> None:
        if self.count == 0:
            raise ValueError("cannot remove from an empty tracker")
        self.count -= 1
        self.total -= value
        self.total_sq -= value * value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def std_dev(self) -> float:
        """The paper's v_b (population standard deviation)."""
        if self.count == 0:
            return 0.0
        mean = self.total / self.count
        variance = self.total_sq / self.count - mean * mean
        # Floating point can drive tiny negative values.
        return math.sqrt(variance) if variance > 0.0 else 0.0

    def would_exceed(self, value: float, threshold: float) -> bool:
        """Would adding ``value`` push the std dev above ``threshold``?"""
        count = self.count + 1
        total = self.total + value
        total_sq = self.total_sq + value * value
        mean = total / count
        variance = total_sq / count - mean * mean
        if variance <= 0.0:
            return False
        return math.sqrt(variance) > threshold + 1e-12


def bucket_std_dev(frequencies: Iterable[float]) -> float:
    """One-shot population standard deviation (reference implementation)."""
    values = list(frequencies)
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    return math.sqrt(sum((f - mean) ** 2 for f in values) / len(values))
