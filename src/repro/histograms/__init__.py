"""Budgeted summaries of the statistics tables (Section 6 of the paper).

* :class:`~repro.histograms.phistogram.PHistogramSet` — per-tag
  p-histograms over the PathId-Frequency table (Algorithm 1).
* :class:`~repro.histograms.ohistogram.OHistogramSet` — per-tag, per-region
  o-histograms over the Path-Order table (Algorithm 2).
* :class:`~repro.histograms.equiwidth.EquiCountPHistogramSet` — an ablation
  variant that buckets by equal count instead of bounded variance.

Both histogram families are controlled by an **intra-bucket frequency
variance** threshold; the paper's "variance" is the population standard
deviation of the bucket's frequencies.
"""

from repro.histograms.equiwidth import EquiCountPHistogramSet
from repro.histograms.ohistogram import OBucket, OHistogram, OHistogramSet
from repro.histograms.phistogram import PBucket, PHistogram, PHistogramSet

__all__ = [
    "PBucket",
    "PHistogram",
    "PHistogramSet",
    "OBucket",
    "OHistogram",
    "OHistogramSet",
    "EquiCountPHistogramSet",
]
