"""The o-histogram (Section 6, Algorithm 2).

Summarizes one region (``+ele`` or ``ele+``) of a tag's path-order grid
with variance-bounded bounding boxes:

1. Sort the grid: rows (other tags) alphabetically, columns (path ids) in
   the order of the tag's p-histogram.
2. Scan non-empty cells row-major.  Extend each uncovered cell rightwards
   along its row (stop at an empty cell, a covered cell, or a variance
   violation), then extend the row span downwards row by row (stop at a row
   whose span is entirely empty, at any covered cell, or at a variance
   violation).
3. Emit the box as a bucket ``(x_start, y_start, x_end, y_end, avg)``.

The paper grows boxes toward "the rows above"; we scan top-to-bottom and
grow downward — the mirror image, with identical bucket quality (DESIGN.md
§5.6).  Averages and variances are computed over the box's *non-empty*
cells (§5 note), which is what the estimator's lookups target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.histograms.phistogram import PHistogramSet
from repro.histograms.variance import RunningVariance
from repro.stats.path_order import PathOrderTable, TagOrderGrid

# Cost model: 4 coordinate shorts + one 4-byte average per bucket.
BUCKET_BYTES = 4 * 2 + 4

BEFORE = "+ele"
AFTER = "ele+"


@dataclass(frozen=True)
class OBucket:
    """One bounding-box bucket over the sorted grid (inclusive coords)."""

    x_start: int
    y_start: int
    x_end: int
    y_end: int
    avg_frequency: float

    def covers(self, x: int, y: int) -> bool:
        return self.x_start <= x <= self.x_end and self.y_start <= y <= self.y_end


class OHistogram:
    """The o-histogram of one region of one tag's path-order grid."""

    def __init__(
        self,
        tag: str,
        region: str,
        buckets: Sequence[OBucket],
        col_of_pid: Dict[int, int],
        row_of_tag: Dict[str, int],
    ):
        self.tag = tag
        self.region = region
        self.buckets: List[OBucket] = list(buckets)
        self._col_of_pid = col_of_pid
        self._row_of_tag = row_of_tag
        # Row index -> buckets intersecting that row, for fast point lookup.
        self._by_row: Dict[int, List[OBucket]] = {}
        for bucket in self.buckets:
            for row in range(bucket.y_start, bucket.y_end + 1):
                self._by_row.setdefault(row, []).append(bucket)

    def lookup(self, pid: int, other_tag: str) -> float:
        """Approximate g(pid, other_tag); 0 when the point is uncovered."""
        col = self._col_of_pid.get(pid)
        row = self._row_of_tag.get(other_tag)
        if col is None or row is None:
            return 0.0
        for bucket in self._by_row.get(row, ()):
            if bucket.x_start <= col <= bucket.x_end:
                return bucket.avg_frequency
        return 0.0

    @property
    def bucket_count(self) -> int:
        return len(self.buckets)

    def column_map(self) -> Dict[int, int]:
        """path id -> column index (a copy)."""
        return dict(self._col_of_pid)

    def row_map(self) -> Dict[str, int]:
        """other tag -> row index (a copy)."""
        return dict(self._row_of_tag)

    def size_bytes(self) -> int:
        return self.bucket_count * BUCKET_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<OHistogram %s/%s: %d buckets>" % (self.tag, self.region, self.bucket_count)


def build_ohistogram(
    tag: str,
    region: str,
    cells: Dict[Tuple[int, str], int],
    pid_order: Sequence[int],
    variance_threshold: float,
    growth: str = "down",
) -> OHistogram:
    """Algorithm 2 for one region of one tag.

    ``cells`` maps (path id, other tag) to a non-zero count; ``pid_order``
    fixes the column order (the tag's p-histogram order).

    ``growth`` selects the box-extension direction: ``"down"`` scans rows
    top-to-bottom and grows boxes downward (our default);``"up"`` is the
    paper's literal wording — scan from the bottom and add "the rows
    above".  The two are mirror images (DESIGN.md §5.6); tests verify
    both cover every non-empty cell within the variance bound.
    """
    if variance_threshold < 0:
        raise ValueError("variance threshold must be non-negative")
    if growth not in ("down", "up"):
        raise ValueError("growth must be 'down' or 'up'")
    col_of_pid = {pid: i for i, pid in enumerate(pid_order)}
    row_tags = sorted({other for _, other in cells})
    row_of_tag = {other: i for i, other in enumerate(row_tags)}
    # Dense coordinate view of the sparse region.
    grid: Dict[Tuple[int, int], int] = {}
    for (pid, other), count in cells.items():
        col = col_of_pid.get(pid)
        if col is None:
            # The pid vanished from the p-histogram (cannot happen with our
            # builders, but stay safe): give it a column past the end.
            col = len(col_of_pid)
            col_of_pid[pid] = col
        grid[(col, row_of_tag[other])] = count
    n_cols = len(col_of_pid)
    n_rows = len(row_tags)

    covered: Dict[Tuple[int, int], bool] = {}
    buckets: List[OBucket] = []
    row_order = range(n_rows) if growth == "down" else range(n_rows - 1, -1, -1)
    for y in row_order:
        for x in range(n_cols):
            start = (x, y)
            if start not in grid or covered.get(start):
                continue
            bucket = _grow_box(
                grid, covered, x, y, n_cols, n_rows, variance_threshold,
                downward=(growth == "down"),
            )
            buckets.append(bucket)
    return OHistogram(tag, region, buckets, col_of_pid, row_of_tag)


def _grow_box(
    grid: Dict[Tuple[int, int], int],
    covered: Dict[Tuple[int, int], bool],
    x: int,
    y: int,
    n_cols: int,
    n_rows: int,
    threshold: float,
    downward: bool = True,
) -> OBucket:
    """Grow one cell into a maximal variance-bounded box; mark it covered."""
    tracker = RunningVariance()
    tracker.add(grid[(x, y)])
    x_end = x
    # Step 1: extend rightwards along the seed row.
    while x_end + 1 < n_cols:
        cell = (x_end + 1, y)
        value = grid.get(cell)
        if value is None or covered.get(cell):
            break
        if tracker.would_exceed(value, threshold):
            break
        tracker.add(value)
        x_end += 1
    # Step 2: extend the [x, x_end] span row by row (down or up).
    y_start = y
    y_end = y
    while (y_end + 1 < n_rows) if downward else (y_start - 1 >= 0):
        row = y_end + 1 if downward else y_start - 1
        row_values = []
        blocked = False
        for col in range(x, x_end + 1):
            cell = (col, row)
            value = grid.get(cell)
            if value is None:
                continue
            if covered.get(cell):
                blocked = True
                break
            row_values.append(value)
        if blocked or not row_values:
            break  # covered cell in the way, or an all-empty row
        trial = RunningVariance()
        trial.count, trial.total, trial.total_sq = (
            tracker.count,
            tracker.total,
            tracker.total_sq,
        )
        for value in row_values:
            trial.add(value)
        if trial.std_dev > threshold + 1e-12:
            break
        tracker = trial
        if downward:
            y_end = row
        else:
            y_start = row
    for row in range(y_start, y_end + 1):
        for col in range(x, x_end + 1):
            if (col, row) in grid:
                covered[(col, row)] = True
    return OBucket(x, y_start, x_end, y_end, tracker.mean)


class OHistogramSet:
    """All o-histograms of a document (two regions per tag).

    Implements the *order statistics provider* protocol used by the
    estimator: :meth:`order_count`.
    """

    def __init__(
        self,
        histograms: Dict[Tuple[str, str], OHistogram],
        variance_threshold: float,
    ):
        self._histograms = histograms
        self.variance_threshold = variance_threshold

    @classmethod
    def from_table(
        cls,
        table: PathOrderTable,
        phistograms: PHistogramSet,
        variance_threshold: float,
        growth: str = "down",
    ) -> "OHistogramSet":
        histograms: Dict[Tuple[str, str], OHistogram] = {}
        for grid in table.iter_grids():
            phist = phistograms.histogram(grid.tag)
            pid_order = phist.pid_order() if phist else grid.column_pids()
            for region, before in ((BEFORE, True), (AFTER, False)):
                cells = grid.region(before)
                if not cells:
                    continue
                histograms[(grid.tag, region)] = build_ohistogram(
                    grid.tag, region, cells, pid_order, variance_threshold,
                    growth=growth,
                )
        return cls(histograms, variance_threshold)

    # ------------------------------------------------------------------
    # Provider protocol
    # ------------------------------------------------------------------

    def order_count(self, tag: str, pid: int, other_tag: str, before: bool) -> float:
        """Approximate g(pid, other_tag) in the requested region of ``tag``."""
        histogram = self._histograms.get((tag, BEFORE if before else AFTER))
        return histogram.lookup(pid, other_tag) if histogram else 0.0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def histogram(self, tag: str, region: str) -> Optional[OHistogram]:
        return self._histograms.get((tag, region))

    def keys(self) -> List[Tuple[str, str]]:
        """All (tag, region) pairs with a histogram, sorted."""
        return sorted(self._histograms)

    def total_buckets(self) -> int:
        return sum(h.bucket_count for h in self._histograms.values())

    def size_bytes(self) -> int:
        return sum(h.size_bytes() for h in self._histograms.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<OHistogramSet v=%g: %d histograms, %d buckets>" % (
            self.variance_threshold,
            len(self._histograms),
            self.total_buckets(),
        )
