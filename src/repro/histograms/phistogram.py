"""The p-histogram (Section 6, Algorithm 1).

One p-histogram per distinct element tag summarizes the tag's
pathid-frequency list: the list is sorted by frequency and greedily cut
into buckets whose intra-bucket standard deviation stays within the given
threshold.  Each bucket stores its member path ids and their average
frequency; at threshold 0 every bucket is frequency-pure, so the histogram
reproduces the exact table (Theorem 4.1 then gives exact selectivities for
simple queries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.histograms.variance import RunningVariance
from repro.stats.pathid_freq import PathIdFrequencyTable

# Cost model (documented in DESIGN.md §5.9): every p-histogram stores the
# tag's path ids once, in bucket order, plus per bucket an average frequency
# and an end offset into the pid array.
AVG_FREQ_BYTES = 4
BUCKET_OFFSET_BYTES = 2


@dataclass(frozen=True)
class PBucket:
    """One bucket: member path ids (frequency-sorted) and their mean."""

    pathids: Tuple[int, ...]
    avg_frequency: float

    def __len__(self) -> int:
        return len(self.pathids)


class PHistogram:
    """The p-histogram of a single element tag."""

    def __init__(self, tag: str, buckets: Sequence[PBucket]):
        self.tag = tag
        self.buckets: List[PBucket] = list(buckets)
        self._freq_by_pid: Dict[int, float] = {}
        order: List[int] = []
        for bucket in self.buckets:
            for pid in bucket.pathids:
                self._freq_by_pid[pid] = bucket.avg_frequency
                order.append(pid)
        self._pid_order = order

    # ------------------------------------------------------------------
    # Estimation interface
    # ------------------------------------------------------------------

    def approx_frequency(self, pathid: int) -> float:
        """Approximate frequency of one path id (0 when absent)."""
        return self._freq_by_pid.get(pathid, 0.0)

    def approx_pairs(self) -> List[Tuple[int, float]]:
        """(path id, approximate frequency) pairs, pid-order of storage."""
        return [(pid, self._freq_by_pid[pid]) for pid in self._pid_order]

    def pid_order(self) -> List[int]:
        """Path ids in p-histogram storage order (the o-histogram's column
        order, per Algorithm 2 step 1)."""
        return list(self._pid_order)

    @property
    def bucket_count(self) -> int:
        return len(self.buckets)

    def size_bytes(self, pid_bytes: int) -> int:
        """Cost-model size: pid array + per-bucket (avg, end offset)."""
        return len(self._pid_order) * pid_bytes + self.bucket_count * (
            AVG_FREQ_BYTES + BUCKET_OFFSET_BYTES
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PHistogram %s: %d pids in %d buckets>" % (
            self.tag,
            len(self._pid_order),
            self.bucket_count,
        )


def build_phistogram(
    tag: str, pairs: Sequence[Tuple[int, int]], variance_threshold: float
) -> PHistogram:
    """Algorithm 1: sort by frequency, greedily grow variance-bounded buckets.

    ``pairs`` is the tag's (path id, frequency) list.  Ties in frequency are
    broken by path id so construction is deterministic.
    """
    if variance_threshold < 0:
        raise ValueError("variance threshold must be non-negative")
    ordered = sorted(pairs, key=lambda pair: (pair[1], pair[0]))
    buckets: List[PBucket] = []
    members: List[int] = []
    tracker = RunningVariance()
    for pid, freq in ordered:
        if members and tracker.would_exceed(freq, variance_threshold):
            buckets.append(PBucket(tuple(members), tracker.mean))
            members = []
            tracker = RunningVariance()
        members.append(pid)
        tracker.add(freq)
    if members:
        buckets.append(PBucket(tuple(members), tracker.mean))
    return PHistogram(tag, buckets)


class PHistogramSet:
    """All per-tag p-histograms of a document at one variance setting.

    This class implements the *path statistics provider* protocol used by
    the estimator: :meth:`frequency_pairs` and :meth:`frequency_map`.
    """

    def __init__(self, histograms: Dict[str, PHistogram], variance_threshold: float):
        self._histograms = histograms
        self.variance_threshold = variance_threshold

    @classmethod
    def from_table(
        cls, table: PathIdFrequencyTable, variance_threshold: float
    ) -> "PHistogramSet":
        histograms = {
            tag: build_phistogram(tag, pairs, variance_threshold)
            for tag, pairs in table.iter_items()
        }
        return cls(histograms, variance_threshold)

    # ------------------------------------------------------------------
    # Provider protocol
    # ------------------------------------------------------------------

    def frequency_pairs(self, tag: str) -> List[Tuple[int, float]]:
        histogram = self._histograms.get(tag)
        return histogram.approx_pairs() if histogram else []

    def frequency_map(self, tag: str) -> Dict[int, float]:
        return dict(self.frequency_pairs(tag))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def histogram(self, tag: str) -> Optional[PHistogram]:
        return self._histograms.get(tag)

    def tags(self) -> List[str]:
        return sorted(self._histograms)

    def total_buckets(self) -> int:
        return sum(h.bucket_count for h in self._histograms.values())

    def size_bytes(self, pid_bytes: int) -> int:
        return sum(h.size_bytes(pid_bytes) for h in self._histograms.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PHistogramSet v=%g: %d tags, %d buckets>" % (
            self.variance_threshold,
            len(self._histograms),
            self.total_buckets(),
        )
