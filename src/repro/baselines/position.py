"""Position-histogram baseline [16] (Wu, Patel, Jagadish, EDBT 2002).

Every element is labeled with a document-order interval ``(start, end)``
(descendants nest strictly inside their ancestors).  Each tag gets a 2-D
histogram over (start, end) space — a ``grid x grid`` partition of the
upper triangle — and ancestor-descendant estimates come from a *position
histogram join*: the expected number of containing intervals per point,
computed cell-against-cell under uniformity inside cells.

Because XML intervals never partially overlap, "ancestor contains
descendant" is equivalent to "ancestor contains the descendant's start
point", which is what the join tests.

The related-work section of the reproduced paper singles out this
method's limitation, preserved faithfully here: only *containment* is
captured, so parent-child steps are estimated exactly like
ancestor-descendant steps (an over-estimate on child axes).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.transform import UnsupportedQueryError
from repro.xmltree.document import XmlDocument
from repro.xmltree.intervals import interval_labeling
from repro.xpath.ast import Query, QueryAxis, QueryNode

BUCKET_BYTES = 8

Cell = Tuple[int, int]  # (start bucket, end bucket)


def _contain_probability(ancestor: Cell, point_bucket: int) -> float:
    """P(interval from ``ancestor`` cell contains a point in point_bucket).

    Buckets are equal-width position ranges; with uniform placement:
    the start is surely before the point iff its bucket is earlier (and
    with probability 1/2 in the same bucket), symmetrically for the end.
    """
    row, col = ancestor
    if row > point_bucket or col < point_bucket:
        return 0.0
    start_ok = 1.0 if row < point_bucket else 0.5
    end_ok = 1.0 if col > point_bucket else 0.5
    return start_ok * end_ok


class PositionHistogram:
    """Per-tag 2-D (start, end) histograms of one document."""

    def __init__(self, document: XmlDocument, grid: int = 8):
        if grid < 1:
            raise ValueError("grid must be positive")
        self.grid = grid
        starts, ends, top = interval_labeling(document)
        self.max_position = top
        self._cell_width = top / grid

        # tag -> {(start bucket, end bucket): count}
        self._counts: Dict[str, Dict[Cell, int]] = {}
        self._totals: Dict[str, int] = {}
        for node in document:
            cell = (self._bucket(starts[node.pre]), self._bucket(ends[node.pre]))
            per_tag = self._counts.setdefault(node.tag, {})
            per_tag[cell] = per_tag.get(cell, 0) + 1
            self._totals[node.tag] = self._totals.get(node.tag, 0) + 1
        self._root_cell = (
            self._bucket(starts[document.root.pre]),
            self._bucket(ends[document.root.pre]),
        )
        self._root_tag = document.root.tag

    def _bucket(self, position: int) -> int:
        return min(self.grid - 1, int(position / self._cell_width))

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    def size_bytes(self) -> int:
        return sum(len(cells) for cells in self._counts.values()) * BUCKET_BYTES

    def total(self, tag: str) -> int:
        return self._totals.get(tag, 0)

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------

    def estimate(self, query: Query) -> float:
        if query.has_order_axes():
            raise UnsupportedQueryError("position histograms do not model order")
        spine = query.spine_to(query.target)
        weights = self._initial_weights(query)
        weights = self._apply_branches(weights, query.root, spine)
        for child in spine[1:]:
            # Child and descendant steps are indistinguishable here: the
            # labeling only captures containment (the known limitation).
            weights = self._step(weights, child.tag)
            weights = self._apply_branches(weights, child, spine)
            if not weights:
                return 0.0
        return sum(weights.values())

    def _initial_weights(self, query: Query) -> Dict[Cell, float]:
        tag = query.root.tag
        if query.root_axis is QueryAxis.CHILD:
            if tag != self._root_tag:
                return {}
            return {self._root_cell: 1.0}
        return {
            cell: float(count)
            for cell, count in self._counts.get(tag, {}).items()
        }

    def _step(self, ancestors: Dict[Cell, float], tag: str) -> Dict[Cell, float]:
        """Position-histogram join: qualified descendants per cell."""
        out: Dict[Cell, float] = {}
        cells = self._counts.get(tag)
        if not cells:
            return out
        for cell, count in cells.items():
            point_bucket = cell[0]
            expected = sum(
                weight * _contain_probability(ancestor, point_bucket)
                for ancestor, weight in ancestors.items()
            )
            probability = min(1.0, expected)
            if probability > 0:
                out[cell] = out.get(cell, 0.0) + count * probability
        return out

    def _apply_branches(
        self, weights: Dict[Cell, float], node: QueryNode, spine: List[QueryNode]
    ) -> Dict[Cell, float]:
        spine_ids = {n.node_id for n in spine}
        for edge in node.edges:
            if edge.node.node_id in spine_ids:
                continue
            factor = self._branch_factor(weights, edge.node)
            weights = {cell: w * factor for cell, w in weights.items() if w > 0}
        return weights

    def _branch_factor(self, weights: Dict[Cell, float], branch: QueryNode) -> float:
        """Capped expected branch matches per context element."""
        context_total = sum(weights.values())
        if context_total <= 0:
            return 0.0
        chain = self._step(weights, branch.tag)
        node = branch
        while chain:
            for predicate in node.predicate_edges():
                factor = self._branch_factor(chain, predicate.node)
                chain = {cell: w * factor for cell, w in chain.items()}
            inline = node.inline_edge()
            if inline is None:
                break
            chain = self._step(chain, inline.node.tag)
            node = inline.node
        return min(1.0, sum(chain.values()) / context_total)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PositionHistogram grid=%d, %d tags, %d bytes>" % (
            self.grid,
            len(self._counts),
            self.size_bytes(),
        )
